//! Cross-crate integration: the paper's qualitative results hold on a
//! fast CI-sized simulation (trace + policy + simulator together).

use phttp_cluster::sim::{build_workload, Report, SimConfig, Simulator};
use phttp_cluster::trace::{generate, SessionConfig, SynthConfig, Trace};

fn small_trace() -> Trace {
    generate(&SynthConfig::small())
}

fn run(label: &str, nodes: usize, trace: &Trace) -> Report {
    let mut cfg = SimConfig::paper_config(label, nodes);
    cfg.cache_bytes = 2 * 1024 * 1024;
    let workload = build_workload(trace, cfg.protocol, SessionConfig::default());
    Simulator::new(cfg, trace, &workload).run()
}

#[test]
fn the_full_stack_reproduces_the_ordering() {
    let trace = small_trace();
    let nodes = 4;
    let wrr = run("WRR", nodes, &trace);
    let lard = run("simple-LARD", nodes, &trace);
    let lard_phttp = run("simple-LARD-PHTTP", nodes, &trace);
    let ext = run("multiHandoff-extLARD-PHTTP", nodes, &trace);
    let zero = run("zeroCost-extLARD-PHTTP", nodes, &trace);

    // The paper's core ordering at a cache-bound cluster size.
    assert!(
        lard.throughput_rps > wrr.throughput_rps * 1.5,
        "LARD vs WRR"
    );
    assert!(
        lard_phttp.throughput_rps < lard.throughput_rps * 0.85,
        "P-HTTP must hurt simple LARD"
    );
    assert!(
        ext.throughput_rps > lard_phttp.throughput_rps * 1.2,
        "extended LARD must recover the P-HTTP loss"
    );
    assert!(
        zero.throughput_rps >= ext.throughput_rps * 0.95,
        "the ideal mechanism bounds practical ones"
    );
}

#[test]
fn hit_rates_explain_throughput() {
    let trace = small_trace();
    let wrr = run("WRR", 4, &trace);
    let lard = run("simple-LARD", 4, &trace);
    assert!(lard.cache_hit_rate > wrr.cache_hit_rate + 0.1);
    // WRR replicates the working set everywhere: every node's cache churns.
    let wrr_evictions: u64 = wrr.per_node.iter().map(|n| n.cache_evictions).sum();
    let lard_evictions: u64 = lard.per_node.iter().map(|n| n.cache_evictions).sum();
    assert!(wrr_evictions > lard_evictions);
}

#[test]
fn all_mechanisms_conserve_requests_at_all_sizes() {
    let trace = small_trace();
    for nodes in [1, 2, 5] {
        for label in [
            "WRR-PHTTP",
            "simple-LARD-PHTTP",
            "multiHandoff-extLARD-PHTTP",
            "BEforward-extLARD-PHTTP",
            "zeroCost-extLARD-PHTTP",
            "relay-LARD-PHTTP",
        ] {
            let r = run(label, nodes, &trace);
            assert_eq!(
                r.requests,
                trace.len() as u64,
                "{label} at {nodes} nodes lost requests"
            );
        }
    }
}

#[test]
fn bandwidth_and_throughput_are_consistent() {
    let trace = small_trace();
    let r = run("simple-LARD", 2, &trace);
    // bytes/request * requests/s == bandwidth.
    let mean_bytes = r.bytes_delivered as f64 / r.requests as f64;
    let implied_mbps = r.throughput_rps * mean_bytes * 8.0 / 1e6;
    assert!((implied_mbps - r.bandwidth_mbps).abs() / r.bandwidth_mbps < 1e-6);
}
