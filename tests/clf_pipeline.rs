//! Cross-crate round trip: render a synthetic trace as a Common Log Format
//! file, parse it back, and verify the workload pipeline produces the same
//! structure — proving real server logs can drive every experiment.

use std::fmt::Write as _;

use phttp_cluster::trace::{clf::parse_log, generate, reconstruct, SessionConfig, SynthConfig};

/// Renders a trace as CLF lines (the inverse of the parser, for testing).
fn to_clf(trace: &phttp_cluster::trace::Trace) -> Vec<String> {
    let mut out = Vec::with_capacity(trace.len());
    for r in trace.requests() {
        // Absolute wall-clock base: 1998-03-12 00:00:00 UTC.
        let epoch = 889_660_800 + r.time.as_micros() / 1_000_000;
        let days = epoch / 86_400;
        let secs = epoch % 86_400;
        // All requests land within a few days; render date arithmetic simply.
        let day = 12 + (days - 889_660_800 / 86_400);
        let mut line = String::new();
        let _ = write!(
            line,
            "client{}.example - - [{:02}/Mar/1998:{:02}:{:02}:{:02} +0000] \"GET /t/{} HTTP/1.0\" 200 {}",
            r.client.0,
            day,
            secs / 3600,
            (secs % 3600) / 60,
            secs % 60,
            r.target.0,
            trace.size_of(r.target),
        );
        out.push(line);
    }
    out
}

#[test]
fn clf_round_trip_preserves_workload_structure() {
    let mut cfg = SynthConfig::small();
    cfg.num_page_views = 400;
    let original = generate(&cfg);
    // CLF has 1-second resolution: times are truncated, which is exactly
    // what real logs give the reconstruction heuristics.
    let lines = to_clf(&original);
    let (parsed, stats) = parse_log(&lines);

    assert_eq!(stats.accepted, original.len());
    assert_eq!(stats.skipped(), 0);
    assert_eq!(parsed.len(), original.len());
    // Target interning preserves distinct-target count and sizes.
    assert_eq!(parsed.distinct_targets(), original.distinct_targets());
    let orig_bytes = original.total_response_bytes();
    assert_eq!(parsed.total_response_bytes(), orig_bytes);

    // Reconstruction on the parsed log yields a comparable connection
    // structure (second-granularity rounding can merge a few batches).
    let conns_orig = reconstruct(&original, SessionConfig::default());
    let conns_parsed = reconstruct(&parsed, SessionConfig::default());
    assert_eq!(conns_parsed.num_requests(), conns_orig.num_requests());
    let ratio = conns_parsed.connections.len() as f64 / conns_orig.connections.len() as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "connection count drifted: {} vs {}",
        conns_parsed.connections.len(),
        conns_orig.connections.len()
    );
}

#[test]
fn clf_parser_survives_dirty_logs() {
    let trace = generate(&SynthConfig::small());
    let mut lines = to_clf(&trace.prefix(50));
    // Sprinkle realistic garbage between valid lines.
    lines.insert(3, "".into());
    lines.insert(7, "corrupted line without fields".into());
    lines.insert(
        11,
        r#"h - - [12/Mar/1998:00:00:00 +0000] "POST /form HTTP/1.0" 200 10"#.into(),
    );
    lines.insert(
        13,
        r#"h - - [12/Mar/1998:00:00:00 +0000] "GET /gone HTTP/1.0" 404 10"#.into(),
    );
    let (parsed, stats) = parse_log(&lines);
    assert_eq!(stats.accepted, 50);
    assert_eq!(parsed.len(), 50);
    assert_eq!(stats.skipped_malformed, 1);
    assert_eq!(stats.skipped_not_get, 1);
    assert_eq!(stats.skipped_unsuccessful, 1);
}
