//! End-to-end determinism: the entire pipeline — generator, reconstruction,
//! simulation — is bit-reproducible under a fixed seed. This is what makes
//! the figure harness a regression test rather than a dice roll.

use phttp_cluster::sim::{build_workload, SimConfig, Simulator};
use phttp_cluster::trace::{generate, reconstruct, SessionConfig, SynthConfig};

#[test]
fn generator_is_bit_reproducible() {
    let a = generate(&SynthConfig::small());
    let b = generate(&SynthConfig::small());
    assert_eq!(a.requests(), b.requests());
    assert_eq!(a.num_targets(), b.num_targets());
    for t in 0..a.num_targets() as u32 {
        assert_eq!(
            a.size_of(phttp_cluster::trace::TargetId(t)),
            b.size_of(phttp_cluster::trace::TargetId(t))
        );
    }
}

#[test]
fn reconstruction_is_deterministic() {
    let trace = generate(&SynthConfig::small());
    let a = reconstruct(&trace, SessionConfig::default());
    let b = reconstruct(&trace, SessionConfig::default());
    assert_eq!(a.connections, b.connections);
}

#[test]
fn simulation_is_bit_reproducible() {
    let trace = generate(&SynthConfig::small());
    let run = || {
        let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3);
        cfg.cache_bytes = 2 * 1024 * 1024;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        Simulator::new(cfg, &trace, &workload).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.forwarded_requests, b.forwarded_requests);
    assert_eq!(a.bytes_delivered, b.bytes_delivered);
    assert_eq!(a.connections, b.connections);
    for (x, y) in a.per_node.iter().zip(&b.per_node) {
        assert_eq!(x.requests, y.requests);
        assert_eq!(x.cache_hits, y.cache_hits);
        assert_eq!(x.cache_evictions, y.cache_evictions);
    }
}

#[test]
fn different_seeds_differ() {
    let a = generate(&SynthConfig::small());
    let mut cfg = SynthConfig::small();
    cfg.seed ^= 0xDEAD_BEEF;
    let b = generate(&cfg);
    assert_ne!(a.requests(), b.requests());
}
