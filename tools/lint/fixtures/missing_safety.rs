// Lint fixture (never compiled): two unsafe blocks with no SAFETY
// comment — both must trip the safety-comment rule when the file is
// treated as living under shims/.

pub fn read_one(fd: i32) -> u64 {
    let mut buf = 0u64;
    unsafe {
        libc_read(fd, &mut buf as *mut u64 as *mut u8, 8);
    }
    buf
}

pub fn wrapped_statement(fd: i32) -> i64 {
    let rc =
        unsafe { libc_close(fd) };
    rc as i64
}

// An `unsafe fn` declaration is not an unsafe *block* — out of scope.
pub unsafe fn libc_read(_fd: i32, _buf: *mut u8, _n: usize) -> isize {
    0
}

pub unsafe fn libc_close(_fd: i32) -> i32 {
    0
}
