// Lint fixture (never compiled): every unsafe block is annotated, in
// each of the accepted positions — same line, comment block directly
// above, and comment block above a wrapped statement.

pub fn same_line(fd: i32) -> i32 {
    let rc = unsafe { libc_close(fd) }; // SAFETY: fd is owned by the caller.
    rc
}

pub fn block_above(fd: i32) -> u64 {
    let mut buf = 0u64;
    // The read target is a live stack value.
    // SAFETY: the pointer addresses `buf` for exactly 8 bytes.
    unsafe {
        libc_read(fd, &mut buf as *mut u64 as *mut u8, 8);
    }
    buf
}

pub fn wrapped_statement(fd: i32) -> i64 {
    // SAFETY: plain FFI call taking no pointers.
    let rc =
        unsafe { libc_close(fd) };
    rc as i64
}

pub unsafe fn libc_read(_fd: i32, _buf: *mut u8, _n: usize) -> isize {
    0
}

pub unsafe fn libc_close(_fd: i32) -> i32 {
    0
}
