// Lint fixture (never compiled): statements that bind a lock guard and
// call a deny-listed blocking syscall in the same statement — two
// findings; the separated forms below are allowed.

pub fn bad_write(conns: &Table, id: u64, buf: &[u8]) {
    conns.lock().get_mut(&id).stream.write_all(buf).unwrap(); // finding 1
}

pub fn bad_rwlock_accept(listeners: &Listeners) {
    let _conn = listeners.write().primary.accept().unwrap(); // finding 2
}

pub fn ok_guard_released_first(conns: &Table, id: u64, buf: &[u8]) {
    // The guard's critical section ends at the block; the blocking call
    // is a separate statement.
    let mut stream = { conns.lock().take_stream(&id) };
    stream.write_all(buf).unwrap();
}

pub fn ok_plain_io(stream: &mut Stream, buf: &mut [u8]) {
    stream.read_exact(buf).unwrap();
}

pub fn ok_io_write_with_args(stream: &mut Stream, buf: &[u8]) {
    // `.write(buf)` is io::Write, not RwLock::write() — no guard here.
    let _n = stream.write(buf).unwrap();
}
