// Lint fixture (never compiled): std::sync lock types outside test
// code — three live findings; the #[cfg(test)] module at the bottom
// and the commented/string occurrences are exempt.

use std::sync::{Arc, Mutex as StdMutex}; // finding 1: grouped + renamed

pub struct Holder {
    slot: std::sync::RwLock<u32>, // finding 2: fully qualified
    cv: std::sync::Condvar,       // finding 3: condvar
    ok: Arc<u32>,
}

// A comment mentioning std::sync::Mutex is not a finding.
pub const DOC: &str = "std::sync::Mutex in a string is not a finding";

#[cfg(test)]
mod tests {
    use std::sync::Mutex; // exempt: test-only code

    #[test]
    fn collector() {
        let m = Mutex::new(0);
        *m.lock().unwrap() += 1;
    }
}
