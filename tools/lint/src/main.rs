//! `phttp-lint`: the repo's static concurrency/hygiene gate.
//!
//! A lightweight, dependency-free Rust scanner (a masking lexer, not a
//! full parser) that walks `crates/`, `shims/`, and `src/` and enforces
//! the project rules that rustc and clippy cannot:
//!
//! * **safety-comment** — every `unsafe` block in `shims/` carries a
//!   `// SAFETY:` comment (same line, or in the comment block
//!   introducing its statement).
//! * **std-sync** — no `std::sync::{Mutex, RwLock, Condvar}` outside
//!   `shims/` and test code (`tests/` directories and `#[cfg(test)]`
//!   modules). The shim types are the lockcheck-instrumented ones;
//!   going around them hides locks from the checker. `crates/lockcheck`
//!   is the one exemption: it *implements* the checker, so it cannot be
//!   a client of the instrumented types.
//! * **guard-blocking** — inside `crates/proto/src/reactor/`, no
//!   statement both binds a lock guard (`.lock()` / `.write()`) and
//!   calls a blocking syscall from the deny-list (`write_all`,
//!   `read_exact`, `connect`, `accept`). The event loop must never
//!   block while holding a lock.
//! * **doc-hygiene** — the `tools/check_links.sh` rules, natively:
//!   markdown links and backticked repo paths / `BENCH_*.json` /
//!   `UPPER.md` references in the top-level docs must exist.
//!
//! Usage: `phttp-lint [repo-root]` (defaults to the current directory).
//! Prints `path:line: [rule] message` per finding; exits non-zero if
//! any fire. Self-tests run the rules against `tools/lint/fixtures/`.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, pointing at a repo-relative path and 1-based line.
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Replaces the *contents* of comments, string literals, char literals,
/// and raw strings with spaces, preserving every newline and the
/// overall byte layout, so code rules can scan without tripping on
/// prose. Comment markers themselves (`//`, `/*`) are masked too.
fn mask_code(src: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Possible raw string: r"..." or r#"..."# etc.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Lifetime ('a, 'static) vs char literal ('x', '\n').
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) if n.is_alphanumeric() || n == '_' => {
                            // 'a' is a char only if a quote closes it.
                            b.get(i + 2) == Some(&'\'')
                        }
                        Some(_) => true, // '(' etc. can only be a char
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                        out.push('\'');
                    } else {
                        out.push('\'');
                    }
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(d) => {
                if c == '*' && next == Some('/') {
                    st = if d == 1 {
                        St::Code
                    } else {
                        St::BlockComment(d - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < h && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == h {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Line number (1-based) of byte-ish offset `pos` in `text` (measured in
/// chars, matching `mask_code`'s output).
fn line_of(text: &str, pos: usize) -> usize {
    text.chars().take(pos).filter(|&c| c == '\n').count() + 1
}

/// Whether the `unsafe` block starting at `line` (1-based) is annotated:
/// `SAFETY:` on the same raw line, or in the contiguous `//` comment
/// block introducing the statement (walking upward past the statement's
/// own continuation lines, stopping at any line that ends another
/// statement or block).
fn has_safety_comment(raw_lines: &[&str], line: usize) -> bool {
    let idx = line - 1;
    if raw_lines.get(idx).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = raw_lines[i].trim();
        if l.starts_with("//") {
            // Inside the introducing comment block: search it fully.
            let mut j = i + 1;
            loop {
                let c = raw_lines[j - 1].trim();
                if !c.starts_with("//") {
                    return false;
                }
                if c.contains("SAFETY:") {
                    return true;
                }
                if j == 1 {
                    return false;
                }
                j -= 1;
            }
        }
        // A statement/block boundary before any comment: unannotated.
        if l.is_empty() || l.ends_with(';') || l.ends_with('{') || l.ends_with('}') {
            return false;
        }
        // Otherwise this is a continuation line of the same statement
        // (e.g. `let rc =` above a wrapped `unsafe {`): keep walking.
    }
    false
}

/// Rule `safety-comment`: every `unsafe` block in a `shims/` file is
/// annotated (see [`has_safety_comment`]).
fn rule_safety(rel: &str, raw: &str, masked: &str) -> Vec<Finding> {
    if !rel.starts_with("shims/") {
        return Vec::new();
    }
    let raw_lines: Vec<&str> = raw.lines().collect();
    let chars: Vec<char> = masked.chars().collect();
    const KW: [char; 6] = ['u', 'n', 's', 'a', 'f', 'e'];
    let mut findings = Vec::new();
    for off in 0..chars.len().saturating_sub(KW.len()) {
        if chars[off..off + KW.len()] != KW {
            continue;
        }
        // Word boundary on both sides.
        if off > 0 {
            let p = chars[off - 1];
            if p.is_alphanumeric() || p == '_' {
                continue;
            }
        }
        // Next non-whitespace char must open a block (`unsafe {`), not
        // `unsafe fn` / `unsafe impl`.
        match chars[off + KW.len()..].iter().find(|c| !c.is_whitespace()) {
            Some('{') => {}
            _ => continue,
        }
        let line = line_of(masked, off);
        if !has_safety_comment(&raw_lines, line) {
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: "safety-comment",
                msg: "unsafe block without a `// SAFETY:` comment".to_string(),
            });
        }
    }
    findings
}

/// Rule `std-sync`: no `std::sync::{Mutex, RwLock, Condvar}` outside
/// `shims/`, `tests/` directories, `#[cfg(test)]` code, and
/// `crates/lockcheck` (which implements the checker the shim types
/// report to).
fn rule_std_sync(rel: &str, masked: &str) -> Vec<Finding> {
    if rel.starts_with("shims/") || rel.starts_with("crates/lockcheck/") || rel.contains("/tests/")
    {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let mut in_cfg_test = false;
    for (i, line) in masked.lines().enumerate() {
        // The repo convention puts `#[cfg(test)] mod tests` last in the
        // file; everything from the first marker on is test-only.
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_cfg_test = true;
        }
        if in_cfg_test {
            continue;
        }
        let banned = [
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
        ];
        let mut hit = banned
            .iter()
            .find(|t| line.contains(*t))
            .map(|t| t.to_string());
        if hit.is_none() && line.trim_start().starts_with("use std::sync::") {
            // Grouped imports: `use std::sync::{Arc, Mutex as StdMutex}`.
            hit = ["Mutex", "RwLock", "Condvar"]
                .iter()
                .find(|t| {
                    line.split(['{', '}', ',', ' '])
                        .any(|tok| tok == **t || tok.starts_with(&format!("{t}:")))
                })
                .map(|t| format!("std::sync::{t}"));
        }
        if let Some(t) = hit {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "std-sync",
                msg: format!("`{t}` outside shims/tests — use the instrumented `parking_lot` shim"),
            });
        }
    }
    findings
}

/// Rule `guard-blocking`: in `crates/proto/src/reactor/`, no statement
/// both takes a lock guard and calls a deny-listed blocking syscall.
fn rule_guard_blocking(rel: &str, masked: &str) -> Vec<Finding> {
    if !rel.starts_with("crates/proto/src/reactor/") {
        return Vec::new();
    }
    const BLOCKING: [&str; 4] = ["write_all(", "read_exact(", "connect(", "accept("];
    let mut findings = Vec::new();
    let mut stmt = String::new();
    let mut stmt_line = 1;
    let mut line = 1;
    for c in masked.chars() {
        if c == '\n' {
            line += 1;
        }
        // Statement boundaries: `;` ends one, and braces bound one — a
        // guard bound in a statement is never *bound* across a brace.
        if c == ';' || c == '{' || c == '}' {
            let takes_guard = stmt.contains(".lock()") || stmt.contains(".write()");
            if takes_guard {
                if let Some(call) = BLOCKING.iter().find(|b| stmt.contains(*b)) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: stmt_line,
                        rule: "guard-blocking",
                        msg: format!(
                            "statement binds a lock guard and calls blocking `{}...)` — \
                             the reactor loop must not block under a lock",
                            call
                        ),
                    });
                }
            }
            stmt.clear();
            stmt_line = line;
        } else {
            if stmt.trim().is_empty() {
                stmt_line = line;
            }
            stmt.push(c);
        }
    }
    findings
}

/// Runs every code rule on one file. `rel` is the repo-relative path
/// with forward slashes.
fn check_file(rel: &str, raw: &str) -> Vec<Finding> {
    let masked = mask_code(raw);
    let mut out = rule_safety(rel, raw, &masked);
    out.extend(rule_std_sync(rel, &masked));
    out.extend(rule_guard_blocking(rel, &masked));
    out
}

/// Backticked reference tokens in a markdown document that the doc rule
/// must resolve: in-repo paths, bench artifacts, top-level docs.
fn doc_ref_tokens(md: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in md.lines().enumerate() {
        let mut parts = line.split('`');
        // Odd-indexed segments are inside backticks.
        let _ = parts.next();
        let mut inside = true;
        for seg in parts {
            if inside {
                let is_path = seg
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_./-".contains(c))
                    && !seg.is_empty();
                if is_path {
                    let top_level = [
                        "crates/",
                        "shims/",
                        "examples/",
                        "tools/",
                        "src/",
                        "tests/",
                        ".github/",
                    ];
                    let is_repo_path = top_level.iter().any(|p| seg.starts_with(p));
                    let is_bench = seg.starts_with("BENCH_") && seg.ends_with(".json");
                    let is_doc = seg.ends_with(".md")
                        && seg[..seg.len() - 3]
                            .chars()
                            .all(|c| c.is_ascii_uppercase() || c == '_')
                        && !seg[..seg.len() - 3].is_empty();
                    if is_repo_path || is_bench || is_doc {
                        out.push((i + 1, seg.to_string()));
                    }
                }
            }
            inside = !inside;
        }
    }
    out
}

/// Markdown inline-link targets `[text](target)`, local ones only.
fn doc_link_targets(md: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in md.lines().enumerate() {
        let mut rest = line;
        while let Some(p) = rest.find("](") {
            rest = &rest[p + 2..];
            if let Some(e) = rest.find(')') {
                let target = &rest[..e];
                rest = &rest[e + 1..];
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with("mailto:")
                    || target.starts_with('#')
                {
                    continue;
                }
                let path = target.split('#').next().unwrap_or("");
                if !path.is_empty() {
                    out.push((i + 1, path.to_string()));
                }
            } else {
                break;
            }
        }
    }
    out
}

/// Rule `doc-hygiene`: every local link and backticked repo reference in
/// the top-level docs resolves to an existing file.
fn rule_docs(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for doc in ["README.md", "ARCHITECTURE.md", "ROADMAP.md"] {
        let path = root.join(doc);
        let Ok(md) = std::fs::read_to_string(&path) else {
            findings.push(Finding {
                file: doc.to_string(),
                line: 0,
                rule: "doc-hygiene",
                msg: "top-level doc missing".to_string(),
            });
            continue;
        };
        for (line, target) in doc_link_targets(&md) {
            if !root.join(&target).exists() {
                findings.push(Finding {
                    file: doc.to_string(),
                    line,
                    rule: "doc-hygiene",
                    msg: format!("broken link -> {target}"),
                });
            }
        }
        for (line, target) in doc_ref_tokens(&md) {
            if !root.join(&target).exists() {
                findings.push(Finding {
                    file: doc.to_string(),
                    line,
                    rule: "doc-hygiene",
                    msg: format!("dangling reference -> {target}"),
                });
            }
        }
    }
    findings
}

/// Collects every `.rs` file under `root/{crates,shims,src}`, skipping
/// `target/` build output. Returns repo-relative forward-slash paths.
fn collect_rs_files(root: &Path) -> Vec<String> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                walk(&p, root, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    let mut out = Vec::new();
    for top in ["crates", "shims", "src"] {
        walk(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn main() {
    let root = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".to_string()));
    let files = collect_rs_files(&root);
    if files.is_empty() {
        eprintln!(
            "phttp-lint: no Rust files under {} — wrong root?",
            root.display()
        );
        std::process::exit(2);
    }
    let mut findings = Vec::new();
    for rel in &files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(raw) => findings.extend(check_file(rel, &raw)),
            Err(e) => findings.push(Finding {
                file: rel.clone(),
                line: 0,
                rule: "io",
                msg: format!("unreadable: {e}"),
            }),
        }
    }
    findings.extend(rule_docs(&root));
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("phttp-lint OK ({} files)", files.len());
    } else {
        println!("phttp-lint: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        std::fs::read_to_string(p).expect("fixture readable")
    }

    #[test]
    fn masking_strips_comments_and_strings_preserving_lines() {
        let src = "let a = \"std::sync::Mutex\"; // std::sync::Mutex\nlet c = 'x';\n/* std::sync::Mutex */ let l: &'static str = r#\"std::sync::Mutex\"#;\n";
        let m = mask_code(src);
        assert!(!m.contains("std::sync::Mutex"), "{m}");
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.contains("let a"));
        assert!(m.contains("&'static str"), "lifetimes survive masking: {m}");
    }

    #[test]
    fn masking_handles_nested_block_comments() {
        let m = mask_code("/* outer /* inner */ still comment */ code()");
        assert!(m.contains("code()"));
        assert!(!m.contains("still"));
    }

    #[test]
    fn safety_rule_fires_on_fixture() {
        let raw = fixture("missing_safety.rs");
        let f = check_file("shims/fake/src/lib.rs", &raw);
        assert_eq!(
            f.len(),
            2,
            "both unannotated blocks: {f:?}",
            f = f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
        assert!(f.iter().all(|x| x.rule == "safety-comment"));
    }

    #[test]
    fn safety_rule_accepts_annotated_fixture() {
        let raw = fixture("good_safety.rs");
        let f = check_file("shims/fake/src/lib.rs", &raw);
        assert!(
            f.is_empty(),
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn safety_rule_only_applies_to_shims() {
        let raw = fixture("missing_safety.rs");
        assert!(rule_safety("crates/fake/src/lib.rs", &raw, &mask_code(&raw)).is_empty());
    }

    #[test]
    fn std_sync_rule_fires_outside_tests_only() {
        let raw = fixture("std_mutex.rs");
        let masked = mask_code(&raw);
        let f = rule_std_sync("crates/fake/src/lib.rs", &masked);
        // Three live uses (plain, grouped+renamed import, Condvar);
        // the #[cfg(test)] module's use at the bottom is exempt.
        assert_eq!(
            f.len(),
            3,
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
        assert!(f.iter().all(|x| x.rule == "std-sync"));
        // Exempt locations: shims, the lockcheck crate, tests dirs.
        assert!(rule_std_sync("shims/fake/src/lib.rs", &masked).is_empty());
        assert!(rule_std_sync("crates/lockcheck/src/lib.rs", &masked).is_empty());
        assert!(rule_std_sync("crates/fake/tests/it.rs", &masked).is_empty());
    }

    #[test]
    fn std_sync_rule_ignores_strings_and_comments() {
        let masked = mask_code("// std::sync::Mutex\nlet s = \"std::sync::RwLock\";\n");
        assert!(rule_std_sync("crates/fake/src/lib.rs", &masked).is_empty());
    }

    #[test]
    fn guard_blocking_rule_fires_in_reactor_only() {
        let raw = fixture("guard_blocking.rs");
        let masked = mask_code(&raw);
        let f = rule_guard_blocking("crates/proto/src/reactor/fake.rs", &masked);
        assert_eq!(
            f.len(),
            2,
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
        assert!(f.iter().all(|x| x.rule == "guard-blocking"));
        // Same content outside the reactor is not this rule's business.
        assert!(rule_guard_blocking("crates/proto/src/node.rs", &masked).is_empty());
    }

    #[test]
    fn guard_blocking_allows_separated_statements() {
        let src = "let buf = { q.lock().pop() };\nstream.write_all(&buf)?;\n";
        let f = rule_guard_blocking("crates/proto/src/reactor/fake.rs", &mask_code(src));
        assert!(
            f.is_empty(),
            "{:?}",
            f.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn doc_tokens_extract_repo_paths_and_artifacts() {
        let md = "See `crates/proto/src/node.rs` and [the map](ARCHITECTURE.md#x).\nPlain `code` and `BENCH_zerocopy.json` and `ROADMAP.md`.\n";
        let refs: Vec<String> = doc_ref_tokens(md).into_iter().map(|(_, t)| t).collect();
        assert_eq!(
            refs,
            vec![
                "crates/proto/src/node.rs",
                "BENCH_zerocopy.json",
                "ROADMAP.md"
            ]
        );
        let links: Vec<String> = doc_link_targets(md).into_iter().map(|(_, t)| t).collect();
        assert_eq!(links, vec!["ARCHITECTURE.md"]);
    }

    #[test]
    fn repo_is_lint_clean() {
        // The gate itself: the real tree must pass every rule. Running
        // it here too means `cargo test` catches a violation even if CI
        // skips the dedicated lint step.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_rs_files(&root);
        assert!(files.len() > 50, "walker found the tree");
        let mut findings = Vec::new();
        for rel in &files {
            let raw = std::fs::read_to_string(root.join(rel)).unwrap();
            findings.extend(check_file(rel, &raw));
        }
        findings.extend(rule_docs(&root));
        assert!(
            findings.is_empty(),
            "repo has lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
