#!/usr/bin/env bash
# Markdown link check for the repo's top-level docs: every relative
# link target (file or directory) must exist, and every `path/to/file`
# reference in backticks that looks like a repo path must too. Remote
# (http/https) links are skipped — the build environment is offline.
#
# Usage: tools/check_links.sh [files...]   (defaults to the doc set)
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ARCHITECTURE.md ROADMAP.md)
fi

fail=0

for f in "${files[@]}"; do
    if [ ! -f "$f" ]; then
        echo "MISSING DOC: $f"
        fail=1
        continue
    fi
    # Markdown inline links: [text](target), skipping remote schemes
    # and intra-page anchors.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip a trailing #anchor from local links.
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            echo "$f: broken link -> $target"
            fail=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*(\(.*\))/\1/')

    # Backticked repo paths (e.g. `crates/proto/src/control.rs`): only
    # patterns that look like in-repo file paths with an extension or a
    # known top-level directory.
    while IFS= read -r path; do
        if [ ! -e "$path" ]; then
            echo "$f: dangling path reference -> $path"
            fail=1
        fi
    done < <(grep -o '`\(crates\|shims\|examples\|tools\|src\|tests\|\.github\)/[A-Za-z0-9_./-]*`' "$f" | tr -d '\`')

    # Backticked bench artifacts (`BENCH_*.json`): each one the docs
    # describe must actually be committed at the repo root.
    while IFS= read -r path; do
        if [ ! -f "$path" ]; then
            echo "$f: dangling bench artifact reference -> $path"
            fail=1
        fi
    done < <(grep -o '`BENCH_[A-Za-z0-9_]*\.json`' "$f" | tr -d '\`')

    # Backticked top-level docs (`ROADMAP.md` etc.).
    while IFS= read -r path; do
        if [ ! -f "$path" ]; then
            echo "$f: dangling doc reference -> $path"
            fail=1
        fi
    done < <(grep -o '`[A-Z][A-Z_]*\.md`' "$f" | tr -d '\`')
done

if [ "$fail" -ne 0 ]; then
    echo "link check FAILED"
    exit 1
fi
echo "link check OK (${files[*]})"
