//! Umbrella crate for the P-HTTP cluster-server reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`core`] — LARD / extended LARD / WRR policies and the cost model
//!   (the paper's primary contribution);
//! * [`sim`] — the trace-driven cluster simulator (paper §6);
//! * [`proto`] — the runnable loopback-TCP prototype cluster (paper §7);
//! * [`analytic`] — the closed-form mechanism analysis (paper §5);
//! * [`trace`] — workload generation, CLF parsing, and P-HTTP
//!   connection reconstruction;
//! * [`http`] — the HTTP/1.0+1.1 message layer;
//! * [`handoff`] — the §7.2 TCP handoff control protocol (wire format,
//!   sans-io state machines, packet-forwarding table);
//! * [`simcore`] — the discrete-event engine underneath it all.
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use phttp_analytic as analytic;
pub use phttp_core as core;
pub use phttp_handoff as handoff;
pub use phttp_http as http;
pub use phttp_proto as proto;
pub use phttp_sim as sim;
pub use phttp_simcore as simcore;
pub use phttp_trace as trace;
