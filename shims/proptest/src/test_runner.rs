//! Case-count configuration and the deterministic per-test RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Why a single case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner skips the case.
    Rejected,
}

/// Outcome of one property case (assertion failures panic instead).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-property run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic RNG seeded from the test's name, so a failing case
/// reproduces on every run of the same binary.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
