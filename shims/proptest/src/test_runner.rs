//! Case-count configuration, the deterministic per-test RNG, and the
//! shrinking case runner.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::strategy::Strategy;

/// Why a single case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner skips the case.
    Rejected,
}

/// Outcome of one property case (assertion failures panic instead).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-property run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// How one execution of the property body ended.
enum Outcome {
    Pass,
    Rejected,
    Failed(String),
}

/// Runs the body once, converting a panic into [`Outcome::Failed`]
/// with the panic message.
fn run_caught<V>(run: &impl Fn(&V) -> TestCaseResult, v: &V) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| run(v))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(TestCaseError::Rejected)) => Outcome::Rejected,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Failed(msg)
        }
    }
}

/// Greedy shrink descent: repeatedly replaces `value` with the first
/// of the strategy's [`shrink`](Strategy::shrink) candidates on which
/// `fails` still holds, until no candidate fails or the attempt budget
/// runs out. Returns the (locally) minimal failing value.
pub fn minimize<S: Strategy>(
    strat: &S,
    mut value: S::Value,
    fails: impl Fn(&S::Value) -> bool,
) -> S::Value {
    let mut budget = 512usize;
    'descend: loop {
        for cand in strat.shrink(&value) {
            if budget == 0 {
                return value;
            }
            budget -= 1;
            if fails(&cand) {
                value = cand;
                continue 'descend;
            }
        }
        return value;
    }
}

/// Runs one property case; on failure, shrinks the inputs to a minimal
/// counterexample and panics with it. Re-run panics during shrinking
/// are expected and silenced via a no-op panic hook (restored before
/// the final report).
pub fn check_case<S: Strategy>(
    strat: &S,
    value: S::Value,
    run: impl Fn(&S::Value) -> TestCaseResult,
) where
    S::Value: std::fmt::Debug,
{
    let Outcome::Failed(first_msg) = run_caught(&run, &value) else {
        return;
    };
    // Quiet the per-candidate panic spam while minimizing; anything
    // the property rejects with `prop_assume!` does not count as a
    // failure, so shrinking cannot escape the property's precondition.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let minimal = minimize(strat, value, |v| {
        matches!(run_caught(&run, v), Outcome::Failed(_))
    });
    let msg = match run_caught(&run, &minimal) {
        Outcome::Failed(m) => m,
        _ => first_msg,
    };
    std::panic::set_hook(hook);
    panic!("property failed; minimal counterexample: {minimal:?}\n{msg}");
}

/// Clones the drawn values for one body execution (the body consumes
/// them by value; shrinking re-runs the body on candidate values).
/// A free function rather than a method call so the macro expansion
/// stays lint-clean for `Copy` value tuples.
pub fn clone_vals<T: Clone>(v: &T) -> T {
    v.clone()
}

/// Deterministic RNG seeded from the test's name, so a failing case
/// reproduces on every run of the same binary.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
