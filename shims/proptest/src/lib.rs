//! Workspace shim for `proptest`: the macro surface and strategy
//! combinators the project's property tests use, run as fixed-count
//! random-case tests.
//!
//! Differences from upstream, by design:
//!
//! * each property runs `ProptestConfig::cases` random cases (default 64,
//!   `PROPTEST_CASES` env to override) seeded deterministically from the
//!   test name — failures reproduce on re-run;
//! * shrinking is basic: greedy descent through per-strategy candidate
//!   lists (integer ranges toward their minimum, vectors by shortening
//!   then element-wise, tuples per-coordinate) with a bounded attempt
//!   budget — enough to report minimal counterexamples for the ring and
//!   merge property tests, without upstream's full simplify/complicate
//!   lattice;
//! * `prop_assert*` panic (upstream returns `Err`), which is equivalent
//!   under a `#[test]` harness: the shrinker catches the panic, minimizes,
//!   and re-panics with the minimal counterexample.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Strategies over strings.
pub mod string {
    use crate::strategy::RegexStrategy;

    /// Regex-pattern parse failure.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// A string matching `pattern` (the literal/class/`{m,n}` subset —
    /// see [`RegexStrategy`]).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        RegexStrategy::compile(pattern).map_err(Error)
    }
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Boolean property assertion (panicking flavour).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

/// Equality property assertion (panicking flavour).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

/// Inequality property assertion (panicking flavour).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to an early `Err(Rejected)` return from the per-case closure
/// `proptest!` emits; the runner moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Rejected);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            // One tuple strategy over all arguments: drawn together,
            // shrunk together (per-coordinate substitution).
            let __strat = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __vals = $crate::strategy::Strategy::new_value(&__strat, &mut __rng);
                // The closure gives `return Ok(())` and `prop_assume!`
                // (early `Err(Rejected)`) somewhere to return to; it is
                // re-run by the shrinker on candidate inputs, hence the
                // clone per execution.
                $crate::test_runner::check_case(&__strat, __vals, |__vals| {
                    let ($($arg,)+) = $crate::test_runner::clone_vals(__vals);
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and maps apply.
        #[test]
        fn ranges_and_maps(x in 3u32..17, y in (0usize..5).prop_map(|v| v * 2)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y % 2 == 0 && y < 10);
        }

        /// Vectors respect their size range; oneof picks only given arms.
        #[test]
        fn vec_and_oneof(
            v in crate::collection::vec(0u8..4, 2..6),
            pick in prop_oneof![Just(1u8), Just(9u8), 20u8..22],
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert!(pick == 1 || pick == 9 || pick == 20 || pick == 21);
        }

        /// Exact-size vec and tuple strategies.
        #[test]
        fn exact_vec_and_tuples(v in crate::collection::vec(0u64..10, 3), t in (0u32..2, 5i32..6)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert_eq!(t.1, 5);
        }

        /// prop_assume skips, never fails.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        /// String regex subset: classes, ranges, intersection, counts.
        #[test]
        fn string_regex_subset(
            uri in crate::string::string_regex("/[a-z0-9_./-]{0,40}").unwrap(),
            hdr in "[A-Za-z-]{1,12}",
            val in "[ -~&&[^:]]{0,24}",
        ) {
            prop_assert!(uri.starts_with('/') && uri.len() <= 41);
            prop_assert!((1..=12).contains(&hdr.len()));
            prop_assert!(hdr.chars().all(|c| c.is_ascii_alphabetic() || c == '-'));
            prop_assert!(val.chars().all(|c| (' '..='~').contains(&c) && c != ':'));
        }
    }

    #[test]
    fn minimize_finds_minimal_int_counterexample() {
        // The minimal failing value of `v >= 13` over 0..100 is exactly
        // 13 — the greedy descent must land there from any start.
        let strat = 0u32..100;
        for start in [13u32, 14, 50, 99] {
            assert_eq!(
                crate::test_runner::minimize(&strat, start, |&v| v >= 13),
                13
            );
        }
    }

    #[test]
    fn minimize_shrinks_vectors_structurally_and_elementwise() {
        let strat = crate::collection::vec(0u32..10, 1..8);
        let fails = |v: &Vec<u32>| v.iter().any(|&x| x >= 5);
        let min = crate::test_runner::minimize(&strat, vec![3, 7, 2, 9], fails);
        assert_eq!(min, vec![5], "expected the single minimal element");
    }

    #[test]
    fn minimize_respects_tuple_coordinates() {
        let strat = (0u32..100, 0u32..100);
        let min = crate::test_runner::minimize(&strat, (40, 77), |&(a, b)| a + b >= 20);
        assert_eq!(min, (0, 20));
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..1000, 5..10);
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
