//! Strategies: value generators composable with `prop_map`, tuples,
//! `collection::vec`, `prop_oneof!`, and a regex-subset string generator.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing value, simplest first.
    ///
    /// The runner greedily descends through these while the property
    /// keeps failing (see `test_runner::minimize`), so a strategy only
    /// needs *sound* candidates (values it could itself have produced),
    /// not a complete lattice. The default — no candidates — disables
    /// shrinking for strategies where inversion is impossible
    /// (`prop_map`) or not worth the complexity.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`].
trait DynStrategy<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
    fn shrink_dyn(&self, v: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
    fn shrink_dyn(&self, v: &S::Value) -> Vec<S::Value> {
        self.shrink(v)
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        self.0.shrink_dyn(v)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// The `any::<T>()` marker strategy.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Integer shrink candidates toward `start`, simplest first: the
/// range's own minimum, the midpoint between minimum and the failing
/// value, and the failing value's predecessor. The midpoint gives
/// logarithmic descent over wide ranges; the predecessor guarantees
/// the greedy walk can always reach the true minimal counterexample.
fn shrink_int_toward(start: i128, v: i128) -> Vec<i128> {
    if v == start {
        return Vec::new();
    }
    let mut out = vec![start];
    let mid = start + (v - start) / 2;
    if mid != start && mid != v {
        out.push(mid);
    }
    if v - 1 != start && v - 1 != mid {
        out.push(v - 1);
    }
    out
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int_toward(self.start as i128, *v as i128)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                a + rng.below((b as u64) - (a as u64) + 1) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int_toward(*self.start() as i128, *v as i128)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                // Per-component substitution: shrink one coordinate at a
                // time, a few candidates each, holding the rest fixed.
                let mut out = Vec::new();
                $(
                    for c in self.$n.shrink(&v.$n).into_iter().take(4) {
                        let mut w = v.clone();
                        w.$n = c;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// Length bound for [`VecStrategy`]: exact or half-open.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// `collection::vec` strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.new_value(rng)).collect()
    }
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural candidates first (shorter is simpler): truncate to
        // the minimum length, halve, then drop each element in turn.
        if v.len() > self.size.min {
            out.push(v[..self.size.min].to_vec());
            let half = self.size.min.max(v.len() / 2);
            if half < v.len() && half > self.size.min {
                out.push(v[..half].to_vec());
            }
            for i in 0..v.len().min(16) {
                let mut w = v.clone();
                w.remove(i);
                out.push(w);
            }
        }
        // Then element-wise: a few shrink candidates per position (one
        // alone can stall the descent when only the smallest steps —
        // e.g. the predecessor — still fail).
        for i in 0..v.len().min(16) {
            for c in self.elem.shrink(&v[i]).into_iter().take(4) {
                let mut w = v.clone();
                w[i] = c;
                out.push(w);
            }
        }
        out
    }
}

/// One repeated unit of a compiled pattern: a character alphabet plus a
/// repetition count range.
#[derive(Debug, Clone)]
struct Atom {
    alphabet: Vec<char>,
    min: usize,
    /// Inclusive.
    max: usize,
}

/// Strings matching a regex subset: literal characters, `[...]` classes
/// with ranges, negation (`[^...]`), and `&&` intersection, plus `{m,n}`
/// / `{n}` repetition. This covers every pattern the project's tests use.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    atoms: Vec<Atom>,
}

impl RegexStrategy {
    /// Compiles `pattern`, rejecting syntax outside the subset.
    pub fn compile(pattern: &str) -> Result<Self, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = find_class_end(&chars, i)
                        .ok_or_else(|| format!("unterminated class in {pattern:?}"))?;
                    let set = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    set
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| format!("dangling escape in {pattern:?}"))?;
                    i += 2;
                    vec![c]
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                c if !"{}*+?|()".contains(c) => {
                    i += 1;
                    vec![c]
                }
                c => return Err(format!("unsupported regex syntax {c:?} in {pattern:?}")),
            };
            // Optional {n} / {m,n} quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .ok_or_else(|| format!("unterminated quantifier in {pattern:?}"))?;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().map_err(|_| format!("bad count {a:?}"))?,
                        b.trim().parse().map_err(|_| format!("bad count {b:?}"))?,
                    ),
                    None => {
                        let n = body
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad count {body:?}"))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if alphabet.is_empty() && min > 0 {
                return Err(format!("empty alphabet with nonzero repeat in {pattern:?}"));
            }
            atoms.push(Atom { alphabet, min, max });
        }
        Ok(RegexStrategy { atoms })
    }
}

/// Finds the index of the `]` closing the class opened at `open`,
/// honouring nested `[...]` (set-intersection operands).
fn find_class_end(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 1,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses a class body (between `[` and `]`) into its character set.
/// Supports leading `^` (complement over ASCII 0x20..=0x7E), `a-z`
/// ranges, escapes, and `&&`-separated intersection operands that may
/// themselves be bracketed classes.
fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
    // Split on top-level `&&`.
    let mut parts: Vec<&[char]> = Vec::new();
    let mut start = 0;
    let mut i = 0;
    let mut depth = 0usize;
    while i < body.len() {
        match body[i] {
            '\\' => i += 1,
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            '&' if depth == 0 && body.get(i + 1) == Some(&'&') => {
                parts.push(&body[start..i]);
                i += 1;
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&body[start..]);

    let mut result: Option<Vec<char>> = None;
    for part in parts {
        // An operand may itself be a bracketed class.
        let set = if part.first() == Some(&'[') && part.last() == Some(&']') {
            parse_class(&part[1..part.len() - 1])?
        } else {
            parse_simple_class(part)?
        };
        result = Some(match result {
            None => set,
            Some(prev) => prev.into_iter().filter(|c| set.contains(c)).collect(),
        });
    }
    Ok(result.unwrap_or_default())
}

/// Parses a class with no `&&` operands.
fn parse_simple_class(body: &[char]) -> Result<Vec<char>, String> {
    let (negate, body) = match body.first() {
        Some('^') => (true, &body[1..]),
        _ => (false, body),
    };
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = match body[i] {
            '\\' => {
                i += 1;
                *body.get(i).ok_or("dangling escape in class")?
            }
            c => c,
        };
        // Range `a-z` (a trailing '-' is a literal).
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = body[i + 2];
            if c > hi {
                return Err(format!("inverted class range {c}-{hi}"));
            }
            for ch in c..=hi {
                set.push(ch);
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    set.sort_unstable();
    set.dedup();
    if negate {
        Ok((' '..='~').filter(|c| !set.contains(c)).collect())
    } else {
        Ok(set)
    }
}

impl Strategy for RegexStrategy {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let i = rng.below(atom.alphabet.len() as u64) as usize;
                out.push(atom.alphabet[i]);
            }
        }
        out
    }
}

/// String literals act as regex strategies (compiled lazily; panics on
/// unsupported syntax, matching upstream's behaviour of erroring in the
/// runner).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        RegexStrategy::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy: {e}"))
            .new_value(rng)
    }
}
