//! Workspace shim for `serde_derive`: the derives expand to nothing.
//!
//! The project uses `#[derive(Serialize, Deserialize)]` purely as an
//! annotation — no serializer is ever instantiated — so empty expansions
//! keep every type definition compiling without pulling in real serde.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
