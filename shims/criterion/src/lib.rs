//! Workspace shim for `criterion`: the `Criterion`/group/`Bencher`
//! surface over a simple wall-clock measurement loop.
//!
//! Each benchmark is auto-calibrated to a target time per sample, run
//! for a fixed number of samples, and reported as the median
//! time-per-iteration on stdout. There are no statistics, plots, or
//! baselines — just honest, repeatable numbers. Set
//! `CRITERION_QUICK=1` to cut sample counts (CI smoke runs).

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Iterations the next `iter` call must run.
    iters: u64,
    /// Measured elapsed time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times a routine that measures itself (receives the iteration
    /// count, returns total elapsed).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Settings {
    fn new() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Settings {
            sample_size: if quick { 10 } else { 30 },
            target_sample_time: if quick {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(50)
            },
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::new(),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self.settings, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            settings: Settings::new(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.settings, &full, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    settings: Settings,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample takes at
    // least the target time (or the count gets very large).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= settings.target_sample_time || iters >= 1 << 24 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (settings.target_sample_time.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16)
                as u64
        };
        iters = iters.saturating_mul(grow.max(2));
    }

    let mut per_iter: Vec<f64> = (0..settings.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let time = format_ns(median);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / median * 1e9 / (1024.0 * 1024.0);
            println!("{name:<45} {time:>12}/iter {mbps:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / median * 1e9;
            println!("{name:<45} {time:>12}/iter {eps:>10.0} elem/s");
        }
        None => println!("{name:<45} {time:>12}/iter"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group: a function list runnable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }

    #[test]
    fn group_with_throughput() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5).throughput(Throughput::Bytes(1024));
        g.bench_function("t", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
