//! API-subset stand-in for [`mio`](https://docs.rs/mio) 0.8 — readiness-driven
//! I/O over Linux `epoll`.
//!
//! The build environment has no crates.io access, so this shim vendors
//! exactly the surface the `phttp-proto` reactor uses: [`Poll`] /
//! [`Registry`] / [`Events`] over an `epoll` instance, [`Token`]s to
//! identify registered sources, [`Interest`] flags, a [`Waker`] (an
//! `eventfd` registered edge-triggered), and non-blocking
//! [`net::TcpListener`] / [`net::TcpStream`] wrappers.
//!
//! Deviations from upstream `mio`, all documented in `shims/README.md`:
//!
//! * **Level-triggered.** Upstream mio registers edge-triggered and asks
//!   consumers to drain until `WouldBlock`. This shim registers sockets
//!   level-triggered (the `Waker`'s eventfd is the only edge-triggered
//!   registration), which tolerates partial drains at a small cost in
//!   redundant wakeups — the simpler contract for a reproduction.
//! * **`net::TcpStream::connect`** is a true non-blocking connect
//!   (`EINPROGRESS` handshake), as upstream. It must be: a reactor
//!   shard dials peer listeners that other (or the same!) shards
//!   accept on, and a blocking loopback connect against a full
//!   backlog of a listener owned by the calling loop would deadlock
//!   the loop against itself. Completion surfaces as writability;
//!   failure as an error from the next read/write. (IPv6 only falls
//!   back to a blocking std connect; nothing in-tree dials IPv6.)
//! * **Linux only.** `epoll` and `eventfd` are used directly via
//!   `extern "C"` bindings (no `libc` crate in this environment).
//! * **`net::TcpListener::bind_reuseport`** is an extension upstream
//!   mio does not carry (there it comes via `socket2`): a raw
//!   `socket`/`setsockopt SO_REUSEPORT`/`bind`/`listen` sequence so the
//!   reactor's shards can each bind their own accept socket on one
//!   shared address. IPv4 only; callers use the error as the signal to
//!   fall back to an acceptor handoff.
//! * **`net::TcpStream::write_vectored`** is an inherent method over a
//!   raw `writev(2)` binding (upstream defers to std's `Write`
//!   implementation): scatter-gather output for the zero-copy response
//!   path, clamped to [`net::IOV_MAX`] entries per call.

#![deny(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

mod sys {
    //! Raw Linux syscall bindings (via the always-linked system libc).
    use std::os::raw::{c_int, c_uint, c_void};

    /// Kernel `struct epoll_event`. The UAPI declares it packed on
    /// x86_64 only; everywhere else it has natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const AF_INET: c_int = 2;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_REUSEADDR: c_int = 2;
    pub const SO_REUSEPORT: c_int = 15;
    pub const EINPROGRESS: i32 = 115;
    pub const EINTR: i32 = 4;

    /// Kernel `struct sockaddr_in` (IPv4 only — the reuseport group bind
    /// below is loopback-IPv4 by construction).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SockaddrIn {
        pub sin_family: u16,
        /// Network byte order.
        pub sin_port: u16,
        /// Network byte order.
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    /// Kernel `struct iovec` for `writev(2)`. `std::io::IoSlice` is
    /// documented ABI-compatible with this layout on Unix, which is what
    /// lets [`crate::net::TcpStream::write_vectored`] pass a slice of
    /// `IoSlice` straight to the syscall.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub iov_base: *const c_void,
        pub iov_len: usize,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        pub fn bind(fd: c_int, addr: *const SockaddrIn, addrlen: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const SockaddrIn, addrlen: u32) -> c_int;
        pub fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    }
}

/// Identifies a registered event source; carried through the kernel in
/// the `epoll_event` user-data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interests a source is registered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(1);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(2);
    /// No interests — the source stays registered but only error/hangup
    /// conditions (which `epoll` always reports) are delivered. Upstream
    /// mio has no such value; the reactor uses it for connections that
    /// are quiescent on the socket while waiting on internal events
    /// (e.g. an emulated disk read), where re-arming `READABLE` on an
    /// already-EOF'd socket would storm a level-triggered poller.
    pub const NONE: Interest = Interest(0);

    /// Combines two interests (upstream mio's `Interest::add`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether read readiness is included.
    pub const fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether write readiness is included.
    pub const fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn to_epoll(self) -> u32 {
        let mut bits = 0;
        if self.is_readable() {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Event-source types that can be registered with a [`Registry`].
pub mod event {
    use std::os::fd::RawFd;

    /// A registerable event source (anything with a file descriptor).
    pub trait Source {
        /// The descriptor `epoll` should watch.
        fn raw_fd(&self) -> RawFd;
    }

    /// One readiness event returned by [`crate::Poll::poll`].
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        pub(crate) bits: u32,
        pub(crate) token: crate::Token,
    }

    impl Event {
        /// The token the source was registered with.
        pub fn token(&self) -> crate::Token {
            self.token
        }

        /// Read readiness — includes hangup and error conditions, which a
        /// read will surface as EOF or an error.
        pub fn is_readable(&self) -> bool {
            self.bits & (super::sys::EPOLLIN | super::sys::EPOLLHUP | super::sys::EPOLLRDHUP) != 0
                || self.is_error()
        }

        /// Write readiness — includes error conditions, which a write
        /// will surface.
        pub fn is_writable(&self) -> bool {
            self.bits & (super::sys::EPOLLOUT | super::sys::EPOLLHUP) != 0 || self.is_error()
        }

        /// The peer closed (its write half of) the stream.
        pub fn is_read_closed(&self) -> bool {
            self.bits & (super::sys::EPOLLHUP | super::sys::EPOLLRDHUP) != 0
        }

        /// An error condition is pending on the source.
        pub fn is_error(&self) -> bool {
            self.bits & super::sys::EPOLLERR != 0
        }
    }
}

/// A buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// Creates a buffer holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = event::Event> + '_ {
        self.buf[..self.len].iter().map(|e| event::Event {
            bits: e.events,
            token: Token(e.data as usize),
        })
    }

    /// Whether the last poll returned no events (i.e. it timed out).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Handle for registering event sources with a [`Poll`] instance.
#[derive(Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token.0 as u64,
        };
        // SAFETY: plain FFI call; `ev` is a live stack value for the
        // duration of the call and the kernel validates both fds.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `source` for `interests` under `token` (level-triggered).
    pub fn register(
        &self,
        source: &mut impl event::Source,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            source.raw_fd(),
            interests.to_epoll(),
            token,
        )
    }

    /// Changes the interests (and/or token) of a registered source.
    pub fn reregister(
        &self,
        source: &mut impl event::Source,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            source.raw_fd(),
            interests.to_epoll(),
            token,
        )
    }

    /// Removes a source from the poller. Dropping a registered source
    /// also deregisters it (the kernel removes closed descriptors), but
    /// explicit deregistration keeps teardown deterministic.
    pub fn deregister(&self, source: &mut impl event::Source) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.raw_fd(), 0, Token(0))
    }
}

/// An `epoll` instance plus its registration handle.
#[derive(Debug)]
pub struct Poll {
    ep: OwnedFd,
    registry: Registry,
}

impl Poll {
    /// Creates a fresh `epoll` instance.
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain FFI call taking no pointers.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` was just returned open by epoll_create1, nothing
        // else owns it, and OwnedFd becomes its sole closer.
        let ep = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poll {
            registry: Registry { epfd: fd },
            ep,
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` blocks indefinitely). Sub-millisecond timeouts are
    /// rounded up to 1 ms so they cannot spin.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                if d.is_zero() {
                    0
                } else {
                    d.as_millis().clamp(1, i32::MAX as u128) as i32
                }
            }
        };
        loop {
            // SAFETY: `buf` is a live, exclusively borrowed allocation
            // of `buf.len()` EpollEvent slots; the kernel writes at most
            // that many entries and `rc` reports how many are valid.
            let rc = unsafe {
                sys::epoll_wait(
                    self.ep.as_raw_fd(),
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    ms,
                )
            };
            if rc >= 0 {
                events.len = rc as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            events.len = 0;
        }
    }
}

/// Wakes a blocked [`Poll::poll`] from any thread — an `eventfd`
/// registered edge-triggered, so the counter never needs draining.
#[derive(Debug)]
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates a waker delivering events under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        // SAFETY: plain FFI call taking no pointers.
        let raw = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `raw` was just returned open by eventfd, nothing else
        // owns it, and OwnedFd becomes its sole closer.
        let fd = unsafe { OwnedFd::from_raw_fd(raw) };
        registry.ctl(
            sys::EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            sys::EPOLLIN | sys::EPOLLET,
            token,
        )?;
        Ok(Waker { fd })
    }

    /// Wakes the poller. Idempotent while unconsumed; never blocks (a
    /// saturated eventfd counter means a wake is already pending).
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: the source pointer addresses `one`, a live stack u64,
        // and the length is exactly its 8 bytes; the fd is owned by
        // `self` and stays open across the call.
        let rc = unsafe {
            sys::write(
                self.fd.as_raw_fd(),
                &one as *const u64 as *const std::os::raw::c_void,
                8,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Drains the eventfd counter so a level-triggered reader would stop
    /// seeing it; unnecessary with the edge-triggered registration but
    /// harmless, and useful in tests.
    pub fn clear(&self) {
        let mut buf = 0u64;
        // SAFETY: the destination pointer addresses `buf`, a live,
        // exclusively borrowed stack u64, and the length is exactly its
        // 8 bytes; an eventfd read writes either 8 bytes or nothing.
        unsafe {
            sys::read(
                self.fd.as_raw_fd(),
                &mut buf as *mut u64 as *mut std::os::raw::c_void,
                8,
            )
        };
    }
}

/// Non-blocking TCP wrappers registerable with a [`Poll`].
pub mod net {
    use super::event::Source;
    use std::io::{self, Read, Write};
    use std::net::SocketAddr;
    use std::os::fd::{AsRawFd, RawFd};

    /// Linux's `IOV_MAX`: the most iovec entries one `writev(2)` call
    /// accepts. [`TcpStream::write_vectored`] clamps longer batches to
    /// this bound (the clamped tail simply reads as a partial write the
    /// caller resumes), rather than surfacing `EINVAL`.
    pub const IOV_MAX: usize = 1024;

    /// A non-blocking TCP listener.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Wraps a bound std listener, switching it to non-blocking mode.
        pub fn from_std(inner: std::net::TcpListener) -> TcpListener {
            inner
                .set_nonblocking(true)
                .expect("set listener non-blocking");
            TcpListener { inner }
        }

        /// Binds a non-blocking listener on `addr`.
        pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            Ok(Self::from_std(std::net::TcpListener::bind(addr)?))
        }

        /// Binds a non-blocking listener on `addr` with `SO_REUSEPORT`
        /// (and `SO_REUSEADDR`) set **before** the bind, so several
        /// listeners — typically one per reactor shard — can share one
        /// address and have the kernel spread incoming connections
        /// across their accept queues. IPv4 only (the reactor binds
        /// loopback aliases); an IPv6 address is an `InvalidInput`
        /// error, which callers treat as "the shim can't express it"
        /// and fall back to an acceptor handoff.
        ///
        /// Extension over upstream mio (which exposes reuseport via
        /// `socket2`, unavailable offline); see `shims/README.md`.
        pub fn bind_reuseport(addr: SocketAddr, backlog: u32) -> io::Result<TcpListener> {
            use super::sys;
            use std::os::fd::{FromRawFd, OwnedFd};

            let SocketAddr::V4(v4) = addr else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "reuseport bind is IPv4-only in the mio shim",
                ));
            };
            // SAFETY: plain FFI call taking no pointers.
            let raw = unsafe { sys::socket(sys::AF_INET, sys::SOCK_STREAM | sys::SOCK_CLOEXEC, 0) };
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `raw` was just returned open by socket(2) and
            // nothing else owns it. From here the fd is owned: any
            // error path closes it via OwnedFd's Drop.
            let fd = unsafe { OwnedFd::from_raw_fd(raw) };
            let one: i32 = 1;
            for opt in [sys::SO_REUSEADDR, sys::SO_REUSEPORT] {
                // SAFETY: the option pointer addresses `one`, a live
                // stack i32, with optlen exactly its size; `raw` stays
                // open (owned by `fd`) across the call.
                let rc = unsafe {
                    sys::setsockopt(
                        raw,
                        sys::SOL_SOCKET,
                        opt,
                        &one as *const i32 as *const std::os::raw::c_void,
                        std::mem::size_of::<i32>() as u32,
                    )
                };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            let sa = sys::SockaddrIn {
                sin_family: sys::AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a live, correctly sized SockaddrIn for
            // the duration of the call; `raw` stays open (owned by
            // `fd`).
            let rc = unsafe { sys::bind(raw, &sa, std::mem::size_of::<sys::SockaddrIn>() as u32) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: plain FFI call taking no pointers; `raw` stays
            // open (owned by `fd`).
            let rc = unsafe { sys::listen(raw, backlog.min(i32::MAX as u32) as i32) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self::from_std(std::net::TcpListener::from(fd)))
        }

        /// Accepts one pending connection; `WouldBlock` when none is
        /// queued. The accepted stream is already non-blocking.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (s, addr) = self.inner.accept()?;
            Ok((TcpStream::from_std(s), addr))
        }

        /// The bound local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl Source for TcpListener {
        fn raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    /// A non-blocking TCP stream.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Wraps a connected std stream, switching it to non-blocking mode.
        pub fn from_std(inner: std::net::TcpStream) -> TcpStream {
            inner
                .set_nonblocking(true)
                .expect("set stream non-blocking");
            TcpStream { inner }
        }

        /// Starts a **non-blocking** connect to `addr` (IPv4), like
        /// upstream mio: the socket is created non-blocking and
        /// `connect(2)`'s `EINPROGRESS` is success — the connection
        /// completes in the background and the socket becomes writable
        /// (or readable+error on failure). Callers that write before
        /// completion see `WouldBlock` and park the bytes for the
        /// writable event; a failed connect surfaces as an error from
        /// the next read/write.
        ///
        /// This MUST NOT block even transiently: an event loop dials
        /// peers whose accept queues it also drains — a blocking
        /// loopback connect against that loop's own full listener
        /// backlog would deadlock the loop against itself. (IPv6 falls
        /// back to a blocking std connect; nothing in-tree dials IPv6.)
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            use super::sys;
            use std::os::fd::{FromRawFd, OwnedFd};

            let SocketAddr::V4(v4) = addr else {
                return Ok(Self::from_std(std::net::TcpStream::connect(addr)?));
            };
            // SAFETY: plain FFI call taking no pointers.
            let raw = unsafe {
                sys::socket(
                    sys::AF_INET,
                    sys::SOCK_STREAM | sys::SOCK_CLOEXEC | sys::SOCK_NONBLOCK,
                    0,
                )
            };
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `raw` was just returned open by socket(2),
            // nothing else owns it, and OwnedFd becomes its sole
            // closer (error paths below close via Drop).
            let fd = unsafe { OwnedFd::from_raw_fd(raw) };
            let sa = sys::SockaddrIn {
                sin_family: sys::AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a live, correctly sized SockaddrIn for
            // the duration of the call; `raw` stays open (owned by
            // `fd`).
            let rc =
                unsafe { sys::connect(raw, &sa, std::mem::size_of::<sys::SockaddrIn>() as u32) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                // EINPROGRESS is the normal non-blocking handshake;
                // EINTR means the kernel continues it in the background.
                let in_progress = matches!(
                    err.raw_os_error(),
                    Some(code) if code == sys::EINPROGRESS || code == sys::EINTR
                );
                if !in_progress {
                    return Err(err);
                }
            }
            // Already non-blocking via SOCK_NONBLOCK; from_std's extra
            // set_nonblocking is an idempotent no-op.
            Ok(Self::from_std(std::net::TcpStream::from(fd)))
        }

        /// Writes from several buffers in one `writev(2)` syscall —
        /// scatter-gather output, so a response header and a shared
        /// (refcounted) body slice go to the kernel in a single call
        /// with zero userspace copies.
        ///
        /// Semantics match a single `write`: the return value is how
        /// many bytes of the *logical concatenation* of `bufs` were
        /// accepted, which may end mid-buffer (a partial write) — the
        /// caller resumes from that offset. A full socket buffer
        /// surfaces as `WouldBlock` (EAGAIN), exactly like `write`.
        /// Batches longer than [`IOV_MAX`] are clamped (the kernel
        /// would reject them with `EINVAL`); the unclamped tail is
        /// indistinguishable from a partial write. Zero-length buffers
        /// are legal and contribute nothing.
        ///
        /// Extension over this shim's `Write` impl: upstream mio gets
        /// vectored writes from std's `Write::write_vectored`; the shim
        /// routes through the raw syscall binding so the whole data
        /// path stays visible offline (see `shims/README.md`).
        pub fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            let cnt = bufs.len().min(IOV_MAX);
            if cnt == 0 {
                return Ok(0);
            }
            loop {
                // SAFETY: `IoSlice` is documented ABI-compatible with
                // `struct iovec` on Unix; the fd outlives the call.
                let rc = unsafe {
                    super::sys::writev(
                        self.inner.as_raw_fd(),
                        bufs.as_ptr() as *const super::sys::IoVec,
                        cnt as i32,
                    )
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }

        /// Sets `TCP_NODELAY`.
        pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
            self.inner.set_nodelay(nodelay)
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// The local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl Source for TcpStream {
        fn raw_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Instant;

    const LISTENER: Token = Token(1);
    const CLIENT: Token = Token(2);
    const WAKER: Token = Token(3);

    #[test]
    fn poll_times_out() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn readable_and_writable_events_flow() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        let mut listener = net::TcpListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, LISTENER, Interest::READABLE)
            .unwrap();

        let mut client = net::TcpStream::connect(addr).unwrap();
        // The pending accept must surface as a readable listener event.
        let mut accepted = None;
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == LISTENER && e.is_readable())
            {
                let (s, _) = listener.accept().unwrap();
                accepted = Some(s);
                break;
            }
        }
        let mut server_side = accepted.expect("accept event");

        // A fresh stream is immediately writable.
        poll.registry()
            .register(&mut client, CLIENT, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));

        // Reads on the non-blocking client would block while idle...
        let mut buf = [0u8; 16];
        assert_eq!(
            client.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );

        // ...until the server writes, which raises a readable event.
        server_side.write_all(b"ping").unwrap();
        poll.registry()
            .reregister(&mut client, CLIENT, Interest::READABLE)
            .unwrap();
        let mut got_readable = false;
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == CLIENT && e.is_readable())
            {
                got_readable = true;
                break;
            }
        }
        assert!(got_readable);
        assert_eq!(client.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");

        // Peer close surfaces as read-closed/readable (EOF on read).
        drop(server_side);
        let mut got_eof = false;
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == CLIENT && e.is_readable())
            {
                got_eof = true;
                break;
            }
        }
        assert!(got_eof);
        assert_eq!(client.read(&mut buf).unwrap(), 0);

        poll.registry().deregister(&mut client).unwrap();
    }

    /// The sharded-reactor deadlock regression: a loop dials peer
    /// listeners whose accept queues *it* drains, so `connect` must
    /// return immediately (EINPROGRESS) even when the target's backlog
    /// is full — the old blocking connect wedged the calling thread
    /// until someone accepted, which for a loop dialing its own
    /// listener was never.
    #[test]
    fn connect_does_not_block_on_a_full_backlog() {
        let l = net::TcpListener::bind_reuseport("127.0.0.1:0".parse().unwrap(), 1).unwrap();
        let addr = l.local_addr().unwrap();
        let start = Instant::now();
        // Dial far past the backlog from this single thread, accepting
        // nothing.
        let streams: Vec<_> = (0..16)
            .map(|_| net::TcpStream::connect(addr).expect("non-blocking dial"))
            .collect();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "connect blocked on a full backlog"
        );
        drop(streams);
    }

    #[test]
    fn reuseport_group_shares_one_address() {
        // First listener picks the port; the rest of the group binds the
        // same concrete address. Every connection lands in exactly one
        // member's accept queue.
        let l0 = net::TcpListener::bind_reuseport("127.0.0.1:0".parse().unwrap(), 128).unwrap();
        let addr = l0.local_addr().unwrap();
        let l1 = net::TcpListener::bind_reuseport(addr, 128).unwrap();
        assert_eq!(l1.local_addr().unwrap(), addr);

        // A plain (non-reuseport) bind of the same address must still
        // fail — the option gates the sharing.
        assert!(std::net::TcpListener::bind(addr).is_err());

        const N: usize = 32;
        let streams: Vec<_> = (0..N)
            .map(|_| std::net::TcpStream::connect(addr).unwrap())
            .collect();
        // Drain both queues; the kernel decides the split, the total is
        // what the contract guarantees.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut accepted = 0;
        while accepted < N && Instant::now() < deadline {
            let mut progress = false;
            for l in [&l0, &l1] {
                match l.accept() {
                    Ok(_) => {
                        accepted += 1;
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
            if !progress {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(accepted, N, "every connection reaches some group member");
        drop(streams);

        // IPv6 is out of scope: callers use the error to fall back.
        let v6 = "[::1]:0".parse().unwrap();
        assert!(net::TcpListener::bind_reuseport(v6, 128).is_err());
    }

    /// A connected loopback pair: shim sender (non-blocking), std
    /// receiver (blocking reads in the test body).
    fn loopback_pair() -> (net::TcpStream, std::net::TcpStream) {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let sender = net::TcpStream::connect(addr).unwrap();
        let (receiver, _) = l.accept().unwrap();
        (sender, receiver)
    }

    #[test]
    fn writev_concatenates_and_skips_empty_iovecs() {
        let (mut tx, mut rx) = loopback_pair();
        // Non-blocking connect may not have completed instantly; retry
        // the first write until the handshake lands.
        let bufs = [
            io::IoSlice::new(b""),
            io::IoSlice::new(b"HTTP/1.1 200 OK\r\n\r\n"),
            io::IoSlice::new(b""),
            io::IoSlice::new(b"body-bytes"),
        ];
        let deadline = Instant::now() + Duration::from_secs(5);
        let n = loop {
            match tx.write_vectored(&bufs) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(Instant::now() < deadline, "connect never completed");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("writev failed: {e}"),
            }
        };
        assert_eq!(n, 29, "zero-length iovecs contribute nothing");
        let mut got = vec![0u8; n];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"HTTP/1.1 200 OK\r\n\r\nbody-bytes");
    }

    /// Filling the socket until EAGAIN forces partial writes that end
    /// mid-iovec; the acknowledged byte count must describe an exact
    /// prefix of the logical concatenation — nothing dropped, nothing
    /// duplicated, nothing reordered.
    #[test]
    fn writev_partial_write_lands_mid_iovec_without_corruption() {
        let (mut tx, mut rx) = loopback_pair();
        // A long repeating pattern (coprime with power-of-two buffer
        // sizes) so any drop/dup/reorder misaligns the comparison.
        // Chunk length a multiple of the pattern period, so the cyclic
        // stream reads as a continuous `i % 251` sequence.
        let chunk: Vec<u8> = (0..251 * 130).map(|i| (i % 251) as u8).collect();
        let mut acked = 0usize;
        let mut received = Vec::new();
        let mut saw_mid_iovec_partial = false;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < deadline, "no mid-iovec partial observed");
            // Slide the iovec boundaries with the acked position so the
            // logical stream is a continuous repetition of the pattern
            // regardless of where each call's acceptance stopped.
            let pos = acked % chunk.len();
            let bufs = [
                io::IoSlice::new(&chunk[pos..]),
                io::IoSlice::new(&chunk[..pos]),
                io::IoSlice::new(&chunk),
            ];
            let total: usize = bufs.iter().map(|b| b.len()).sum();
            match tx.write_vectored(&bufs) {
                Ok(0) => panic!("writev returned 0 on an open socket"),
                Ok(n) => {
                    // Partial acceptance that is not an iovec-boundary
                    // multiple means the kernel stopped mid-buffer.
                    if n < total && n != chunk.len() - pos && n != 2 * chunk.len() - pos {
                        saw_mid_iovec_partial = true;
                    }
                    acked += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if saw_mid_iovec_partial {
                        break;
                    }
                    // Drain a little (keeping every byte for the final
                    // comparison) and keep filling until a partial
                    // write lands mid-iovec.
                    let mut sink = vec![0u8; 64 * 1024];
                    let drained = rx.read(&mut sink).unwrap();
                    received.extend_from_slice(&sink[..drained]);
                }
                Err(e) => panic!("writev failed: {e}"),
            }
        }
        drop(tx);
        // Everything acknowledged (and nothing more) arrives, in order.
        rx.read_to_end(&mut received).unwrap();
        assert_eq!(
            received.len(),
            acked,
            "received exactly the acknowledged bytes"
        );
        for (i, &b) in received.iter().enumerate() {
            assert_eq!(b, (i % 251) as u8, "stream corrupt at offset {i}");
        }
    }

    #[test]
    fn writev_clamps_batches_to_iov_max() {
        let (mut tx, mut rx) = loopback_pair();
        // 2500 one-byte iovecs: the kernel takes at most IOV_MAX per
        // call, so the first call must accept exactly IOV_MAX bytes
        // (loopback buffers dwarf 1024 bytes; nothing else can shorten
        // it) and the rest behaves as a resumable partial write.
        let seq: Vec<u8> = (0..2500u32).map(|i| (i % 241) as u8).collect();
        let slices: Vec<io::IoSlice> = seq.chunks(1).map(io::IoSlice::new).collect();
        assert!(slices.len() > net::IOV_MAX);
        let deadline = Instant::now() + Duration::from_secs(5);
        let n = loop {
            match tx.write_vectored(&slices) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(Instant::now() < deadline, "connect never completed");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("writev failed: {e}"),
            }
        };
        assert_eq!(n, net::IOV_MAX, "batch clamped at IOV_MAX entries");
        // Resume past the clamp: the caller-side contract is the same
        // as any partial write.
        let rest: Vec<io::IoSlice> = seq[n..].chunks(1).map(io::IoSlice::new).collect();
        let m = tx.write_vectored(&rest).unwrap();
        assert_eq!(m, rest.len().min(net::IOV_MAX));
        let mut got = vec![0u8; n + m];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got[..], &seq[..n + m], "clamped writes stay in order");
    }

    #[test]
    fn writev_empty_batch_is_a_no_op() {
        let (mut tx, _rx) = loopback_pair();
        assert_eq!(tx.write_vectored(&[]).unwrap(), 0);
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), WAKER).unwrap());

        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake().unwrap();
        });

        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "waker never fired"
        );
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        t.join().unwrap();

        // Edge-triggered: an unconsumed wake does not storm the poller.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // A second wake after the edge re-arms delivers again.
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER));
        waker.clear();
    }
}
