//! Workspace shim for `rand` 0.8: the `Rng`/`SeedableRng` traits and a
//! deterministic `rngs::SmallRng`.
//!
//! The generator is xoshiro256++ seeded through splitmix64. It does NOT
//! reproduce upstream `SmallRng` streams — only the project's actual
//! contract: a fixed seed yields a fixed stream within this build, so
//! trace generation and simulations stay deterministic.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution (the `rng.gen()`
/// surface of upstream rand).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Half-open ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty gen_range");
                if a == <$t>::MIN && b == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (a..b + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling trait (`rand::Rng`), blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`rng.gen::<f64>()`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic seeding (`rand::SeedableRng`), reduced to the one
/// constructor the project uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(3u32..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a small range hit");
        for _ in 0..1_000 {
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
