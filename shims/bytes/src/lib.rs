//! Workspace shim for `bytes`: cheaply-cloneable immutable [`Bytes`], a
//! growable [`BytesMut`] with a consuming front cursor, and the
//! [`Buf`]/[`BufMut`] trait subset the HTTP layer uses.
//!
//! `Bytes` is an `Arc<[u8]>` plus a sub-range, so `clone` is O(1) and
//! `freeze`/`split_to` never copy more than once.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copies once; upstream is zero-copy, but
    /// no caller here is on a hot path with static data).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-range sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let range = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        }..match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. Both halves share the original allocation (no copy), like
    /// upstream `Bytes::split_to`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// How many `Bytes` handles share this allocation (upstream exposes
    /// this only indirectly via `try_into_mut`; the reproduction needs
    /// it directly as the refcount-hygiene observability hook: a cache
    /// that is the sole owner of a body reads 1 here).
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The readable byte slice.
    fn chunk(&self) -> &[u8];
    /// Discards the first `n` readable bytes.
    fn advance(&mut self, n: usize);
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer with an amortized-O(1) consuming front cursor.
///
/// `advance`/`split_to` move a read offset instead of shifting the tail;
/// the spent prefix is reclaimed when it outgrows the live region.
#[derive(Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read offset: `buf[off..]` is the live region.
    off: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            off: 0,
        }
    }

    /// Live length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.off
    }

    /// Whether the live region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_sparse();
        self.buf.extend_from_slice(src);
    }

    /// Removes and returns the first `n` live bytes as a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.buf[self.off..self.off + n].to_vec();
        self.off += n;
        self.compact_if_sparse();
        BytesMut { buf: head, off: 0 }
    }

    /// Freezes into an immutable [`Bytes`] (one copy of the live region
    /// at most — none when nothing has been consumed).
    pub fn freeze(mut self) -> Bytes {
        if self.off > 0 {
            self.buf.drain(..self.off);
        }
        Bytes::from(self.buf)
    }

    /// Drops all content.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.off = 0;
    }

    /// Reclaims the consumed prefix once it dominates the allocation.
    fn compact_if_sparse(&mut self) {
        if self.off > 4096 && self.off * 2 >= self.buf.len() {
            self.buf.drain(..self.off);
            self.off = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf[self.off..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.off += n;
        self.compact_if_sparse();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.off..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_shares_and_compares() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![2, 3]));
    }

    // The next three tests pin the aliasing semantics the upstream
    // `bytes` crate documents: `clone`, `slice`, and `split_to` are all
    // O(1) views over one shared allocation — no copies — and dropping
    // views releases ownership until the last one frees the data.

    #[test]
    fn clone_and_slice_share_one_allocation() {
        let a = Bytes::from(vec![9u8; 64]);
        assert_eq!(a.strong_count(), 1, "fresh buffer has one owner");
        let b = a.clone();
        let c = a.slice(8..32);
        assert_eq!(a.strong_count(), 3, "clone and slice are views, not copies");
        assert_eq!(b.strong_count(), 3);
        assert_eq!(c.strong_count(), 3);
        // Views alias the same memory, not equal-but-separate copies.
        assert!(std::ptr::eq(&a[8], &c[0]));
        assert!(std::ptr::eq(&a[0], &b[0]));
        drop(b);
        drop(c);
        assert_eq!(a.strong_count(), 1, "dropping views releases ownership");
    }

    #[test]
    fn split_to_is_zero_copy_and_exact() {
        let mut rest = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let head = rest.split_to(40);
        assert_eq!(head.len(), 40);
        assert_eq!(rest.len(), 60);
        assert_eq!(&head[..], &(0u8..40).collect::<Vec<u8>>()[..]);
        assert_eq!(&rest[..], &(40u8..100).collect::<Vec<u8>>()[..]);
        // Both halves alias the original allocation.
        assert_eq!(head.strong_count(), 2);
        assert_eq!(
            &head[39] as *const u8 as usize + 1,
            &rest[0] as *const u8 as usize,
            "halves are adjacent views of one allocation"
        );
        // Degenerate splits: empty head, then the whole remainder.
        let empty = rest.split_to(0);
        assert!(empty.is_empty());
        let all = rest.split_to(rest.len());
        assert!(rest.is_empty());
        assert_eq!(all.len(), 60);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn bytes_split_to_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        let _ = b.split_to(4);
    }

    #[test]
    fn slice_of_slice_composes_offsets() {
        let a = Bytes::from((0u8..50).collect::<Vec<u8>>());
        let mid = a.slice(10..40);
        let inner = mid.slice(5..10);
        assert_eq!(&inner[..], &[15, 16, 17, 18, 19]);
        assert_eq!(a.strong_count(), 3);
    }

    #[test]
    fn bytesmut_append_advance_split_freeze() {
        let mut m = BytesMut::new();
        m.put_slice(b"HTTP/1.1 200 OK\r\n");
        m.put_u8(b'x');
        assert_eq!(m.len(), 18);
        m.advance(9);
        assert_eq!(&m[..6], b"200 OK");
        let head = m.split_to(6);
        assert_eq!(&head[..], b"200 OK");
        assert_eq!(head.freeze(), Bytes::from_static(b"200 OK"));
        assert_eq!(&m.freeze()[..], b"\r\nx");
    }

    #[test]
    fn compaction_preserves_live_bytes() {
        let mut m = BytesMut::new();
        for i in 0..10_000u32 {
            m.put_u32(i);
        }
        m.advance(39_996);
        assert_eq!(m.len(), 4);
        m.put_slice(b"tail");
        assert_eq!(&m[..4], &9999u32.to_be_bytes());
        assert_eq!(&m[4..], b"tail");
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        let mut m = BytesMut::new();
        m.put_slice(b"ab");
        m.advance(3);
    }
}
