//! Workspace shim for `crossbeam`: an unbounded blocking MPMC channel
//! (`channel::unbounded`) built on a mutex + condvar. Receivers are
//! cloneable, which `std::sync::mpsc` does not offer — that is the one
//! property the prototype's worker pool needs.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when sending into a channel with no receivers.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, sender-less channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the queue still empty.
        Timeout,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a value arrives, every sender is gone, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .ready
                    .wait_timeout(q, left)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_fan_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_with_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
