//! Workspace shim for `serde`: marker traits plus no-op derive macros.
//!
//! The project annotates config/report types with
//! `#[derive(Serialize, Deserialize)]` but never drives a serializer, so
//! the traits carry no methods and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
