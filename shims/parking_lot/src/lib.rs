//! Workspace shim for `parking_lot`: non-poisoning `Mutex`, `RwLock`
//! and `Condvar` built on `std::sync`. A panic while holding a guard
//! does not poison the lock — subsequent lockers recover the inner
//! value, matching upstream parking_lot semantics closely enough for
//! this project's use.
//!
//! Under the `lockcheck` cargo feature every blocking acquisition,
//! release, and condvar wait is reported to the [`lockcheck`] checker
//! together with the lock's [`LockClass`] (registered via
//! [`Mutex::new_classed`] / [`RwLock::new_classed`]) and the caller's
//! source location, so lock-order inversions panic with a two-site
//! witness the moment they are *observed* — not only when they happen
//! to deadlock. Locks built with plain `new` carry
//! [`LockClass::UNCLASSED`] and are tracked but exempt from the rules.

use std::sync::{self, Condvar as StdCondvar, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

pub use lockcheck::{LockClass, LockGroup};

#[cfg(feature = "lockcheck")]
use std::panic::Location;

/// Mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    class: LockClass,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` solely so [`Condvar::wait`]
/// can hand it to `std::sync::Condvar` (whose `wait` consumes and
/// returns guards) while the caller keeps borrowing this wrapper; it is
/// `None` only inside that window, during which the guard is mutably
/// borrowed and cannot be dereferenced.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
    class: LockClass,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard lent to Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard lent to Condvar::wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            #[cfg(feature = "lockcheck")]
            lockcheck::on_release(self.class);
        }
        let _ = self.class;
    }
}

impl<T> Mutex<T> {
    /// Creates a new unclassed mutex (exempt from lock-order rules).
    pub const fn new(value: T) -> Self {
        Self::new_classed(LockClass::UNCLASSED, value)
    }

    /// Creates a new mutex registered under `class` for lock-order
    /// checking.
    pub const fn new_classed(class: LockClass, value: T) -> Self {
        Mutex {
            class,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other
    /// holders do not poison the lock.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        lockcheck::on_acquire(self.class, Location::caller());
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            class: self.class,
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockcheck")]
        lockcheck::on_acquire_try(self.class, Location::caller());
        Some(MutexGuard {
            inner: Some(g),
            class: self.class,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`], parking_lot style: `wait`
/// takes the guard by `&mut` instead of consuming it.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically releases the guard's mutex and parks until notified;
    /// the mutex is re-acquired before returning. Under `lockcheck` the
    /// guard's class is popped from the held set for the park and
    /// re-checked/re-pushed on wake (the re-acquisition participates in
    /// lock ordering like any other blocking acquisition).
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard already lent to Condvar::wait");
        #[cfg(feature = "lockcheck")]
        lockcheck::on_wait_release(guard.class);
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lockcheck")]
        lockcheck::on_wait_reacquire(guard.class, Location::caller());
        guard.inner = Some(inner);
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock; `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    class: LockClass,
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
    class: LockClass,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockcheck")]
        lockcheck::on_release(self.class);
        let _ = self.class;
    }
}

/// RAII write guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
    class: LockClass,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lockcheck")]
        lockcheck::on_release(self.class);
        let _ = self.class;
    }
}

impl<T> RwLock<T> {
    /// Creates a new unclassed reader-writer lock (exempt from
    /// lock-order rules).
    pub const fn new(value: T) -> Self {
        Self::new_classed(LockClass::UNCLASSED, value)
    }

    /// Creates a new reader-writer lock registered under `class` for
    /// lock-order checking.
    pub const fn new_classed(class: LockClass, value: T) -> Self {
        RwLock {
            class,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        lockcheck::on_acquire(self.class, Location::caller());
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            class: self.class,
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        lockcheck::on_acquire(self.class, Location::caller());
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            class: self.class,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // No poisoning: the value is still reachable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        assert!(waiter.join().unwrap());
    }
}
