//! Workspace shim for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! built on `std::sync`. A panic while holding a guard does not poison the
//! lock — subsequent lockers recover the inner value, matching upstream
//! parking_lot semantics closely enough for this project's use.

use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// Mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other
    /// holders do not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // No poisoning: the value is still reachable.
        assert_eq!(*m.lock(), 0);
    }
}
