//! Integration tests for the shim's lockcheck instrumentation: a
//! deliberate two-thread lock-order inversion caught *without* a
//! deadlock, and condvar held-set bookkeeping across `wait`.
//!
//! Only meaningful with the checker compiled in:
//! `cargo test -p parking_lot --features lockcheck`.
#![cfg(feature = "lockcheck")]

use std::sync::Arc;

use parking_lot::{Condvar, LockClass, Mutex};

/// Two classes acquired in both orders by two threads. The first thread
/// nests `outer → inner` and exits; the second nests `inner → outer`
/// *after the first has finished*, so no interleaving of the two could
/// ever deadlock — the inversion is caught from the order graph alone,
/// and the panic names both acquisition sites of the recorded edge plus
/// the acquiring site.
#[test]
fn inversion_on_two_threads_panics_with_both_sites() {
    let outer = Arc::new(Mutex::new_classed(LockClass::other("it-inv-outer"), ()));
    let inner = Arc::new(Mutex::new_classed(LockClass::other("it-inv-inner"), ()));

    let (o2, i2) = (outer.clone(), inner.clone());
    let first_sites = std::thread::spawn(move || {
        let outer_line = line!() + 1;
        let _g_outer = o2.lock();
        let inner_line = line!() + 1;
        let _g_inner = i2.lock();
        (outer_line, inner_line)
    })
    .join()
    .expect("legal nesting does not panic");

    // Inverse order on this thread. The inner lock is free (the first
    // thread is gone), so without the checker this would succeed
    // silently and the deadlock would stay latent until two threads hit
    // both orders concurrently.
    let _g_inner = inner.lock();
    let acquiring_line = line!() + 2;
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g_outer = outer.lock();
    }))
    .expect_err("inverted acquisition must panic under lockcheck");
    let msg = err
        .downcast_ref::<String>()
        .expect("lockcheck panics with a String payload");

    assert!(msg.contains("lock-order inversion"), "{msg}");
    assert!(
        msg.contains("it-inv-outer(0)") && msg.contains("it-inv-inner(0)"),
        "{msg}"
    );
    // The witness names this (acquiring) site, the held inner lock's
    // site, and both sites of the first thread's recorded edge.
    let this_file = "lockcheck.rs";
    for line in [first_sites.0, first_sites.1, acquiring_line] {
        assert!(
            msg.contains(&format!("{this_file}:{line}")),
            "witness must name {this_file}:{line}:\n{msg}"
        );
    }
}

/// `Condvar::wait` pops the guard's class from the held set while the
/// thread is parked and re-pushes it exactly once on wake. (If the pop
/// were missing, the re-acquire would panic as a recursive acquisition;
/// if the re-push doubled, the final held set would show two entries.)
#[test]
fn condvar_wait_pops_and_repushes_held_set() {
    let pair = Arc::new((
        Mutex::new_classed(LockClass::other("it-cv"), false),
        Condvar::new(),
    ));
    let pair2 = pair.clone();
    let waiter = std::thread::spawn(move || {
        let (m, cv) = &*pair2;
        let mut g = m.lock();
        let before = lockcheck::held_names();
        while !*g {
            cv.wait(&mut g);
        }
        let after = lockcheck::held_names();
        drop(g);
        let end = lockcheck::held_names();
        (before, after, end)
    });

    {
        let (m, cv) = &*pair;
        // Taking the same mutex here proves the waiter's wait released
        // it; this thread's held set is independent (thread-local), so
        // no recursion trips.
        let mut g = m.lock();
        *g = true;
        drop(g);
        cv.notify_one();
    }

    let (before, after, end) = waiter.join().expect("waiter must not panic");
    assert_eq!(before, vec!["it-cv(0)".to_string()], "held while locked");
    assert_eq!(
        after,
        vec!["it-cv(0)".to_string()],
        "re-pushed exactly once after the wait re-acquired"
    );
    assert!(end.is_empty(), "released on guard drop");
}
