//! Shared harness support for the figure-regeneration binaries.
//!
//! Every `src/bin/figNN_*.rs` binary follows the same contract:
//!
//! * prints the figure's series as an aligned table (and optionally CSV);
//! * `--check` re-validates the paper's *shape claims* for that figure and
//!   exits nonzero on violation, so figures double as regression tests;
//! * `--quick` runs a scaled-down configuration for CI.

use std::fmt::Write as _;

use phttp_analytic::{AnalyticModel, MechanismKind};
use phttp_sim::{build_workload, Report, SimConfig, Simulator};
use phttp_trace::{SessionConfig, SynthConfig, Trace};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, Default)]
pub struct FigOpts {
    /// Scaled-down run for CI.
    pub quick: bool,
    /// Validate shape claims and exit nonzero on failure.
    pub check: bool,
    /// Emit CSV to stdout after the table.
    pub csv: bool,
}

impl FigOpts {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn from_env() -> Self {
        let mut o = FigOpts::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--check" => o.check = true,
                "--csv" => o.csv = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --quick (scaled-down run) --check (validate shape claims) --csv"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("note: ignoring unknown flag {other}"),
            }
        }
        o
    }
}

/// A printable figure: named rows over shared numeric columns.
#[derive(Debug, Default)]
pub struct FigTable {
    title: String,
    column_header: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl FigTable {
    /// Creates a table with the given title and column labels.
    pub fn new(title: &str, column_header: &str, columns: Vec<String>) -> Self {
        FigTable {
            title: title.to_owned(),
            column_header: column_header.to_owned(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a named series.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn row(&mut self, name: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((name.to_owned(), values));
    }

    /// Returns a previously added row by name.
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## {}", self.title);
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([self.column_header.len()])
            .max()
            .unwrap_or(8)
            + 2;
        let _ = write!(s, "{:<name_w$}", self.column_header);
        for c in &self.columns {
            let _ = write!(s, "{c:>10}");
        }
        let _ = writeln!(s);
        for (name, vals) in &self.rows {
            let _ = write!(s, "{name:<name_w$}");
            for v in vals {
                let _ = write!(s, "{v:>10.1}");
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Renders CSV (header row, then one line per series).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "series,{}", self.columns.join(","));
        for (name, vals) in &self.rows {
            let cells: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(s, "{name},{}", cells.join(","));
        }
        s
    }

    /// Prints the table (and CSV if requested).
    pub fn print(&self, opts: &FigOpts) {
        println!("{}", self.render());
        if opts.csv {
            println!("{}", self.to_csv());
        }
    }
}

/// Accumulates shape-claim validations.
#[derive(Debug, Default)]
pub struct ShapeCheck {
    failures: Vec<String>,
    passes: usize,
}

impl ShapeCheck {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one claim.
    pub fn claim(&mut self, description: &str, holds: bool) {
        if holds {
            self.passes += 1;
            println!("  ok: {description}");
        } else {
            self.failures.push(description.to_owned());
            println!("  FAIL: {description}");
        }
    }

    /// Prints a summary; exits nonzero if any claim failed and `check` is set.
    pub fn finish(self, opts: &FigOpts) {
        println!(
            "\nshape claims: {} passed, {} failed",
            self.passes,
            self.failures.len()
        );
        if opts.check && !self.failures.is_empty() {
            std::process::exit(1);
        }
    }
}

/// The standard workload used by the simulation figures: the default
/// synthetic Rice-like trace, or the small CI variant.
pub fn paper_trace(quick: bool) -> Trace {
    if quick {
        phttp_trace::generate(&SynthConfig::small())
    } else {
        phttp_trace::generate(&SynthConfig::default())
    }
}

/// Cache size paired with [`paper_trace`] so quick runs stay in the paper's
/// capacity-miss regime (working set larger than one node's cache).
pub fn paper_cache_bytes(quick: bool) -> u64 {
    if quick {
        2 * 1024 * 1024
    } else {
        16 * 1024 * 1024
    }
}

/// Shared body of Figures 5 and 6: prints the bandwidth-vs-size series for
/// both mechanisms and validates the crossover shape claims.
pub fn run_analytic_figure(title: &str, model: AnalyticModel, opts: &FigOpts) {
    let series = model.series(1024, 100 * 1024, 21);
    let cols: Vec<String> = series
        .iter()
        .map(|(z, _, _)| format!("{}K", z / 1024))
        .collect();
    let mut table = FigTable::new(
        &format!("{title}: bandwidth (Mb/s) vs. average file size"),
        "mechanism",
        cols,
    );
    table.row("BEforward", series.iter().map(|&(_, f, _)| f).collect());
    table.row("multiHandoff", series.iter().map(|&(_, _, m)| m).collect());
    table.print(opts);

    let cross = model.crossover_bytes();
    if let Some(c) = cross {
        println!("crossover: {:.1} KB\n", c as f64 / 1024.0);
    } else {
        println!("crossover: none in [64 B, 1 MB]\n");
    }

    let mut check = ShapeCheck::new();
    let small = 2 * 1024;
    let large = 80 * 1024;
    check.claim(
        "back-end forwarding wins at small sizes (2 KB)",
        model.bandwidth_mbps(MechanismKind::BackendForwarding, small)
            > model.bandwidth_mbps(MechanismKind::MultipleHandoff, small),
    );
    check.claim(
        "multiple handoff wins at large sizes (80 KB)",
        model.bandwidth_mbps(MechanismKind::MultipleHandoff, large)
            > model.bandwidth_mbps(MechanismKind::BackendForwarding, large),
    );
    check.claim(
        "a single crossover exists in the web-size range",
        cross.is_some_and(|c| (2 * 1024..64 * 1024).contains(&(c as usize))),
    );
    check.claim(
        "both mechanisms' bandwidth rises with size",
        series
            .windows(2)
            .all(|w| w[1].1 > w[0].1 && w[1].2 > w[0].2),
    );
    check.finish(opts);
}

/// The seven configurations of Figures 7 and 8, in the paper's legend order.
pub const FIG7_CONFIGS: [&str; 7] = [
    "zeroCost-extLARD-PHTTP",
    "multiHandoff-extLARD-PHTTP",
    "BEforward-extLARD-PHTTP",
    "simple-LARD",
    "simple-LARD-PHTTP",
    "WRR-PHTTP",
    "WRR",
];

/// Shared body of Figures 7 and 8: throughput vs. cluster size for the
/// seven configurations, plus the paper's shape claims.
pub fn run_sim_figure(title: &str, flash: bool, opts: &FigOpts) {
    let trace = paper_trace(opts.quick);
    let nodes: Vec<usize> = if opts.quick {
        vec![1, 2, 4, 6]
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    };
    let mut table = FigTable::new(
        &format!("{title}: throughput (req/s) vs. cluster size"),
        "config",
        nodes.iter().map(|n| n.to_string()).collect(),
    );
    for label in FIG7_CONFIGS {
        let series: Vec<f64> = nodes
            .iter()
            .map(|&n| run_sim(label, n, &trace, opts.quick, flash).throughput_rps)
            .collect();
        table.row(label, series);
    }
    table.print(opts);

    let mut check = ShapeCheck::new();
    let last = nodes.len() - 1;
    let mid = nodes.iter().position(|&n| n >= 4).unwrap_or(last);
    let at = |name: &str, i: usize| table.get(name).expect("series")[i];

    check.claim(
        "1 node: P-HTTP ≈ HTTP/1.0 for simple LARD (disk-bound)",
        (at("simple-LARD-PHTTP", 0) / at("simple-LARD", 0) - 1.0).abs() < 0.15,
    );
    check.claim(
        "simple LARD loses locality under P-HTTP at mid sizes",
        at("simple-LARD-PHTTP", mid) < at("simple-LARD", mid) * 0.85,
    );
    check.claim(
        "back-end forwarding is competitive (within 20% of the zero-cost ideal)",
        at("BEforward-extLARD-PHTTP", last) > at("zeroCost-extLARD-PHTTP", last) * 0.8,
    );
    // The finer ordering claims need the full-size trace: the quick trace is
    // dominated by compulsory misses, a regime the paper's two-month trace
    // never enters.
    if !opts.quick {
        check.claim(
            "extended LARD (multi-handoff) beats simple LARD/1.0 at the top size",
            at("multiHandoff-extLARD-PHTTP", last) > at("simple-LARD", last) * 1.02,
        );
        check.claim(
            "multiple handoff is within a few % of the zero-cost ideal",
            at("multiHandoff-extLARD-PHTTP", last) > at("zeroCost-extLARD-PHTTP", last) * 0.93,
        );
    }
    check.claim(
        "LARD beats WRR by a wide margin at the top size",
        at("simple-LARD", last) > at("WRR", last) * 1.8,
    );
    check.claim(
        "WRR gains nothing from P-HTTP (disk-bound)",
        (at("WRR-PHTTP", last) / at("WRR", last) - 1.0).abs() < 0.1,
    );
    // The catch-up effect: simple-LARD-PHTTP's *relative* gap to extended
    // LARD narrows as the aggregate cache grows.
    let gap = |i: usize| at("simple-LARD-PHTTP", i) / at("zeroCost-extLARD-PHTTP", i);
    check.claim(
        "simple-LARD-PHTTP catches up at larger cluster sizes",
        gap(last) > gap(mid),
    );
    check.finish(opts);
}

/// Host metadata stamped into every `BENCH_*.json`: the logical CPU
/// count the run had available and the UTC date it ran, as a JSON
/// fragment (two key/value pairs, no braces). Benchmark numbers are
/// meaningless without at least this much provenance — the container
/// benches run on one core, a laptop on many.
pub fn host_meta_json() -> String {
    let cores = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    format!("\"cpu_cores\": {cores}, \"bench_date\": \"{}\"", utc_date())
}

/// Today's UTC date as `YYYY-MM-DD`, from `SystemTime` alone (no
/// timezone database or date-crate dependency).
pub fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Gregorian date from days since 1970-01-01 (Hinnant's civil-from-days
/// algorithm; exact over the benchmark-relevant range).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Runs one named simulator configuration over the trace.
pub fn run_sim(label: &str, nodes: usize, trace: &Trace, quick: bool, flash: bool) -> Report {
    let mut cfg = SimConfig::paper_config(label, nodes);
    if flash {
        cfg = cfg.with_flash();
    }
    cfg.cache_bytes = paper_cache_bytes(quick);
    let workload = build_workload(trace, cfg.protocol, SessionConfig::default());
    Simulator::new(cfg, trace, &workload).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_gets() {
        let mut t = FigTable::new("demo", "cfg", vec!["1".into(), "2".into()]);
        t.row("a", vec![1.0, 2.0]);
        t.row("b", vec![3.0, 4.0]);
        assert_eq!(t.get("a"), Some(&[1.0, 2.0][..]));
        assert_eq!(t.get("zzz"), None);
        let out = t.render();
        assert!(out.contains("demo"));
        assert!(out.contains("3.0"));
        let csv = t.to_csv();
        assert!(csv.starts_with("series,1,2"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = FigTable::new("x", "c", vec!["1".into()]);
        t.row("bad", vec![1.0, 2.0]);
    }

    #[test]
    fn shape_check_counts() {
        let mut c = ShapeCheck::new();
        c.claim("true thing", true);
        c.claim("false thing", false);
        assert_eq!(c.passes, 1);
        assert_eq!(c.failures.len(), 1);
        // finish() without --check must not exit.
        c.finish(&FigOpts::default());
    }

    #[test]
    fn host_meta_is_wellformed() {
        let meta = host_meta_json();
        assert!(meta.starts_with("\"cpu_cores\": "));
        assert!(meta.contains("\"bench_date\": \""));
        let date = utc_date();
        assert_eq!(date.len(), 10, "YYYY-MM-DD: {date}");
        assert_eq!(date.as_bytes()[4], b'-');
        assert_eq!(date.as_bytes()[7], b'-');
        // Known anchors for the civil-date arithmetic.
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
    }

    #[test]
    fn quick_trace_is_smaller() {
        let q = paper_trace(true);
        let full_pages = SynthConfig::default().num_pages;
        assert!(q.num_targets() < full_pages * 6);
        assert!(paper_cache_bytes(true) < paper_cache_bytes(false));
    }
}
