//! Ablation: the two extended-LARD design choices the paper calls out in
//! §4.2 — (a) charging remote nodes 1/N load for the duration of a
//! pipelined batch, and (b) restricting forwarding candidates to nodes that
//! already cache the target.

use phttp_bench::{paper_cache_bytes, paper_trace, FigOpts, FigTable, ShapeCheck};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::SessionConfig;

fn run(
    trace: &phttp_trace::Trace,
    nodes: usize,
    quick: bool,
    batch_load: bool,
    restrict: bool,
) -> (f64, f64) {
    let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", nodes);
    cfg.cache_bytes = paper_cache_bytes(quick);
    cfg.lard.batch_load_accounting = batch_load;
    cfg.lard.restrict_candidates = restrict;
    let workload = build_workload(trace, cfg.protocol, SessionConfig::default());
    let r = Simulator::new(cfg, trace, &workload).run();
    (r.throughput_rps, r.cache_hit_rate * 100.0)
}

fn main() {
    let opts = FigOpts::from_env();
    let trace = paper_trace(opts.quick);
    let nodes = 6;

    let variants = [
        ("paper (both on)", true, true),
        ("no 1/N batch load", false, true),
        ("candidates = all nodes", true, false),
        ("both off", false, false),
    ];
    let mut table = FigTable::new(
        "Ablation: extended-LARD design choices (BEforward, 6 nodes)",
        "variant",
        vec!["req/s".into(), "hit %".into()],
    );
    let mut results = Vec::new();
    for (name, batch_load, restrict) in variants {
        let (tput, hit) = run(&trace, nodes, opts.quick, batch_load, restrict);
        table.row(name, vec![tput, hit]);
        results.push((name, tput, hit));
    }
    table.print(&opts);

    let mut check = ShapeCheck::new();
    let paper = results[0].1;
    check.claim(
        "disabling a design choice never helps by more than noise (5%)",
        results.iter().all(|&(_, t, _)| t < paper * 1.05),
    );
    check.claim(
        "the paper configuration is within 10% of the best variant",
        paper > results.iter().map(|r| r.1).fold(0.0, f64::max) * 0.9,
    );
    check.finish(&opts);
}
