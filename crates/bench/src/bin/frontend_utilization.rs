//! The §8 in-text result: front-end CPU utilization vs. cluster size for
//! the prototype configuration (`BEforward-extLARD-PHTTP`), and the
//! extrapolated number of back-ends one front-end CPU can support.

use phttp_bench::{paper_trace, run_sim, FigOpts, FigTable, ShapeCheck};

fn main() {
    let opts = FigOpts::from_env();
    let trace = paper_trace(opts.quick);
    let nodes: Vec<usize> = if opts.quick {
        vec![2, 4, 6]
    } else {
        vec![2, 4, 6, 8, 10, 12]
    };

    let mut fe_util = Vec::new();
    let mut tput = Vec::new();
    for &n in &nodes {
        let r = run_sim("BEforward-extLARD-PHTTP", n, &trace, opts.quick, false);
        fe_util.push(r.fe_utilization * 100.0);
        tput.push(r.throughput_rps);
    }

    let mut table = FigTable::new(
        "Front-end CPU utilization vs. cluster size (BEforward-extLARD-PHTTP)",
        "metric",
        nodes.iter().map(|n| n.to_string()).collect(),
    );
    table.row("fe utilization (%)", fe_util.clone());
    table.row("throughput (req/s)", tput.clone());
    table.print(&opts);

    // Linear extrapolation of utilization per node, from the largest run.
    let last = nodes.len() - 1;
    let per_node = fe_util[last] / nodes[last] as f64;
    let supported = (100.0 / per_node).floor();
    println!("one front-end CPU supports ≈ {supported} back-ends of equal speed\n");

    let mut check = ShapeCheck::new();
    check.claim(
        "front-end utilization grows with cluster size",
        fe_util[last] > fe_util[0],
    );
    check.claim(
        "the front-end is nowhere the bottleneck in the measured range",
        fe_util.iter().all(|&u| u < 95.0),
    );
    check.claim(
        "one front-end CPU supports a two-digit number of back-ends",
        supported >= 10.0,
    );
    check.finish(&opts);
}
