//! Figure 5: analytic bandwidth of a 4-node Apache cluster vs. average
//! response size, multiple handoff vs. back-end forwarding, under the
//! pessimal every-request-moves assumption.

use phttp_analytic::AnalyticModel;
use phttp_bench::{run_analytic_figure, FigOpts};

fn main() {
    let opts = FigOpts::from_env();
    run_analytic_figure("Figure 5 (Apache)", AnalyticModel::apache(4), &opts);
}
