//! The §6 in-text comparison: a relaying front-end versus back-end
//! forwarding with extended LARD.
//!
//! The paper's observation is two-fold: (a) when the front-end is *not* the
//! bottleneck (modeled here by an 8× SMP front-end), relaying buys only a
//! few percent over back-end forwarding — all the locality benefits come
//! from the policy, not from the mechanism's request granularity; (b) with
//! a single-CPU front-end, relaying collapses as the cluster grows because
//! every response byte crosses the front-end.

use phttp_bench::{paper_cache_bytes, paper_trace, FigOpts, FigTable, ShapeCheck};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::SessionConfig;

fn run(label: &str, nodes: usize, fe_speedup: f64, trace: &phttp_trace::Trace, quick: bool) -> f64 {
    let mut cfg = SimConfig::paper_config(label, nodes);
    cfg.cache_bytes = paper_cache_bytes(quick);
    cfg.fe_speedup = fe_speedup;
    let workload = build_workload(trace, cfg.protocol, SessionConfig::default());
    Simulator::new(cfg, trace, &workload).run().throughput_rps
}

fn main() {
    let opts = FigOpts::from_env();
    let trace = paper_trace(opts.quick);
    let nodes: Vec<usize> = if opts.quick {
        vec![2, 4]
    } else {
        vec![2, 4, 6, 8]
    };

    let mut table = FigTable::new(
        "Relaying front-end vs. back-end forwarding (extended LARD, P-HTTP)",
        "config",
        nodes.iter().map(|n| n.to_string()).collect(),
    );
    for (name, label, speedup) in [
        ("relay (1x FE)", "relay-LARD-PHTTP", 1.0),
        ("relay (8x SMP FE)", "relay-LARD-PHTTP", 8.0),
        ("BEforward-extLARD", "BEforward-extLARD-PHTTP", 1.0),
        ("zeroCost-extLARD", "zeroCost-extLARD-PHTTP", 1.0),
    ] {
        let series: Vec<f64> = nodes
            .iter()
            .map(|&n| run(label, n, speedup, &trace, opts.quick))
            .collect();
        table.row(name, series);
    }
    table.print(&opts);

    let mut check = ShapeCheck::new();
    let last = nodes.len() - 1;
    let at = |name: &str, i: usize| table.get(name).expect("series")[i];
    check.claim(
        "an unconstrained relaying FE gains little over back-end forwarding (< 25%)",
        at("relay (8x SMP FE)", last) < at("BEforward-extLARD", last) * 1.25,
    );
    check.claim(
        "a single-CPU relaying FE falls behind at the top size",
        at("relay (1x FE)", last) < at("relay (8x SMP FE)", last),
    );
    check.claim(
        "the zero-cost ideal bounds the relay (within a whisker)",
        at("relay (8x SMP FE)", last) <= at("zeroCost-extLARD", last) * 1.05,
    );
    check.finish(&opts);
}
