//! Ablation: extended LARD's disk-utilization threshold (the "fewer than k
//! queued disk events" bound whose numeric value the scanned paper lost).
//!
//! `k = 0` never serves an unmapped target locally (forward whenever a
//! caching node exists); very large `k` always serves locally, degenerating
//! toward `simple-LARD-PHTTP`'s locality loss. The paper's design intent —
//! read from the local disk only while it has slack — shows up as the flat,
//! near-optimal region at small k.

use phttp_bench::{paper_cache_bytes, paper_trace, FigOpts, FigTable, ShapeCheck};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::SessionConfig;

fn main() {
    let opts = FigOpts::from_env();
    let trace = paper_trace(opts.quick);
    let nodes = 6;
    let thresholds: Vec<usize> = vec![0, 1, 2, 4, 8, 16, 64, 100_000];

    let mut tput = Vec::new();
    let mut hit = Vec::new();
    for &k in &thresholds {
        let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", nodes);
        cfg.cache_bytes = paper_cache_bytes(opts.quick);
        cfg.lard.disk_queue_low = k;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        tput.push(r.throughput_rps);
        hit.push(r.cache_hit_rate * 100.0);
    }

    let mut table = FigTable::new(
        "Ablation: disk-queue threshold k (BEforward-extLARD-PHTTP, 6 nodes)",
        "metric",
        thresholds
            .iter()
            .map(|k| {
                if *k >= 100_000 {
                    "inf".into()
                } else {
                    k.to_string()
                }
            })
            .collect(),
    );
    table.row("throughput (req/s)", tput.clone());
    table.row("hit rate (%)", hit.clone());
    table.print(&opts);

    let mut check = ShapeCheck::new();
    let best = tput.iter().cloned().fold(0.0, f64::max);
    let best_idx = tput.iter().position(|&t| t == best).unwrap();
    // The shape the paper's design implies: any *bounded* threshold sits on
    // a flat plateau (the digit the OCR lost barely matters), while an
    // unbounded threshold degenerates toward simple-LARD-PHTTP.
    check.claim(
        "k = 1 sits on the plateau (within 5% of the best bounded threshold)",
        tput[1] > best * 0.95,
    );
    check.claim(
        "the plateau is flat: every bounded k is within 25% of the best",
        tput[..tput.len() - 1].iter().all(|&t| t > best * 0.75),
    );
    check.claim(
        "an unbounded threshold (always serve locally) collapses throughput",
        *tput.last().unwrap() < best * 0.8,
    );
    check.claim(
        "hit rate degrades toward large k",
        hit.last().unwrap() < &hit[best_idx],
    );
    check.finish(&opts);
}
