//! Figure 6: analytic bandwidth of a 4-node Flash cluster vs. average
//! response size — the Figure 5 analysis under the faster server's cost
//! profile. The crossover must sit to the *left* of Apache's: a faster
//! server makes per-byte forwarding relatively more expensive.

use phttp_analytic::AnalyticModel;
use phttp_bench::{run_analytic_figure, FigOpts, ShapeCheck};

fn main() {
    let opts = FigOpts::from_env();
    let model = AnalyticModel::flash(4);
    run_analytic_figure("Figure 6 (Flash)", model, &opts);

    // The figure-specific claim: Flash's crossover is left of Apache's.
    let mut check = ShapeCheck::new();
    let apache = AnalyticModel::apache(4).crossover_bytes();
    let flash = model.crossover_bytes();
    check.claim(
        "Flash crossover is smaller than Apache's",
        matches!((apache, flash), (Some(a), Some(f)) if f < a),
    );
    check.finish(&opts);
}
