//! Figure 3: throughput and delay of one back-end node as a function of
//! load (active connections) — the curves that motivate `L_idle` and
//! `L_overload` in the LARD cost metrics.
//!
//! Sweeps the closed-loop concurrency on a single-node cluster and reports
//! throughput and mean latency at each load point. The shape claims are the
//! figure's qualitative content: throughput saturates, and delay grows
//! steeply once the node is past saturation.

use phttp_bench::{paper_cache_bytes, paper_trace, FigOpts, FigTable, ShapeCheck};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::SessionConfig;

fn main() {
    let opts = FigOpts::from_env();
    let trace = paper_trace(true); // one node: the small trace suffices
    let loads: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256];

    let mut tput = Vec::new();
    let mut delay = Vec::new();
    for &w in &loads {
        let mut cfg = SimConfig::paper_config("simple-LARD", 1);
        cfg.cache_bytes = paper_cache_bytes(true);
        cfg.window_per_node = w;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        tput.push(r.throughput_rps);
        delay.push(r.mean_latency_ms);
    }

    let mut table = FigTable::new(
        "Figure 3: single back-end throughput and delay vs. load",
        "metric",
        loads.iter().map(|w| w.to_string()).collect(),
    );
    table.row("throughput (req/s)", tput.clone());
    table.row("mean delay (ms)", delay.clone());
    table.print(&opts);

    let mut check = ShapeCheck::new();
    let peak = tput.iter().cloned().fold(0.0, f64::max);
    check.claim(
        "throughput saturates: the last load point stays within 10% of peak",
        *tput.last().unwrap() > peak * 0.9,
    );
    check.claim(
        "throughput rises before saturation (load 8 > load 1)",
        tput[3] > tput[0] * 1.2,
    );
    check.claim(
        "delay at the highest load is many times the unloaded delay",
        *delay.last().unwrap() > delay[0] * 5.0,
    );
    let mid = tput[loads.len() / 2];
    check.claim(
        "the knee falls inside the swept range (mid-load within 30% of peak)",
        mid > peak * 0.7,
    );
    check.finish(&opts);
}
