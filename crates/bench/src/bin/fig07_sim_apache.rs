//! Figure 7: simulated cluster throughput vs. cluster size with the Apache
//! cost model, for all seven of the paper's mechanism/policy configurations.

use phttp_bench::{run_sim_figure, FigOpts};

fn main() {
    let opts = FigOpts::from_env();
    run_sim_figure("Figure 7 (Apache)", false, &opts);
}
