//! Figure 8: simulated cluster throughput vs. cluster size with the Flash
//! cost model. Same configurations as Figure 7; the faster server shows a
//! larger penalty for naive P-HTTP support (locality loss costs relatively
//! more when CPU work per request is smaller).

use phttp_bench::{run_sim_figure, FigOpts};

fn main() {
    let opts = FigOpts::from_env();
    run_sim_figure("Figure 8 (Flash)", true, &opts);
}
