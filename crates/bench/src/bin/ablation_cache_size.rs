//! Ablation: per-node cache size. LARD's pitch is that the *aggregate*
//! cache matters; WRR's is bounded by a single node's cache. Sweeping the
//! per-node budget shows WRR needs every node to hold the whole working set
//! while LARD thrives on a fraction of it.

use phttp_bench::{paper_trace, FigOpts, FigTable, ShapeCheck};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::SessionConfig;

fn main() {
    let opts = FigOpts::from_env();
    let trace = paper_trace(opts.quick);
    let nodes = 6;
    let ws = trace.working_set_bytes();
    // Sweep from a small fraction of the working set to past all of it.
    let sizes: Vec<u64> = [0.05, 0.1, 0.2, 0.4, 0.8, 1.2]
        .iter()
        .map(|f| (ws as f64 * f) as u64)
        .collect();

    let mut table = FigTable::new(
        &format!(
            "Ablation: per-node cache size (6 nodes, working set {:.0} MB)",
            ws as f64 / (1024.0 * 1024.0)
        ),
        "config",
        sizes
            .iter()
            .map(|b| format!("{:.0}%", 100.0 * *b as f64 / ws as f64))
            .collect(),
    );
    for label in ["WRR", "simple-LARD", "BEforward-extLARD-PHTTP"] {
        let series: Vec<f64> = sizes
            .iter()
            .map(|&bytes| {
                let mut cfg = SimConfig::paper_config(label, nodes);
                cfg.cache_bytes = bytes;
                let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
                Simulator::new(cfg, &trace, &workload).run().throughput_rps
            })
            .collect();
        table.row(label, series);
    }
    table.print(&opts);

    let mut check = ShapeCheck::new();
    let wrr = table.get("WRR").unwrap().to_vec();
    let lard = table.get("simple-LARD").unwrap().to_vec();
    check.claim(
        "LARD at 20% per-node cache beats WRR at 20% decisively",
        lard[2] > wrr[2] * 1.5,
    );
    check.claim(
        "WRR keeps gaining from bigger caches across the whole sweep",
        wrr.last().unwrap() > &(wrr[2] * 1.2),
    );
    check.claim(
        "LARD saturates early: 40% per-node cache is within 15% of 120%",
        lard[3] > lard.last().unwrap() * 0.85,
    );
    check.claim(
        "with caches past the working set, WRR catches up to LARD (within 35%)",
        wrr.last().unwrap() > &(lard.last().unwrap() * 0.65),
    );
    check.finish(&opts);
}
