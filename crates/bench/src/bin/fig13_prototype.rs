//! Figure 13: HTTP throughput of the *live prototype cluster* vs. cluster
//! size, for the five configurations the paper measured on its testbed:
//! `BEforward-extLARD-PHTTP`, `simple-LARD`, `simple-LARD-PHTTP`,
//! `WRR-PHTTP`, and `WRR`.
//!
//! Unlike Figures 7/8 this drives real TCP connections over loopback
//! against real threads (wall-clock time!), so the default sweep is
//! moderate and `--quick` trims it further. Absolute numbers reflect the
//! host machine; the claims are the paper's shape results. **Run on an
//! otherwise idle machine** — concurrent builds or tests distort the
//! throughput cells badly.

use std::time::Duration;

use phttp_bench::{FigOpts, FigTable, ShapeCheck};
use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, LoadConfig, ProtoConfig};
use phttp_trace::{generate, http10_connections, reconstruct, SessionConfig, SynthConfig, Trace};

struct ProtoCase {
    label: &'static str,
    policy: PolicyKind,
    protocol: ClientProtocol,
}

const CASES: [ProtoCase; 5] = [
    ProtoCase {
        label: "BEforward-extLARD-PHTTP",
        policy: PolicyKind::ExtLard,
        protocol: ClientProtocol::PHttp,
    },
    ProtoCase {
        label: "simple-LARD",
        policy: PolicyKind::Lard,
        protocol: ClientProtocol::Http10,
    },
    ProtoCase {
        label: "simple-LARD-PHTTP",
        policy: PolicyKind::Lard,
        protocol: ClientProtocol::PHttp,
    },
    ProtoCase {
        label: "WRR-PHTTP",
        policy: PolicyKind::Wrr,
        protocol: ClientProtocol::PHttp,
    },
    ProtoCase {
        label: "WRR",
        policy: PolicyKind::Wrr,
        protocol: ClientProtocol::Http10,
    },
];

fn proto_trace(quick: bool) -> Trace {
    let mut synth = SynthConfig::small();
    if quick {
        synth.num_page_views = 800;
    } else {
        synth.num_page_views = 3_000;
    }
    generate(&synth)
}

/// One measured cell: best-of-two throughput (wall-clock noise) plus the
/// aggregate cache hit rate of the better run.
fn run_case(case: &ProtoCase, nodes: usize, trace: &Trace, quick: bool) -> (f64, f64) {
    let reps = if quick { 1 } else { 2 };
    let mut best = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let cfg = ProtoConfig {
            nodes,
            policy: case.policy,
            // Working set of the small trace is ~6 MB: 1.5 MB per node keeps
            // a single node thrashing while 4+ nodes aggregate comfortably.
            cache_bytes: 1536 * 1024,
            disk: DiskEmu {
                seek: Duration::from_micros(if quick { 400 } else { 800 }),
                bytes_per_sec: 120.0 * 1024.0 * 1024.0,
            },
            read_timeout: Duration::from_secs(10),
            // Spread TCP 4-tuple pressure: HTTP/1.0 sweeps open >100k
            // connections within the TIME_WAIT window.
            fe_listeners: 8,
            ..ProtoConfig::default()
        };
        let cluster = Cluster::start(cfg, trace).expect("start cluster");
        let workload = match case.protocol {
            ClientProtocol::PHttp => reconstruct(trace, SessionConfig::default()),
            ClientProtocol::Http10 => http10_connections(trace),
        };
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 24,
                protocol: case.protocol,
                verify: true,
                read_timeout: Duration::from_secs(10),
            },
        );
        let stats = cluster.node_stats();
        cluster.shutdown();
        assert_eq!(report.errors, 0, "{}: transport/verify errors", case.label);
        let served: u64 = stats.iter().map(|s| s.served).sum();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        let hit_rate = if served > 0 {
            hits as f64 / served as f64
        } else {
            0.0
        };
        if report.throughput_rps() > best.0 {
            best = (report.throughput_rps(), hit_rate * 100.0);
        }
    }
    best
}

fn main() {
    let opts = FigOpts::from_env();
    let trace = proto_trace(opts.quick);
    let nodes: Vec<usize> = if opts.quick {
        vec![1, 2, 3]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };

    let mut table = FigTable::new(
        "Figure 13: prototype throughput (req/s) vs. cluster size",
        "config",
        nodes.iter().map(|n| n.to_string()).collect(),
    );
    let mut hits = FigTable::new(
        "Figure 13 companion: aggregate cache hit rate (%)",
        "config",
        nodes.iter().map(|n| n.to_string()).collect(),
    );
    for case in &CASES {
        let cells: Vec<(f64, f64)> = nodes
            .iter()
            .map(|&n| run_case(case, n, &trace, opts.quick))
            .collect();
        table.row(case.label, cells.iter().map(|c| c.0).collect());
        hits.row(case.label, cells.iter().map(|c| c.1).collect());
    }
    table.print(&opts);
    hits.print(&opts);

    let mut check = ShapeCheck::new();
    let last = nodes.len() - 1;
    let at = |name: &str, i: usize| table.get(name).expect("series")[i];
    check.claim(
        "extended LARD with back-end forwarding clearly beats WRR at the top size",
        at("BEforward-extLARD-PHTTP", last) > at("WRR", last) * 1.5,
    );
    check.claim(
        "P-HTTP under extended LARD beats simple LARD without persistent connections",
        at("BEforward-extLARD-PHTTP", last) >= at("simple-LARD", last) * 0.95,
    );
    // On 2026 hardware, real TCP connection setup costs dwarf cached-file
    // service, so P-HTTP's per-connection amortization outweighs the
    // locality loss in wall-clock throughput (unlike the paper's 1999 cost
    // ratios, which the simulator reproduces). The locality loss itself is
    // still there — it shows in the cache hit rate.
    let hit_at = |name: &str, i: usize| hits.get(name).expect("series")[i];
    check.claim(
        "simple LARD loses cache locality under P-HTTP (hit-rate drop)",
        hit_at("simple-LARD-PHTTP", last) < hit_at("simple-LARD", last) - 2.0,
    );
    check.claim(
        "extended LARD recovers most of the lost hit rate",
        hit_at("BEforward-extLARD-PHTTP", last) > hit_at("simple-LARD-PHTTP", last),
    );
    check.claim(
        "extended LARD recovers what simple LARD loses on P-HTTP",
        at("BEforward-extLARD-PHTTP", last) > at("simple-LARD-PHTTP", last),
    );
    check.claim(
        "WRR sees at most modest change from P-HTTP",
        at("WRR-PHTTP", last) > at("WRR", last) * 0.7,
    );
    check.finish(&opts);
}
