//! Miss latency: what single-flight coalescing and delayed-hits-aware
//! (LRU-MAD) eviction buy, on the simulator's deterministic clock.
//!
//! Two experiments, both asserted in-bench so a regression fails loudly
//! rather than quietly skewing the JSON:
//!
//! * **burst** — N clients miss the same cold document at once on one
//!   node. Uncoalesced, every miss schedules its own emulated disk read
//!   (N fetches); single-flight collapses the burst to exactly **one**
//!   fetch with N−1 delayed hits, and the aggregate miss delay can only
//!   shrink (waiters ride a read that is already under way).
//! * **sweep** — a Zipf workload whose working set far exceeds the
//!   cache, run at several fetch latencies (disk seek sweep) under
//!   plain LRU and LRU-MAD with coalescing on. LRU-MAD ranks victims by
//!   EWMA aggregate-miss-delay per byte, so the entries it keeps are the
//!   ones whose re-fetch would stall the most request-seconds. Its edge
//!   grows with fetch latency (the delay *is* its signal): the asserts
//!   demand a strict win at 10 ms+ seeks and overall, and tolerate only
//!   noise (≤0.5%) in the cheap-miss regime where MAD ≈ LRU.
//!
//! Writes `BENCH_misslatency.json` at the repo root. The criterion
//! group measures the cache-side cost LRU-MAD adds to the hot insert
//! path (EWMA update + tail candidate scan).

#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_sim::{build_workload, EvictPolicy, Report, SimConfig, Simulator};
use phttp_simcore::{LruCache, SimTime};
use phttp_trace::{generate, ClientId, SessionConfig, SynthConfig, TargetId, Trace};

/// Disk seek costs swept in the latency experiment, microseconds
/// (2 ms .. 40 ms: fast disk to loaded-spindle/network-storage regime).
const SEEK_US: &[u64] = &[2_000, 10_000, 40_000];

/// Concurrent missers in the burst experiment.
const BURST: usize = 32;

/// N clients, one cold target, all arriving inside one microsecond per
/// client tick — every probe lands while the first fetch is in flight.
fn burst_trace() -> Trace {
    let requests = (0..BURST)
        .map(|i| phttp_trace::Request {
            time: SimTime::from_micros(i as u64),
            client: ClientId(i as u32),
            target: TargetId(0),
        })
        .collect();
    Trace::new(requests, vec![64 * 1024])
}

fn burst_cell(coalesce: bool) -> Report {
    let mut cfg = SimConfig::paper_config("WRR-PHTTP", 1);
    cfg.cache_bytes = 8 * 1024 * 1024; // eviction-free
    cfg.coalesce_misses = coalesce;
    // Slow spindle: the node's per-connection CPU staggers the probes
    // over ~25 ms of simulated time, so the first fetch must outlive the
    // whole burst for every request to provably race the same miss.
    cfg.disk.seek_us = 100_000;
    let trace = burst_trace();
    let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
    Simulator::new(cfg, &trace, &workload).run()
}

fn zipf_trace(views: usize) -> Trace {
    let mut synth = SynthConfig::small();
    synth.num_pages = 300;
    synth.num_page_views = views;
    synth.zipf_exponent = 1.0;
    generate(&synth)
}

fn sweep_cell(trace: &Trace, seek_us: u64, policy: EvictPolicy) -> Report {
    let mut cfg = SimConfig::paper_config("WRR-PHTTP", 1)
        .with_coalescing()
        .with_eviction(policy);
    // Working set ≫ cache: eviction pressure is the whole experiment.
    cfg.cache_bytes = 2 * 1024 * 1024;
    cfg.disk.seek_us = seek_us;
    let workload = build_workload(trace, cfg.protocol, SessionConfig::default());
    Simulator::new(cfg, trace, &workload).run()
}

fn bench_mad_insert(c: &mut Criterion) {
    // The hot-path delta LRU-MAD adds: an EWMA refresh per insert and a
    // bounded tail scan per eviction, vs plain LRU's tail pop.
    let mut g = c.benchmark_group("miss_latency");
    for (name, policy) in [
        ("insert_lru", EvictPolicy::Lru),
        ("insert_mad", EvictPolicy::LruMad),
    ] {
        g.bench_function(name, |b| {
            let mut cache: LruCache<TargetId> = LruCache::new(512 * 1024);
            cache.set_policy(policy);
            let mut i = 0u32;
            b.iter(|| {
                // Sliding working set over 4096 targets of 8 KiB against
                // a 64-entry cache: every insert evicts.
                i = i.wrapping_add(1);
                let t = TargetId(i % 4096);
                criterion::black_box(cache.insert_with_delay(
                    t,
                    8 * 1024,
                    10_000 + (i % 7) as u64 * 3_000,
                ));
            });
        });
    }
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let views = if quick { 2_000 } else { 8_000 };

    let mut rows = String::new();
    let push_row = |rows: &mut String, row: String| {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&row);
    };

    // --- burst: N concurrent misses of one cold target.
    let off = burst_cell(false);
    let on = burst_cell(true);
    println!(
        "miss_latency/burst   coalesce=off fetches {:>3}  delayed 0    agg {:>9.2} ms",
        off.disk_fetches, off.agg_miss_delay_ms
    );
    println!(
        "miss_latency/burst   coalesce=on  fetches {:>3}  delayed {:<3}  agg {:>9.2} ms",
        on.disk_fetches, on.delayed_hits, on.agg_miss_delay_ms
    );
    assert_eq!(
        off.disk_fetches, BURST as u64,
        "uncoalesced: every concurrent miss must fetch"
    );
    assert_eq!(on.disk_fetches, 1, "coalesced: one fetch for the burst");
    assert_eq!(on.delayed_hits, BURST as u64 - 1);
    assert!(
        on.agg_miss_delay_ms <= off.agg_miss_delay_ms + 1e-9,
        "coalescing increased aggregate miss delay"
    );
    for (label, r) in [("off", &off), ("on", &on)] {
        push_row(
            &mut rows,
            format!(
                "    {{\"experiment\": \"burst\", \"coalesce\": \"{label}\", \"concurrent_misses\": {BURST}, \"disk_fetches\": {}, \"delayed_hits\": {}, \"agg_miss_delay_ms\": {:.3}, \"miss_p50_ms\": {:.3}, \"miss_p99_ms\": {:.3}}}",
                r.disk_fetches, r.delayed_hits, r.agg_miss_delay_ms, r.miss_p50_latency_ms, r.miss_p99_latency_ms
            ),
        );
    }

    // --- sweep: LRU vs LRU-MAD across fetch latencies, coalescing on.
    let trace = zipf_trace(views);
    let (mut lru_total, mut mad_total) = (0.0f64, 0.0f64);
    for &seek in SEEK_US {
        let lru = sweep_cell(&trace, seek, EvictPolicy::Lru);
        let mad = sweep_cell(&trace, seek, EvictPolicy::LruMad);
        for (name, r) in [("LRU", &lru), ("LRU-MAD", &mad)] {
            println!(
                "miss_latency/sweep   seek {:>5} us  {name:<8} fetches {:>6}  delayed {:>5}  agg {:>10.1} ms  p50 {:>7.2}  p99 {:>8.2}",
                seek, r.disk_fetches, r.delayed_hits, r.agg_miss_delay_ms, r.miss_p50_latency_ms, r.miss_p99_latency_ms
            );
            push_row(
                &mut rows,
                format!(
                    "    {{\"experiment\": \"sweep\", \"seek_us\": {seek}, \"eviction\": \"{name}\", \"disk_fetches\": {}, \"delayed_hits\": {}, \"agg_miss_delay_ms\": {:.3}, \"miss_p50_ms\": {:.3}, \"miss_p99_ms\": {:.3}, \"hit_rate\": {:.4}}}",
                    r.disk_fetches, r.delayed_hits, r.agg_miss_delay_ms, r.miss_p50_latency_ms, r.miss_p99_latency_ms, r.cache_hit_rate
                ),
            );
        }
        lru_total += lru.agg_miss_delay_ms;
        mad_total += mad.agg_miss_delay_ms;
        // Delayed-hits awareness pays in proportion to the fetch latency
        // (its signal *is* the delay): demand a strict win once a miss
        // costs 10 ms+, and no more than noise-level regression (0.5%)
        // in the cheap-miss regime where MAD degenerates to ~LRU.
        if seek >= 10_000 {
            assert!(
                mad.agg_miss_delay_ms < lru.agg_miss_delay_ms,
                "LRU-MAD must beat plain LRU at seek {seek} us \
                 (MAD {:.1} ms vs LRU {:.1} ms)",
                mad.agg_miss_delay_ms,
                lru.agg_miss_delay_ms
            );
        } else {
            assert!(
                mad.agg_miss_delay_ms <= lru.agg_miss_delay_ms * 1.005,
                "LRU-MAD regressed past noise at seek {seek} us \
                 (MAD {:.1} ms vs LRU {:.1} ms)",
                mad.agg_miss_delay_ms,
                lru.agg_miss_delay_ms
            );
        }
    }

    assert!(
        mad_total < lru_total,
        "LRU-MAD must win the sweep overall (MAD {mad_total:.1} ms vs LRU {lru_total:.1} ms)"
    );
    println!(
        "miss_latency/sweep   total agg delay: LRU-MAD/LRU = {:.4}",
        mad_total / lru_total
    );

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"miss_latency\",\n  {host},\n  \"workloads\": {{\"burst\": \"{BURST} concurrent requests for one cold 64 KiB target, 1 node, WRR-PHTTP, eviction-free cache\", \"sweep\": \"Zipf(1.0) synthetic trace, {views} page views, 300 pages, WRR-PHTTP, 1 node, 2 MiB cache (working set >> cache), disk seek swept over {SEEK_US:?} us, coalescing on\"}},\n  \"baseline\": \"coalescing off (burst) / strict-LRU eviction (sweep)\",\n  \"contender\": \"single-flight miss coalescing (burst) / LRU-MAD delayed-hits-aware eviction (sweep)\",\n  \"metrics\": \"disk_fetches; delayed_hits (misses parked on an in-flight fetch); agg_miss_delay_ms = sum over every miss of probe-to-fetch-completion delay; per-miss p50/p99\",\n  \"notes\": \"simulated clock, so results are deterministic and unaffected by the 1-core CI container; the prototype-side analogues are asserted in crates/proto/tests/coalescing.rs over real threads/reactor I/O\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_misslatency.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(insert, bench_mad_insert);
criterion_group!(report, bench_report);
criterion_main!(insert, report);
