//! Cluster elasticity: what a warm rejoin buys over a cold restart.
//!
//! A Zipf-popularity trace is run through the simulator under extended
//! LARD with back-end forwarding and cache feedback, three times:
//!
//! * **baseline** — static cluster, no churn;
//! * **cold** — node 1 is killed mid-run and rejoins with a wiped
//!   cache (a process restart): the dispatcher learns its contents
//!   from scratch, one miss at a time;
//! * **warm** — the same kill and rejoin instant, but the node keeps
//!   its cache and the `Join` handshake replays its admission journal
//!   into every dispatcher's belief before traffic returns.
//!
//! The observables are recovery cost: disk fetches and aggregate hit
//! rate over the whole run. The caches are sized eviction-free so the
//! warm/cold delta is exactly the re-fetch cost of the wiped cache
//! plus the beliefs the dispatchers had to relearn — not second-order
//! eviction churn from perturbed routing.
//!
//! Writes `BENCH_elasticity.json` at the repo root. The criterion
//! group additionally measures the dispatcher-side cost of one warm-up
//! (the `Join` handshake's hot operation: absolute journal replay into
//! mapping, mirror, and breaker).
//!
//! Knobs: `CRITERION_QUICK=1` shrinks the trace for smoke runs.

#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::{
    CacheEvent, ConcurrentDispatcher, ForwardSemantics, LardParams, NodeId, PolicyKind,
};
use phttp_sim::{build_workload, ChurnAction, ChurnEvent, Report, SimConfig, Simulator};
use phttp_simcore::SimDuration;
use phttp_trace::{generate, SynthConfig, TargetId};

const NODES: usize = 4;
/// Simulated instants of the kill and the rejoin.
const KILL_MS: u64 = 300;
const REJOIN_MS: u64 = 600;

fn zipf_trace(views: usize) -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_pages = 300;
    synth.num_page_views = views;
    synth.zipf_exponent = 1.0;
    generate(&synth)
}

fn run_cell(trace: &phttp_trace::Trace, churn: Vec<ChurnEvent>) -> Report {
    let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", NODES)
        .with_feedback(SimDuration::from_millis(50))
        .with_churn(churn);
    // Eviction-free: the working set always fits, so the only misses
    // are first touches and post-cold-restart re-fetches.
    cfg.cache_bytes = 256 * 1024 * 1024;
    let workload = build_workload(trace, cfg.protocol, phttp_trace::SessionConfig::default());
    Simulator::new(cfg, trace, &workload).run()
}

fn churn(rejoin: ChurnAction) -> Vec<ChurnEvent> {
    vec![
        ChurnEvent {
            at: SimDuration::from_millis(KILL_MS),
            action: ChurnAction::Kill(1),
        },
        ChurnEvent {
            at: SimDuration::from_millis(REJOIN_MS),
            action: rejoin,
        },
    ]
}

fn bench_warm_up(c: &mut Criterion) {
    // The Join handshake's dispatcher-side hot operation: replace a
    // node's beliefs with a 10k-entry admission journal (absolute
    // warm-up: evict, mirror reset, replay, breaker close).
    let d = ConcurrentDispatcher::new(
        PolicyKind::ExtLard,
        ForwardSemantics::LateralFetch,
        NODES,
        LardParams::default(),
    );
    for i in 0..10_000u32 {
        let t = TargetId(i);
        d.mapping()
            .write(t, |m| m.add_replica(t, NodeId(i as usize % NODES)));
    }
    let journal: Vec<CacheEvent> = (0..10_000u32)
        .filter(|i| i % NODES as u32 == 1)
        .map(|i| CacheEvent::Admit(TargetId(i)))
        .collect();
    let mut g = c.benchmark_group("elasticity");
    g.bench_function("warm_up_journal_2500", |b| {
        b.iter(|| d.warm_up(NodeId(1), criterion::black_box(&journal)));
    });
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let views = if quick { 2_000 } else { 8_000 };
    let trace = zipf_trace(views);

    let mut rows = String::new();
    let mut push_row = |label: &str, r: &Report| {
        println!(
            "elasticity/{label:<8} disk_fetches {:>6}  hit {:>6.2}%  mean_latency {:>7.2} ms  tput {:>8.0} req/s",
            r.disk_fetches,
            r.cache_hit_rate * 100.0,
            r.mean_latency_ms,
            r.throughput_rps,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"cell\": \"{label}\", \"disk_fetches\": {}, \"cache_hit_rate\": {:.4}, \"mean_latency_ms\": {:.3}, \"throughput_rps\": {:.0}}}",
            r.disk_fetches, r.cache_hit_rate, r.mean_latency_ms, r.throughput_rps,
        ));
    };

    let baseline = run_cell(&trace, Vec::new());
    push_row("baseline", &baseline);
    let cold = run_cell(&trace, churn(ChurnAction::JoinCold(1)));
    push_row("cold", &cold);
    let warm = run_cell(&trace, churn(ChurnAction::JoinWarm(1)));
    push_row("warm", &warm);

    assert_eq!(warm.requests, trace.len() as u64);
    assert_eq!(cold.requests, trace.len() as u64);
    assert!(
        cold.disk_fetches > warm.disk_fetches,
        "a cold restart must re-fetch what a warm rejoin kept ({} <= {})",
        cold.disk_fetches,
        warm.disk_fetches
    );
    assert!(
        cold.cache_hit_rate <= warm.cache_hit_rate + 1e-9,
        "warm rejoin must recover at least the cold hit rate"
    );
    assert!(
        warm.disk_fetches >= baseline.disk_fetches,
        "churn cannot fetch less than an undisturbed run"
    );

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"elasticity\",\n  {host},\n  \"workload\": \"Zipf(1.0) synthetic trace, {views} page views, 300 pages, P-HTTP, extLARD + BEforward, {NODES} nodes, eviction-free caches, feedback @ 50 ms\",\n  \"baseline\": \"static cluster (no churn)\",\n  \"contender\": \"node 1 killed @ {KILL_MS} ms, rejoined @ {REJOIN_MS} ms: cold (wiped cache) vs warm (kept cache + journal replay into dispatcher beliefs)\",\n  \"metrics\": \"disk_fetches and aggregate cache_hit_rate over the whole run — the recovery cost of losing vs keeping a node's cache and its mapped beliefs\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_elasticity.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(warm_up, bench_warm_up);
criterion_group!(report, bench_report);
criterion_main!(warm_up, report);
