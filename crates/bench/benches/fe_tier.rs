//! Front-end tier scaling: what a tier of `front_ends ∈ {1, 2, 4}`
//! instances behind the VIP costs (or buys) at a fixed offered load,
//! with the classic single front-end as the baseline.
//!
//! The same synthetic pipelined P-HTTP workload — `C` concurrent
//! persistent connections, each sending pipelined batches — is served
//! by a live loopback cluster once per tier size (threads I/O model).
//! Tiered runs pay the real admission handshakes over the VIP's
//! control sessions plus the gossip traffic; what they buy is dispatch
//! spread over independent per-instance dispatchers (no shared-lock
//! front-end bottleneck).
//!
//! Writes `BENCH_fetier.json` at the repo root. **The build container
//! has one core**: the tier instances cannot run in *parallel* there,
//! so the single-core numbers mostly price the admission/gossip
//! overhead; a multi-core host is where the per-instance dispatch
//! independence shows up as scaling — the JSON records the host
//! metadata so results are interpretable.

#![allow(missing_docs)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_simcore::SimTime;
use phttp_trace::{generate, Batch, Connection, ConnectionTrace, SynthConfig};

/// Pipelined batches per connection.
const BATCHES: usize = 8;
/// Requests per pipelined batch.
const BATCH_SIZE: usize = 4;

fn corpus_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_pages = 40;
    synth.num_page_views = 40; // corpus only; requests come from `workload`
    generate(&synth)
}

/// `conns` persistent connections of `BATCHES` × `BATCH_SIZE` pipelined
/// requests over a small hot corpus (mostly cache hits).
fn workload(conns: usize, targets: u32) -> ConnectionTrace {
    let connections = (0..conns)
        .map(|c| Connection {
            client: phttp_trace::ClientId(c as u32),
            batches: (0..BATCHES)
                .map(|b| Batch {
                    time: SimTime::ZERO,
                    targets: (0..BATCH_SIZE)
                        .map(|r| {
                            let mix = (c * 31 + b * 7 + r) as u32;
                            phttp_trace::TargetId(mix % targets)
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    ConnectionTrace { connections }
}

fn proto_config(front_ends: usize, conns: usize) -> ProtoConfig {
    ProtoConfig {
        nodes: 2,
        policy: PolicyKind::ExtLard,
        cache_bytes: 8 * 1024 * 1024,
        disk: DiskEmu {
            seek: Duration::from_micros(100),
            bytes_per_sec: 400.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(20),
        io_model: IoModel::Threads,
        front_ends,
        // The thread model needs one worker per concurrent connection.
        workers: conns + 8,
        fe_listeners: 4,
        ..ProtoConfig::default()
    }
}

/// Requests/second serving `conns` concurrent P-HTTP connections
/// through a tier of `front_ends` instances.
fn throughput(front_ends: usize, conns: usize) -> f64 {
    let trace = corpus_trace();
    let load = workload(conns, trace.num_targets() as u32);
    let cluster = Cluster::start(proto_config(front_ends, conns), &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &load,
        &LoadConfig {
            clients: conns,
            protocol: ClientProtocol::PHttp,
            verify: false, // measure serving, not the verifier
            read_timeout: Duration::from_secs(30),
        },
    );
    // Tiered runs must actually have admitted through the VIP.
    if let Some(vip) = cluster.vip() {
        assert!(vip.handoffs() > 0, "tier never admitted");
    }
    cluster.shutdown();
    assert_eq!(report.errors, 0, "front_ends={front_ends}/{conns}: errors");
    assert_eq!(report.requests as usize, conns * BATCHES * BATCH_SIZE);
    report.throughput_rps()
}

fn bench_tier(c: &mut Criterion) {
    // Criterion entries at the smallest size only (cluster startup per
    // iteration is the cost; the report below covers the full sweep).
    let mut g = c.benchmark_group("fe_tier");
    g.sample_size(5); // cluster start/stop dominates an iteration
    for fes in [1usize, 2] {
        g.bench_function(&format!("fe{fes}/c64"), |b| {
            b.iter(|| criterion::black_box(throughput(fes, 64)));
        });
    }
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if quick { &[64] } else { &[256, 1024] };
    let tier_sizes: &[usize] = &[1, 2, 4];

    let mut rows = String::new();
    let mut first = true;
    for &conns in sizes {
        // Best of three per cell, like the other cluster benches.
        let reps = if quick { 1 } else { 3 };
        let best = |fes: usize| {
            (0..reps)
                .map(|_| throughput(fes, conns))
                .fold(0.0f64, f64::max)
        };
        let single = best(1);
        for &fes in tier_sizes {
            let rps = if fes == 1 { single } else { best(fes) };
            println!(
                "fe_tier/c{conns:<5} front_ends {fes}   {rps:>10.0} req/s   single-FE {single:>10.0} req/s   ratio {:>5.2}x",
                rps / single,
            );
            if !first {
                rows.push_str(",\n");
            }
            first = false;
            rows.push_str(&format!(
                "    {{\"connections\": {conns}, \"front_ends\": {fes}, \"tier_rps\": {rps:.0}, \"single_fe_rps\": {single:.0}, \"tier_over_single\": {:.3}}}",
                rps / single,
            ));
        }
    }

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"fe_tier\",\n  \"workload\": \"P-HTTP closed loop: C concurrent persistent connections x {BATCHES} pipelined batches x {BATCH_SIZE} requests, extLARD, 2 nodes, hot cache, threads io model\",\n  \"baseline\": \"front_ends = 1 (the classic single front-end; no VIP, no admission handshakes, no gossip)\",\n  \"contender\": \"front_ends = M instances behind the VIP (round-robin admission over real control-session handshakes, consistent-hash belief ownership, pairwise gossip)\",\n  {host},\n  \"note\": \"single-core host: tier instances cannot run in parallel here, so M > 1 mostly prices the admission handshake + gossip overhead the tier pays per connection; the dispatch-independence payoff (M dispatchers with no shared front-end lock) needs a multi-core host to show as scaling — same caveat as BENCH_dispatcher.json\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fetier.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(tier, bench_tier);
criterion_group!(report, bench_report);
criterion_main!(tier, report);
