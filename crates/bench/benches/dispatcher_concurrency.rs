//! Multi-threaded dispatcher throughput: the old global-mutex design
//! (`Mutex<Dispatcher>`, exactly what `phttp-proto`'s front-end used to
//! hold) versus the lock-sharded [`ConcurrentDispatcher`] the front-end
//! holds now.
//!
//! Each operation is one full connection lifecycle — open, one
//! pipelined batch of two assigned requests, close — under extended
//! LARD with busy disks, so every assignment runs the full cost-metric
//! path. Threads touch disjoint connections and mostly-disjoint
//! targets: the workload the paper's front-end sees, where nothing
//! *semantically* forces serialization — only the lock design does.
//!
//! Besides the criterion entries, the run measures aggregate
//! throughput at 1/2/4/8 threads for both designs and writes
//! `BENCH_dispatcher.json` at the repo root with the comparison.

#![allow(missing_docs)]

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use phttp_core::{
    ConcurrentDispatcher, ConnId, Dispatcher, DispatcherConfig, ForwardSemantics, LardParams,
    NodeId, PolicyKind,
};
use phttp_trace::TargetId;

const NODES: usize = 8;
const TARGETS: u32 = 4096;

fn config() -> DispatcherConfig {
    DispatcherConfig::new(
        PolicyKind::ExtLard,
        ForwardSemantics::LateralFetch,
        NODES,
        LardParams::default(),
    )
}

/// The old front-end: every policy call takes one global lock.
struct MutexFrontEnd(Mutex<Dispatcher>);

impl MutexFrontEnd {
    fn new() -> Self {
        let mut d = Dispatcher::from_config(config());
        for n in 0..NODES {
            d.report_disk_queue(NodeId(n), 50);
        }
        MutexFrontEnd(Mutex::new(d))
    }

    fn lifecycle(&self, conn: ConnId, seed: u64) {
        let t = |x: u64| TargetId((x % TARGETS as u64) as u32);
        self.0.lock().open_connection(conn, t(seed));
        self.0.lock().begin_batch(conn, 2);
        let _ = self.0.lock().assign_request(conn, t(seed.wrapping_mul(97)));
        let _ = self.0.lock().assign_request(conn, t(seed.wrapping_mul(31)));
        self.0.lock().close_connection(conn);
    }
}

/// The new front-end: straight into the sharded dispatcher.
struct ShardedFrontEnd(ConcurrentDispatcher);

impl ShardedFrontEnd {
    fn new() -> Self {
        let d = ConcurrentDispatcher::from_config(config());
        for n in 0..NODES {
            d.report_disk_queue(NodeId(n), 50);
        }
        ShardedFrontEnd(d)
    }

    fn lifecycle(&self, conn: ConnId, seed: u64) {
        let t = |x: u64| TargetId((x % TARGETS as u64) as u32);
        self.0.open_connection(conn, t(seed));
        self.0.begin_batch(conn, 2);
        let _ = self.0.assign_request(conn, t(seed.wrapping_mul(97)));
        let _ = self.0.assign_request(conn, t(seed.wrapping_mul(31)));
        self.0.close_connection(conn);
    }
}

/// Runs `ops_per_thread` lifecycles on each of `threads` threads and
/// returns the longest per-worker wall time. Each worker stamps its own
/// clock right after the start barrier releases it and right after its
/// last op, so the measurement window is exactly the span work was in
/// flight — a main-thread clock would under-count whenever the main
/// thread is descheduled while workers run (guaranteed on few cores).
fn run_threads<F>(threads: usize, ops_per_thread: u64, f: Arc<F>) -> Duration
where
    F: Fn(u64, u64) + Send + Sync + 'static,
{
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads as u64)
        .map(|k| {
            let f = f.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let start = Instant::now();
                for i in 0..ops_per_thread {
                    f(k, i);
                }
                start.elapsed()
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("bench thread panicked"))
        .max()
        .unwrap_or(Duration::ZERO)
}

fn ops_per_sec_mutex(threads: usize, ops_per_thread: u64) -> f64 {
    let fe = Arc::new(MutexFrontEnd::new());
    let fe2 = fe.clone();
    let elapsed = run_threads(
        threads,
        ops_per_thread,
        Arc::new(move |k: u64, i: u64| {
            fe2.lifecycle(
                ConnId(k * 1_000_000_000 + i),
                k.wrapping_mul(7919).wrapping_add(i),
            );
        }),
    );
    (threads as u64 * ops_per_thread) as f64 / elapsed.as_secs_f64()
}

fn ops_per_sec_sharded(threads: usize, ops_per_thread: u64) -> f64 {
    let fe = Arc::new(ShardedFrontEnd::new());
    let fe2 = fe.clone();
    let elapsed = run_threads(
        threads,
        ops_per_thread,
        Arc::new(move |k: u64, i: u64| {
            fe2.lifecycle(
                ConnId(k * 1_000_000_000 + i),
                k.wrapping_mul(7919).wrapping_add(i),
            );
        }),
    );
    (threads as u64 * ops_per_thread) as f64 / elapsed.as_secs_f64()
}

fn bench_single_thread_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatcher_concurrency/1thread");
    g.bench_function("mutex", |b| {
        let fe = MutexFrontEnd::new();
        let mut i = 0u64;
        b.iter(|| {
            fe.lifecycle(ConnId(i), i.wrapping_mul(2654435761));
            i += 1;
        });
    });
    g.bench_function("sharded", |b| {
        let fe = ShardedFrontEnd::new();
        let mut i = 0u64;
        b.iter(|| {
            fe.lifecycle(ConnId(i), i.wrapping_mul(2654435761));
            i += 1;
        });
    });
    g.finish();
}

fn bench_scaling_and_report(c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let ops: u64 = if quick { 32_000 } else { 640_000 };
    let thread_counts = [1usize, 2, 4, 8, 32, 128];

    let mut mutex_tput = Vec::new();
    let mut sharded_tput = Vec::new();
    for &t in &thread_counts {
        // Keep total work constant across thread counts; take the best
        // of three runs per cell so one unlucky scheduling window does
        // not define the number.
        let per_thread = ops / t as u64;
        let best =
            |f: &dyn Fn(usize, u64) -> f64| (0..3).map(|_| f(t, per_thread)).fold(0.0f64, f64::max);
        mutex_tput.push(best(&ops_per_sec_mutex));
        sharded_tput.push(best(&ops_per_sec_sharded));
    }

    for (i, &t) in thread_counts.iter().enumerate() {
        println!(
            "dispatcher_concurrency/{t}threads  mutex {:>12.0} ops/s   sharded {:>12.0} ops/s   speedup {:>5.2}x",
            mutex_tput[i],
            sharded_tput[i],
            sharded_tput[i] / mutex_tput[i],
        );
    }

    // criterion entries for the 8-thread aggregate, measured per-op.
    let mut g = c.benchmark_group("dispatcher_concurrency/8threads");
    g.sample_size(10);
    g.bench_function("mutex", |b| {
        b.iter_custom(|iters| {
            let fe = Arc::new(MutexFrontEnd::new());
            let fe2 = fe.clone();
            let per = (iters / 8).max(1);
            run_threads(
                8,
                per,
                Arc::new(move |k: u64, i: u64| {
                    fe2.lifecycle(ConnId(k * 1_000_000_000 + i), i);
                }),
            )
        });
    });
    g.bench_function("sharded", |b| {
        b.iter_custom(|iters| {
            let fe = Arc::new(ShardedFrontEnd::new());
            let fe2 = fe.clone();
            let per = (iters / 8).max(1);
            run_threads(
                8,
                per,
                Arc::new(move |k: u64, i: u64| {
                    fe2.lifecycle(ConnId(k * 1_000_000_000 + i), i);
                }),
            )
        });
    });
    g.finish();

    write_report(&thread_counts, &mutex_tput, &sharded_tput);
}

/// Emits `BENCH_dispatcher.json` at the repo root (hand-rolled JSON —
/// the workspace's serde shim deliberately has no serializer).
fn write_report(threads: &[usize], mutex_tput: &[f64], sharded_tput: &[f64]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatcher.json");
    let mut rows = String::new();
    for (i, &t) in threads.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"threads\": {t}, \"mutex_ops_per_sec\": {:.0}, \"sharded_ops_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            mutex_tput[i],
            sharded_tput[i],
            sharded_tput[i] / mutex_tput[i],
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let eight = threads
        .iter()
        .position(|&t| t == 8)
        .unwrap_or(threads.len() - 1);
    let host = phttp_bench::host_meta_json();
    let note = if cores == 1 {
        "single-core host: threads cannot run in parallel, so the speedup \
         reflects only per-op overhead reduction; the sharded design's \
         parallel scaling (the >=2x target) requires >=2 cores"
    } else {
        "multi-core host: speedup includes real parallel scaling"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"dispatcher_concurrency\",\n  \"workload\": \"extLARD lifecycle: open + batch(2) + 2 assigns + close, {NODES} nodes, {TARGETS} targets, busy disks\",\n  \"baseline\": \"parking_lot::Mutex<Dispatcher> (old frontend design)\",\n  \"contender\": \"ConcurrentDispatcher (lock-sharded, atomic loads)\",\n  {host},\n  \"note\": \"{note}\",\n  \"results\": [\n{rows}\n  ],\n  \"speedup_at_8_threads\": {:.3}\n}}\n",
        sharded_tput[eight] / mutex_tput[eight],
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(latency, bench_single_thread_latency);
criterion_group!(scaling, bench_scaling_and_report);
criterion_main!(latency, scaling);
