//! Threads vs reactor: what the front-end I/O model costs (or buys) at
//! increasing connection concurrency.
//!
//! The same synthetic pipelined P-HTTP workload — `C` concurrent
//! persistent connections, each sending pipelined batches — is served
//! by a live loopback cluster once per `IoModel` at each connection
//! count. The thread model needs a worker thread per in-flight
//! connection (pool sized to match); the reactor serves every
//! connection from one event-loop thread. Mostly-cached working set
//! and fast emulated disks, so the measurement stresses the I/O layer
//! rather than the disk model.
//!
//! Writes `BENCH_reactor.json` at the repo root. On a single-core host
//! the reactor's absolute numbers are the interesting part (no
//! parallelism to lose); on multi-core hosts the thread model regains
//! ground at low concurrency while the reactor holds at high
//! concurrency — the JSON records `cpu_cores` so results are
//! interpretable.

#![allow(missing_docs)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_simcore::SimTime;
use phttp_trace::{generate, Batch, Connection, ConnectionTrace, SynthConfig};

/// Pipelined batches per connection.
const BATCHES: usize = 8;
/// Requests per pipelined batch.
const BATCH_SIZE: usize = 4;

fn corpus_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_pages = 40;
    synth.num_page_views = 40; // corpus only; requests come from `workload`
    generate(&synth)
}

/// `conns` persistent connections of `BATCHES` × `BATCH_SIZE` pipelined
/// requests over a small hot corpus (mostly cache hits).
fn workload(conns: usize, targets: u32) -> ConnectionTrace {
    let connections = (0..conns)
        .map(|c| Connection {
            client: phttp_trace::ClientId(c as u32),
            batches: (0..BATCHES)
                .map(|b| Batch {
                    time: SimTime::ZERO,
                    targets: (0..BATCH_SIZE)
                        .map(|r| {
                            let mix = (c * 31 + b * 7 + r) as u32;
                            phttp_trace::TargetId(mix % targets)
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    ConnectionTrace { connections }
}

fn proto_config(io_model: IoModel, conns: usize) -> ProtoConfig {
    ProtoConfig {
        nodes: 2,
        policy: PolicyKind::ExtLard,
        cache_bytes: 8 * 1024 * 1024,
        disk: DiskEmu {
            seek: Duration::from_micros(100),
            bytes_per_sec: 400.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(20),
        io_model,
        // The thread model needs one worker per concurrent connection;
        // the reactor ignores the pool entirely.
        workers: conns + 8,
        fe_listeners: 4,
        ..ProtoConfig::default()
    }
}

/// Requests/second serving `conns` concurrent P-HTTP connections.
fn throughput(io_model: IoModel, conns: usize) -> f64 {
    let trace = corpus_trace();
    let load = workload(conns, trace.num_targets() as u32);
    let cluster = Cluster::start(proto_config(io_model, conns), &trace).expect("start cluster");
    // One client thread per connection: all `conns` connections are
    // in flight at once (closed loop, no think time).
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &load,
        &LoadConfig {
            clients: conns,
            protocol: ClientProtocol::PHttp,
            verify: false, // measure serving, not the verifier
            read_timeout: Duration::from_secs(30),
        },
    );
    cluster.shutdown();
    assert_eq!(report.errors, 0, "{io_model:?}/{conns}: load errors");
    assert_eq!(report.requests as usize, conns * BATCHES * BATCH_SIZE);
    report.throughput_rps()
}

fn bench_models(c: &mut Criterion) {
    // Criterion entries at the smallest size only (cluster startup per
    // iteration is the cost; the report below covers the full sweep).
    let mut g = c.benchmark_group("reactor_throughput");
    g.sample_size(5); // cluster start/stop dominates an iteration
    for io in [IoModel::Threads, IoModel::Reactor] {
        g.bench_function(&format!("{io:?}/c64"), |b| {
            b.iter(|| criterion::black_box(throughput(io, 64)));
        });
    }
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if quick { &[16, 64] } else { &[64, 256, 1024] };

    let mut rows = String::new();
    for (i, &conns) in sizes.iter().enumerate() {
        // Best of three per cell, like the other dispatcher benches.
        let best = |io: IoModel| (0..3).map(|_| throughput(io, conns)).fold(0.0f64, f64::max);
        let threads = best(IoModel::Threads);
        let reactor = best(IoModel::Reactor);
        println!(
            "reactor_throughput/c{conns:<5} threads {threads:>10.0} req/s   reactor {reactor:>10.0} req/s   ratio {:>5.2}x",
            reactor / threads,
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"connections\": {conns}, \"threads_rps\": {threads:.0}, \"reactor_rps\": {reactor:.0}, \"reactor_over_threads\": {:.3}}}",
            reactor / threads,
        ));
    }

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"reactor_throughput\",\n  \"workload\": \"P-HTTP closed loop: C concurrent persistent connections x {BATCHES} pipelined batches x {BATCH_SIZE} requests, extLARD, 2 nodes, hot cache\",\n  \"baseline\": \"IoModel::Threads (pre-spawned worker thread per in-flight connection)\",\n  \"contender\": \"IoModel::Reactor (single epoll-style event-loop thread)\",\n  {host},\n  \"note\": \"single-core hosts cannot parallelize the worker pool, so the comparison isolates per-connection thread overhead (stacks, context switches, scheduler load) against event-loop bookkeeping; the thread model additionally pins one worker per idle persistent connection, which is the scalability wall at high C\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reactor.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(models, bench_models);
criterion_group!(report, bench_report);
criterion_main!(models, report);
