//! Per-request vs batched dispatch: what one pipelined P-HTTP batch
//! costs the dispatcher when every request pays its own shard
//! acquisitions (`begin_batch` + N × `assign_request`) versus when the
//! whole batch is decided in one call (`assign_batch`: one
//! connection-shard visit, one write acquisition per distinct mapping
//! shard).
//!
//! Extended LARD with busy disks, so every assignment runs the full
//! cost-metric + mapping path — the worst case for lock traffic and the
//! case the paper's §7.2 pipelining argument is about. Decisions are
//! identical either way (property-tested in `batch_equivalence.rs`);
//! only the locking cost differs.
//!
//! Besides the criterion entries, the run measures batches/s for batch
//! sizes 1/2/4/8/16 under both APIs and writes `BENCH_batch.json` at
//! the repo root.

#![allow(missing_docs)]

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::{
    ConcurrentDispatcher, ConnId, DispatcherConfig, ForwardSemantics, LardParams, NodeId,
    PolicyKind,
};
use phttp_trace::TargetId;

const NODES: usize = 8;
const TARGETS: u32 = 4096;

fn dispatcher() -> ConcurrentDispatcher {
    let d = ConcurrentDispatcher::from_config(DispatcherConfig::new(
        PolicyKind::ExtLard,
        ForwardSemantics::LateralFetch,
        NODES,
        LardParams::default(),
    ));
    for n in 0..NODES {
        d.report_disk_queue(NodeId(n), 50);
    }
    d
}

/// The targets of one synthetic pipelined batch (a page plus embedded
/// objects: clustered but not identical, like trace batches).
fn batch_targets(seed: u64, n: usize) -> Vec<TargetId> {
    (0..n as u64)
        .map(|k| {
            TargetId(((seed.wrapping_mul(2654435761).wrapping_add(k * 7)) % TARGETS as u64) as u32)
        })
        .collect()
}

/// One connection serving `batches` pipelined batches of size `n`,
/// decided per-request.
fn run_per_request(d: &ConcurrentDispatcher, conn: ConnId, batches: u64, n: usize) {
    d.open_connection(conn, TargetId((conn.0 % TARGETS as u64) as u32));
    for b in 0..batches {
        let targets = batch_targets(conn.0.wrapping_add(b), n);
        d.begin_batch(conn, targets.len());
        for &t in &targets {
            let _ = d.assign_request(conn, t);
        }
    }
    d.close_connection(conn);
}

/// Same work, decided through the batched API.
fn run_batched(d: &ConcurrentDispatcher, conn: ConnId, batches: u64, n: usize) {
    d.open_connection(conn, TargetId((conn.0 % TARGETS as u64) as u32));
    for b in 0..batches {
        let targets = batch_targets(conn.0.wrapping_add(b), n);
        let _ = d.assign_batch(conn, &targets);
    }
    d.close_connection(conn);
}

/// Batches/second over `total_batches` batches of size `n`.
fn batches_per_sec(batched: bool, total_batches: u64, n: usize) -> f64 {
    let d = dispatcher();
    // Many shortish connections: shard/connection churn stays realistic.
    let batches_per_conn = 64;
    let conns = total_batches / batches_per_conn;
    let start = Instant::now();
    for c in 0..conns.max(1) {
        let conn = ConnId(c);
        if batched {
            run_batched(&d, conn, batches_per_conn, n);
        } else {
            run_per_request(&d, conn, batches_per_conn, n);
        }
    }
    (conns.max(1) * batches_per_conn) as f64 / start.elapsed().as_secs_f64()
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatcher_batch");
    for &n in &[2usize, 8] {
        g.bench_function(&format!("per_request/n{n}"), |b| {
            let d = dispatcher();
            let mut i = 0u64;
            b.iter(|| {
                run_per_request(&d, ConnId(i), 4, n);
                i += 1;
            });
        });
        g.bench_function(&format!("batched/n{n}"), |b| {
            let d = dispatcher();
            let mut i = 0u64;
            b.iter(|| {
                run_batched(&d, ConnId(i), 4, n);
                i += 1;
            });
        });
    }
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let total: u64 = if quick { 16_384 } else { 262_144 };
    let sizes = [1usize, 2, 4, 8, 16];

    let mut rows = String::new();
    for (i, &n) in sizes.iter().enumerate() {
        // Best of three per cell, like dispatcher_concurrency.
        let best = |batched: bool| {
            (0..3)
                .map(|_| batches_per_sec(batched, total, n))
                .fold(0.0f64, f64::max)
        };
        let per_req = best(false);
        let batched = best(true);
        println!(
            "dispatcher_batch/n{n:<2}  per-request {per_req:>12.0} batches/s   batched {batched:>12.0} batches/s   speedup {:>5.2}x",
            batched / per_req,
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"batch_size\": {n}, \"per_request_batches_per_sec\": {per_req:.0}, \"batched_batches_per_sec\": {batched:.0}, \"requests_per_sec_batched\": {:.0}, \"speedup\": {:.3}}}",
            batched * n as f64,
            batched / per_req,
        ));
    }

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"dispatcher_batch\",\n  \"workload\": \"extLARD, {NODES} nodes, {TARGETS} targets, busy disks; 64 pipelined batches per connection\",\n  \"baseline\": \"begin_batch + N x assign_request (per-request shard acquisition)\",\n  \"contender\": \"assign_batch (one conn-shard visit, grouped mapping-shard write locks)\",\n  {host},\n  \"note\": \"single-threaded measurement: the win is pure per-op locking overhead amortization; under contention the reduced acquisition count also cuts shard hold/wait time\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(sizes, bench_batch_sizes);
criterion_group!(report, bench_report);
criterion_main!(sizes, report);
