//! Criterion micro-benchmarks for the policy layer: dispatcher decision
//! latency per policy, and mapping-table operations. These are the paper's
//! front-end hot path — the dispatcher runs once per connection plus once
//! per subsequent request.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phttp_core::{
    ConnId, Dispatcher, ForwardSemantics, LardParams, MappingTable, NodeId, PolicyKind,
};
use phttp_trace::TargetId;

fn bench_open_close(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatcher_open_close");
    for (name, policy) in [
        ("wrr", PolicyKind::Wrr),
        ("lard", PolicyKind::Lard),
        ("ext_lard", PolicyKind::ExtLard),
    ] {
        g.bench_function(name, |b| {
            let mut d = Dispatcher::new(
                policy,
                ForwardSemantics::LateralFetch,
                8,
                LardParams::default(),
            );
            let mut i = 0u64;
            b.iter(|| {
                let conn = ConnId(i);
                let target = TargetId((i % 4096) as u32);
                let node = d.open_connection(conn, black_box(target));
                d.close_connection(conn);
                i += 1;
                black_box(node)
            });
        });
    }
    g.finish();
}

fn bench_subsequent_assignment(c: &mut Criterion) {
    c.bench_function("ext_lard_assign_subsequent", |b| {
        let mut d = Dispatcher::new(
            PolicyKind::ExtLard,
            ForwardSemantics::LateralFetch,
            8,
            LardParams::default(),
        );
        // Busy disks so the cost-metric path (not the fast local path) runs.
        for n in 0..8 {
            d.report_disk_queue(NodeId(n), 50);
        }
        let conn = ConnId(0);
        d.open_connection(conn, TargetId(0));
        // Pre-map targets across nodes.
        for t in 0..4096u32 {
            let probe = ConnId(1_000_000 + t as u64);
            d.open_connection(probe, TargetId(t));
            d.close_connection(probe);
        }
        let mut i = 0u32;
        b.iter(|| {
            d.begin_batch(conn, 4);
            for k in 0..4 {
                let t = TargetId((i.wrapping_mul(97).wrapping_add(k)) % 4096);
                black_box(d.assign_request(conn, t));
            }
            i += 1;
        });
    });
}

fn bench_mapping_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapping_table");
    g.bench_function("assign_exclusive", |b| {
        let mut m = MappingTable::new();
        let mut i = 0u32;
        b.iter(|| {
            m.assign_exclusive(TargetId(i % 65_536), NodeId((i % 7) as usize));
            i += 1;
        });
    });
    g.bench_function("lookup_hit", |b| {
        let mut m = MappingTable::new();
        for t in 0..65_536u32 {
            m.assign_exclusive(TargetId(t), NodeId((t % 7) as usize));
        }
        let mut i = 0u32;
        b.iter(|| {
            let hit = m.is_mapped(TargetId(i % 65_536), NodeId((i % 7) as usize));
            i += 1;
            black_box(hit)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_open_close,
    bench_subsequent_assignment,
    bench_mapping_table
);
criterion_main!(benches);
