//! Zero-copy write-out vs the copying baseline, in bytes per second.
//!
//! The same large-file workload — `C` concurrent persistent connections
//! pipelining multi-hundred-KiB-to-multi-MiB responses over a fully
//! cached corpus on one node — is served twice per io model: once with
//! `zero_copy: true` (responses stage as `(head, shared Bytes slice)`
//! pairs and leave via gathered `writev`, the body never copied after
//! the store synthesizes it) and once with `zero_copy: false` (each
//! response flattened into one contiguous buffer first — one extra
//! allocation plus one body memcpy per response, exactly the pre-PR
//! data path). Single node so no lateral traffic: the knob is the only
//! difference between the runs, in both io models.
//!
//! Reported metric is payload bytes per wall-clock second (the serving
//! path is byte-identical either way — `large_body` proves it — so
//! bytes/sec is directly comparable). Writes `BENCH_zerocopy.json` at
//! the repo root.

#![allow(missing_docs)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_simcore::SimTime;
use phttp_trace::{Batch, Connection, ConnectionTrace, Trace};

const MIB: u64 = 1024 * 1024;

/// Large-file corpus, hot in cache after the first touch.
const SIZES: [u64; 5] = [2 * MIB, MIB, MIB / 2, 256 * 1024, 192 * 1024];

/// Pipelined batches per connection.
const BATCHES: usize = 4;
/// Requests per pipelined batch.
const BATCH_SIZE: usize = 2;

fn corpus_trace() -> Trace {
    Trace::new(Vec::new(), SIZES.to_vec())
}

/// `conns` persistent connections pipelining large responses.
fn workload(conns: usize) -> ConnectionTrace {
    let connections = (0..conns)
        .map(|c| Connection {
            client: phttp_trace::ClientId(c as u32),
            batches: (0..BATCHES)
                .map(|b| Batch {
                    time: SimTime::ZERO,
                    targets: (0..BATCH_SIZE)
                        .map(|r| {
                            let mix = (c * 13 + b * 5 + r) as u32;
                            phttp_trace::TargetId(mix % SIZES.len() as u32)
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    ConnectionTrace { connections }
}

/// `shards == 0` encodes the threads baseline.
fn proto_config(shards: usize, conns: usize, zero_copy: bool) -> ProtoConfig {
    ProtoConfig {
        // One node: every request serves locally, so the zero_copy knob
        // is the only variable between the paired runs.
        nodes: 1,
        policy: PolicyKind::ExtLard,
        cache_bytes: 16 * MIB,
        disk: DiskEmu {
            seek: Duration::from_micros(100),
            bytes_per_sec: 400.0 * MIB as f64,
        },
        read_timeout: Duration::from_secs(20),
        io_model: if shards == 0 {
            IoModel::Threads
        } else {
            IoModel::Reactor
        },
        reactor_shards: shards.max(1),
        workers: conns + 8,
        fe_listeners: 4,
        zero_copy,
        ..ProtoConfig::default()
    }
}

/// Payload bytes per second serving the workload once.
fn bytes_per_sec(shards: usize, conns: usize, zero_copy: bool) -> f64 {
    let trace = corpus_trace();
    let load = workload(conns);
    let cluster =
        Cluster::start(proto_config(shards, conns, zero_copy), &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &load,
        &LoadConfig {
            clients: conns,
            protocol: ClientProtocol::PHttp,
            verify: false, // measure serving, not the verifier
            read_timeout: Duration::from_secs(30),
        },
    );
    cluster.shutdown();
    assert_eq!(report.errors, 0, "zerocopy bench: load errors");
    assert_eq!(report.requests as usize, conns * BATCHES * BATCH_SIZE);
    report.bytes as f64 / report.elapsed.as_secs_f64()
}

fn bench_zerocopy(c: &mut Criterion) {
    let mut g = c.benchmark_group("zerocopy");
    g.sample_size(5); // cluster start/stop dominates an iteration
    for zero_copy in [true, false] {
        let label = if zero_copy { "zerocopy" } else { "copying" };
        g.bench_function(&format!("reactor2/c16/{label}"), |b| {
            b.iter(|| criterion::black_box(bytes_per_sec(2, 16, zero_copy)));
        });
    }
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let conns = if quick { 16 } else { 32 };
    let reps = if quick { 1 } else { 3 };
    // `(label, shards)`: 0 is the threads model.
    let models: &[(&str, usize)] = &[("threads", 0), ("reactor1", 1), ("reactor2", 2)];

    let mut rows = String::new();
    let mut first = true;
    for &(label, shards) in models {
        let best = |zero_copy: bool| {
            (0..reps)
                .map(|_| bytes_per_sec(shards, conns, zero_copy))
                .fold(0.0f64, f64::max)
        };
        let copying = best(false);
        let zerocopy = best(true);
        let ratio = zerocopy / copying;
        println!(
            "zerocopy/{label:<9} c{conns}   zero-copy {:>8.1} MiB/s   copying {:>8.1} MiB/s   ratio {ratio:>5.2}x",
            zerocopy / MIB as f64,
            copying / MIB as f64,
        );
        if !first {
            rows.push_str(",\n");
        }
        first = false;
        rows.push_str(&format!(
            "    {{\"model\": \"{label}\", \"connections\": {conns}, \"zerocopy_bytes_per_sec\": {zerocopy:.0}, \"copying_bytes_per_sec\": {copying:.0}, \"zerocopy_over_copying\": {ratio:.3}}}"
        ));
    }

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"zerocopy\",\n  \"workload\": \"P-HTTP closed loop: C concurrent persistent connections x {BATCHES} pipelined batches x {BATCH_SIZE} requests over a hot {} MiB large-file corpus (bodies 192 KiB - 2 MiB), extLARD, 1 node\",\n  \"baseline\": \"zero_copy: false — every response flattened into a contiguous buffer before write-out (one allocation + one body memcpy per response)\",\n  \"contender\": \"zero_copy: true — responses staged as (head, refcounted Bytes slice) pairs, written by gathered writev straight from the cache slice\",\n  {host},\n  \"metric\": \"payload bytes per wall-clock second, best of {reps}\",\n  \"results\": [\n{rows}\n  ]\n}}\n",
        SIZES.iter().sum::<u64>() / MIB,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_zerocopy.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(zerocopy, bench_zerocopy);
criterion_group!(report, bench_report);
criterion_main!(zerocopy, report);
