//! Reactor shard scaling: what sharding the event loop costs (or buys)
//! at increasing connection concurrency, with the thread model as the
//! baseline.
//!
//! The same synthetic pipelined P-HTTP workload — `C` concurrent
//! persistent connections, each sending pipelined batches — is served
//! by a live loopback cluster once per configuration at each connection
//! count: `IoModel::Threads` (worker pool sized to the connection
//! count) and `IoModel::Reactor` at `reactor_shards ∈ {1, 2, 4}`
//! (SO_REUSEPORT accept distribution, event-driven lateral serving).
//! Mostly-cached working set and fast emulated disks, so the
//! measurement stresses the I/O layer rather than the disk model.
//!
//! Writes `BENCH_shards.json` at the repo root. **The build container
//! has one core**: extra shards cannot run in *parallel* there, so any
//! speedup the sweep shows is structural (per-shard `SO_REUSEPORT`
//! accept queues, smaller per-loop slabs and event batches, lateral
//! serving no longer queued behind one loop's client handling) rather
//! than core scaling — the JSON records `cpu_cores` and the caveat;
//! a multi-core host should separate the shard counts further.

#![allow(missing_docs)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_simcore::SimTime;
use phttp_trace::{generate, Batch, Connection, ConnectionTrace, SynthConfig};

/// Pipelined batches per connection.
const BATCHES: usize = 8;
/// Requests per pipelined batch.
const BATCH_SIZE: usize = 4;

fn corpus_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_pages = 40;
    synth.num_page_views = 40; // corpus only; requests come from `workload`
    generate(&synth)
}

/// `conns` persistent connections of `BATCHES` × `BATCH_SIZE` pipelined
/// requests over a small hot corpus (mostly cache hits).
fn workload(conns: usize, targets: u32) -> ConnectionTrace {
    let connections = (0..conns)
        .map(|c| Connection {
            client: phttp_trace::ClientId(c as u32),
            batches: (0..BATCHES)
                .map(|b| Batch {
                    time: SimTime::ZERO,
                    targets: (0..BATCH_SIZE)
                        .map(|r| {
                            let mix = (c * 31 + b * 7 + r) as u32;
                            phttp_trace::TargetId(mix % targets)
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    ConnectionTrace { connections }
}

/// `shards == 0` encodes the threads baseline.
fn proto_config(shards: usize, conns: usize) -> ProtoConfig {
    ProtoConfig {
        nodes: 2,
        policy: PolicyKind::ExtLard,
        cache_bytes: 8 * 1024 * 1024,
        disk: DiskEmu {
            seek: Duration::from_micros(100),
            bytes_per_sec: 400.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(20),
        io_model: if shards == 0 {
            IoModel::Threads
        } else {
            IoModel::Reactor
        },
        reactor_shards: shards.max(1),
        // The thread model needs one worker per concurrent connection;
        // the reactor ignores the pool entirely.
        workers: conns + 8,
        fe_listeners: 4,
        ..ProtoConfig::default()
    }
}

/// Requests/second serving `conns` concurrent P-HTTP connections.
fn throughput(shards: usize, conns: usize) -> f64 {
    let trace = corpus_trace();
    let load = workload(conns, trace.num_targets() as u32);
    let cluster = Cluster::start(proto_config(shards, conns), &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &load,
        &LoadConfig {
            clients: conns,
            protocol: ClientProtocol::PHttp,
            verify: false, // measure serving, not the verifier
            read_timeout: Duration::from_secs(30),
        },
    );
    cluster.shutdown();
    assert_eq!(report.errors, 0, "shards={shards}/{conns}: load errors");
    assert_eq!(report.requests as usize, conns * BATCHES * BATCH_SIZE);
    report.throughput_rps()
}

fn bench_shards(c: &mut Criterion) {
    // Criterion entries at the smallest size only (cluster startup per
    // iteration is the cost; the report below covers the full sweep).
    let mut g = c.benchmark_group("reactor_shards");
    g.sample_size(5); // cluster start/stop dominates an iteration
    for shards in [1usize, 2] {
        g.bench_function(&format!("shards{shards}/c64"), |b| {
            b.iter(|| criterion::black_box(throughput(shards, 64)));
        });
    }
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if quick { &[64] } else { &[256, 1024] };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    let mut rows = String::new();
    let mut first = true;
    for &conns in sizes {
        // Best of three per cell, like the other cluster benches.
        let reps = if quick { 1 } else { 3 };
        let best = |shards: usize| {
            (0..reps)
                .map(|_| throughput(shards, conns))
                .fold(0.0f64, f64::max)
        };
        let threads = best(0);
        for &shards in shard_counts {
            let rps = best(shards);
            println!(
                "reactor_shards/c{conns:<5} shards {shards}   {rps:>10.0} req/s   threads {threads:>10.0} req/s   ratio {:>5.2}x",
                rps / threads,
            );
            if !first {
                rows.push_str(",\n");
            }
            first = false;
            rows.push_str(&format!(
                "    {{\"connections\": {conns}, \"shards\": {shards}, \"reactor_rps\": {rps:.0}, \"threads_rps\": {threads:.0}, \"reactor_over_threads\": {:.3}}}",
                rps / threads,
            ));
        }
    }

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"reactor_shards\",\n  \"workload\": \"P-HTTP closed loop: C concurrent persistent connections x {BATCHES} pipelined batches x {BATCH_SIZE} requests, extLARD, 2 nodes, hot cache\",\n  \"baseline\": \"IoModel::Threads (pre-spawned worker thread per in-flight connection)\",\n  \"contender\": \"IoModel::Reactor at reactor_shards event loops (SO_REUSEPORT accept distribution, event-driven lateral serving)\",\n  {host},\n  \"note\": \"single-core host: shards cannot run in parallel here, yet sharding still wins — the gains are structural (one SO_REUSEPORT accept queue per shard and per address, smaller per-loop slabs and event batches, lateral serving no longer queued behind one loop's client handling), not parallelism; re-run on a multi-core host for the scaling the sharding exists for — same caveat as BENCH_dispatcher.json. The reactor also runs zero per-client/per-peer-connection threads at every shard count.\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shards.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(shards, bench_shards);
criterion_group!(report, bench_report);
criterion_main!(shards, report);
