//! Cache-coherent mapping feedback: what closing the belief loop costs
//! and buys.
//!
//! A Zipf-popularity trace whose working set far exceeds one node's
//! cache is run through the simulator under extended LARD with back-end
//! forwarding, once with feedback **off** (the paper's open-loop
//! dispatcher: the mapping table only grows) and once per reporting
//! interval with feedback **on**. Two observables per cell:
//!
//! * **miss rate** — stale beliefs route requests to nodes that long
//!   since evicted the target, turning would-be remote hits into disk
//!   reads;
//! * **divergence** — believed `(target, node)` pairs not actually
//!   cached at end of run, measured against the simulated caches
//!   themselves (ground truth, not the dispatcher's mirror).
//!
//! Shorter reporting intervals keep the belief fresher at more control
//! traffic — the staleness trade-off the interval sweep makes visible.
//!
//! Writes `BENCH_coherence.json` at the repo root. The criterion group
//! additionally measures the dispatcher-side cost of applying one
//! batched feedback report (the control plane's hot operation).

#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use phttp_core::{
    CacheEvent, ConcurrentDispatcher, ForwardSemantics, LardParams, NodeId, PolicyKind,
};
use phttp_sim::{build_workload, Report, SimConfig, Simulator};
use phttp_simcore::SimDuration;
use phttp_trace::{generate, SynthConfig, TargetId};

/// Reporting intervals swept with feedback on, simulated milliseconds.
const INTERVALS_MS: &[u64] = &[50, 200, 800];

fn zipf_trace(views: usize) -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_pages = 300;
    synth.num_page_views = views;
    synth.zipf_exponent = 1.0;
    generate(&synth)
}

/// One simulated cell: feedback off (`interval_ms == None`) or on at
/// the given reporting interval.
fn run_cell(trace: &phttp_trace::Trace, interval_ms: Option<u64>) -> Report {
    let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 4);
    // Working set ≫ per-node cache: the eviction churn regime where
    // belief and reality can drift.
    cfg.cache_bytes = 2 * 1024 * 1024;
    if let Some(ms) = interval_ms {
        cfg = cfg.with_feedback(SimDuration::from_millis(ms));
    }
    let workload = build_workload(trace, cfg.protocol, phttp_trace::SessionConfig::default());
    Simulator::new(cfg, trace, &workload).run()
}

fn bench_apply_feedback(c: &mut Criterion) {
    // The control plane's hot operation: one batched report (64 events)
    // applied to a dispatcher with a populated mapping table.
    let d = ConcurrentDispatcher::new(
        PolicyKind::ExtLard,
        ForwardSemantics::LateralFetch,
        4,
        LardParams::default(),
    );
    for i in 0..10_000u32 {
        let t = TargetId(i);
        d.mapping()
            .write(t, |m| m.add_replica(t, NodeId(i as usize % 4)));
    }
    let mut g = c.benchmark_group("mapping_coherence");
    g.bench_function("apply_feedback_64", |b| {
        let mut round = 0u32;
        b.iter(|| {
            // Alternate admits and evicts over a sliding target window so
            // every application does real mirror and shard work.
            let base = round % 9_000;
            round = round.wrapping_add(64);
            let events: Vec<CacheEvent> = (0..64u32)
                .map(|k| {
                    let t = TargetId(base + k);
                    if k % 2 == 0 {
                        CacheEvent::Admit(t)
                    } else {
                        CacheEvent::Evict(t)
                    }
                })
                .collect();
            d.apply_cache_feedback(NodeId((round % 4) as usize), criterion::black_box(&events));
        });
    });
    g.finish();
}

fn bench_report(_c: &mut Criterion) {
    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
    let views = if quick { 2_000 } else { 8_000 };
    let trace = zipf_trace(views);

    let mut rows = String::new();
    let push_row = |rows: &mut String, label: &str, interval: Option<u64>, r: &Report| {
        let miss = 1.0 - r.cache_hit_rate;
        let frac = if r.believed_pairs > 0 {
            r.mapping_divergence as f64 / r.believed_pairs as f64
        } else {
            0.0
        };
        println!(
            "mapping_coherence/{label:<14} miss {:>6.2}%  divergence {:>6} / {:<6} ({:>5.1}%)  stale_removed {:>6}  reports {:>5}  tput {:>8.0} req/s",
            miss * 100.0,
            r.mapping_divergence,
            r.believed_pairs,
            frac * 100.0,
            r.stale_mappings_removed,
            r.feedback_reports,
            r.throughput_rps,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"feedback\": {}, \"report_interval_ms\": {}, \"miss_rate\": {:.4}, \"divergence\": {}, \"believed_pairs\": {}, \"divergence_fraction\": {:.4}, \"stale_mappings_removed\": {}, \"feedback_reports\": {}, \"throughput_rps\": {:.0}}}",
            interval.is_some(),
            interval.map_or("null".to_string(), |ms| ms.to_string()),
            miss,
            r.mapping_divergence,
            r.believed_pairs,
            frac,
            r.stale_mappings_removed,
            r.feedback_reports,
            r.throughput_rps,
        ));
    };

    let off = run_cell(&trace, None);
    push_row(&mut rows, "off", None, &off);
    for &ms in INTERVALS_MS {
        let on = run_cell(&trace, Some(ms));
        push_row(&mut rows, &format!("on/{ms}ms"), Some(ms), &on);
        assert_eq!(
            on.mapping_divergence, 0,
            "feedback on must end belief-coherent"
        );
    }
    assert!(
        off.mapping_divergence > 0,
        "open loop must diverge under churn, or the bench measures nothing"
    );

    let host = phttp_bench::host_meta_json();
    let json = format!(
        "{{\n  \"benchmark\": \"mapping_coherence\",\n  {host},\n  \"workload\": \"Zipf(1.0) synthetic trace, {views} page views, 300 pages, P-HTTP, extLARD + BEforward, 4 nodes, 2 MiB caches (working set >> cache: heavy eviction churn)\",\n  \"baseline\": \"cache feedback off (open-loop mapping belief, the paper's dispatcher)\",\n  \"contender\": \"cache feedback on at {INTERVALS_MS:?} ms reporting intervals\",\n  \"metrics\": \"miss_rate (1 - aggregate hit rate); divergence = believed (target,node) pairs not actually cached at end of run, vs believed_pairs\",\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coherence.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(apply, bench_apply_feedback);
criterion_group!(report, bench_report);
criterion_main!(apply, report);
