//! Criterion micro-benchmarks for the simulation substrate: event queue,
//! FIFO resources, and the LRU cache — the inner loops of every simulated
//! run (a full Figure 7 sweep schedules tens of millions of events).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phttp_simcore::{EventQueue, FifoResource, LruCache, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                // Scatter times to exercise heap reordering.
                q.push(
                    SimTime::from_micros(i.wrapping_mul(2654435761) % 100_000),
                    i,
                );
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        });
    });
}

fn bench_fifo_resource(c: &mut Criterion) {
    c.bench_function("fifo_resource_schedule", |b| {
        let mut r = FifoResource::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 13;
            black_box(r.schedule(SimTime::from_micros(t), SimDuration::from_micros(100)))
        });
    });
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.bench_function("hit", |b| {
        let mut cache: LruCache<u32> = LruCache::new(1 << 24);
        for t in 0..1024u32 {
            cache.insert(t, 8 * 1024);
        }
        let mut i = 0u32;
        b.iter(|| {
            let hit = cache.touch(i % 1024);
            i += 1;
            black_box(hit)
        });
    });
    g.bench_function("insert_evict", |b| {
        // Budget of 128 entries: every insert evicts.
        let mut cache: LruCache<u32> = LruCache::new(128 * 8 * 1024);
        let mut i = 0u32;
        b.iter(|| {
            cache.insert(i, 8 * 1024);
            i += 1;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_fifo_resource, bench_lru);
criterion_main!(benches);
