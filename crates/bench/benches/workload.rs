//! Criterion micro-benchmarks for the workload pipeline: synthetic trace
//! generation, P-HTTP reconstruction, and a full small simulation run
//! (end-to-end cost of one figure data point).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::{generate, reconstruct, SessionConfig, SynthConfig};

fn bench_generate(c: &mut Criterion) {
    c.bench_function("trace/generate_small", |b| {
        b.iter(|| black_box(generate(&SynthConfig::small())));
    });
}

fn bench_reconstruct(c: &mut Criterion) {
    let trace = generate(&SynthConfig::small());
    c.bench_function("trace/reconstruct_phttp", |b| {
        b.iter(|| black_box(reconstruct(&trace, SessionConfig::default())));
    });
}

fn bench_sim_point(c: &mut Criterion) {
    let trace = generate(&SynthConfig::small());
    let cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 4);
    let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("one_fig7_data_point_small", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 4);
            cfg.cache_bytes = 2 * 1024 * 1024;
            black_box(Simulator::new(cfg, &trace, &workload).run().requests)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_generate, bench_reconstruct, bench_sim_point);
criterion_main!(benches);
