//! Criterion micro-benchmarks for the HTTP message layer: the prototype's
//! per-request wire costs.

#![allow(missing_docs)] // criterion macros generate undocumented items

use bytes::{Bytes, BytesMut};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use phttp_http::{Request, RequestParser, Response, Version};

fn bench_request_parse(c: &mut Criterion) {
    let wire = {
        let mut r = Request::get("/t/12345", Version::Http11);
        r.headers.push("Host", "cluster.example");
        r.headers.push("User-Agent", "bench/1.0");
        r.to_bytes()
    };
    let mut g = c.benchmark_group("http");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("parse_request", |b| {
        b.iter(|| {
            let mut p = RequestParser::new();
            p.feed(&wire);
            black_box(p.next().unwrap().unwrap())
        });
    });
    g.finish();
}

fn bench_pipelined_drain(c: &mut Criterion) {
    let mut wire = BytesMut::new();
    for i in 0..16 {
        Request::get(format!("/t/{i}"), Version::Http11).encode(&mut wire);
    }
    c.bench_function("http/drain_16_pipelined", |b| {
        b.iter(|| {
            let mut p = RequestParser::new();
            p.feed(&wire);
            black_box(p.drain().unwrap().len())
        });
    });
}

fn bench_response_encode(c: &mut Criterion) {
    let body = Bytes::from(vec![0u8; 8 * 1024]);
    let mut g = c.benchmark_group("http");
    g.throughput(Throughput::Bytes(8 * 1024));
    g.bench_function("encode_8k_response", |b| {
        b.iter(|| {
            let resp = Response::ok(Version::Http11, body.clone());
            black_box(resp.to_bytes().len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_request_parse,
    bench_pipelined_drain,
    bench_response_encode
);
criterion_main!(benches);
