//! Simulation output: the statistics the paper reports.

use phttp_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Per-node statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeReport {
    /// Requests served by this node (including laterally fetched ones).
    pub requests: u64,
    /// Cache hits among those requests.
    pub cache_hits: u64,
    /// Bytes of response data produced by this node.
    pub bytes_served: u64,
    /// CPU utilization over the run.
    pub cpu_utilization: f64,
    /// Disk utilization over the run.
    pub disk_utilization: f64,
    /// Cache evictions over the run.
    pub cache_evictions: u64,
    /// Disk reads actually issued by this node (misses that scheduled a
    /// fetch; under coalescing, one per flight, not per miss).
    pub disk_fetches: u64,
    /// Misses parked on an already-in-flight fetch for the same target
    /// (delayed hits; 0 with coalescing off).
    pub delayed_hits: u64,
}

impl NodeReport {
    /// Cache hit rate of this node, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }
}

/// Aggregate result of one simulated run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Configuration label (paper legend style).
    pub label: String,
    /// Number of back-end nodes.
    pub nodes: usize,
    /// Total client requests served.
    pub requests: u64,
    /// Total client connections served.
    pub connections: u64,
    /// Simulated time at which the last response completed.
    pub finished_at: SimTime,
    /// Requests per simulated second — the paper's throughput metric
    /// ("the number of requests in the trace divided by the simulated time
    /// it took to finish serving all the requests").
    pub throughput_rps: f64,
    /// Aggregate response bytes delivered to clients.
    pub bytes_delivered: u64,
    /// Delivered payload bandwidth in megabits per simulated second.
    pub bandwidth_mbps: f64,
    /// Aggregate cache hit rate across nodes.
    pub cache_hit_rate: f64,
    /// Mean requests per connection (1.0 in HTTP/1.0 mode).
    pub requests_per_connection: f64,
    /// Requests served by a node other than the connection-handling node
    /// via back-end forwarding.
    pub forwarded_requests: u64,
    /// Connection migrations (multiple handoff / zero-cost mechanisms).
    pub migrations: u64,
    /// Front-end CPU utilization. With a front-end tier this is the
    /// *bottleneck* instance's figure (the max over
    /// [`per_fe_utilization`](Self::per_fe_utilization)); with one
    /// front-end the two coincide.
    pub fe_utilization: f64,
    /// Number of front-end instances behind the VIP (1 in the paper's
    /// configuration).
    pub front_ends: usize,
    /// Per-front-end-instance CPU utilization, instance order.
    pub per_fe_utilization: Vec<f64>,
    /// Tier gossip rounds executed over the run (0 without a tier).
    pub gossip_rounds: u64,
    /// Mapping instructions (upserts + removals) front-ends adopted from
    /// peers' gossiped deltas over the run (0 without a tier).
    pub gossip_adoptions: u64,
    /// Mean response latency (request arrival at the serving path to last
    /// byte delivered), in milliseconds.
    pub mean_latency_ms: f64,
    /// Median response latency, milliseconds (bucketed; upper bound of the
    /// containing histogram bucket).
    pub p50_latency_ms: f64,
    /// 95th-percentile response latency, milliseconds.
    pub p95_latency_ms: f64,
    /// 99th-percentile response latency, milliseconds.
    pub p99_latency_ms: f64,
    /// End-of-run belief-vs-reality gap: believed `(target, node)`
    /// mapping pairs whose target the node's cache does **not** actually
    /// hold, measured against the simulated caches themselves. With
    /// cache feedback on and the run quiesced this converges to 0; with
    /// feedback off it grows with eviction churn.
    pub mapping_divergence: u64,
    /// Total believed `(target, node)` pairs at end of run (the
    /// denominator for `mapping_divergence`).
    pub believed_pairs: u64,
    /// Stale believed mappings removed by cache-feedback reports over
    /// the run (0 when feedback is off).
    pub stale_mappings_removed: u64,
    /// Cache-feedback reports applied over the run (0 when feedback is
    /// off).
    pub feedback_reports: u64,
    /// Disk reads actually issued across nodes. Without coalescing this
    /// equals the miss count; with coalescing it is one per flight.
    pub disk_fetches: u64,
    /// Misses that coalesced onto an in-flight fetch (delayed hits).
    pub delayed_hits: u64,
    /// Aggregate miss delay: the sum over every miss (flight leaders and
    /// parked waiters alike) of the time from cache probe to fetch
    /// completion, in milliseconds — the quantity LRU-MAD minimizes.
    pub agg_miss_delay_ms: f64,
    /// Median per-miss delay, milliseconds (bucketed).
    pub miss_p50_latency_ms: f64,
    /// 99th-percentile per-miss delay, milliseconds.
    pub miss_p99_latency_ms: f64,
    /// Per-node breakdown.
    pub per_node: Vec<NodeReport>,
}

impl Report {
    /// Fraction of requests that were neither local hits nor local misses at
    /// the connection node (i.e. moved by the mechanism).
    pub fn moved_fraction(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.forwarded_requests + self.migrations) as f64 / self.requests as f64
    }

    /// One-line human-readable summary (used by examples and fig binaries).
    pub fn summary(&self) -> String {
        format!(
            "{:<28} nodes={:<2} tput={:>8.1} req/s  hit={:>5.1}%  fe={:>5.1}%  lat={:>7.2} ms",
            self.label,
            self.nodes,
            self.throughput_rps,
            self.cache_hit_rate * 100.0,
            self.fe_utilization * 100.0,
            self.mean_latency_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_hit_rate_handles_zero() {
        let n = NodeReport::default();
        assert_eq!(n.hit_rate(), 0.0);
        let n = NodeReport {
            requests: 10,
            cache_hits: 7,
            ..Default::default()
        };
        assert!((n.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn moved_fraction_handles_zero() {
        let r = Report::default();
        assert_eq!(r.moved_fraction(), 0.0);
        let r = Report {
            requests: 100,
            forwarded_requests: 10,
            migrations: 5,
            ..Default::default()
        };
        assert!((r.moved_fraction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_label() {
        let r = Report {
            label: "WRR".into(),
            ..Default::default()
        };
        assert!(r.summary().contains("WRR"));
    }
}
