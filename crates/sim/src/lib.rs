//! Trace-driven cluster Web-server simulator.
//!
//! Reimplements (from the paper's description) the simulator used in §6 of
//! *Efficient Support for P-HTTP in Cluster-Based Web Servers*: a
//! closed-loop, discrete-event model of a front-end plus N back-end nodes,
//! each with a CPU, a disk, and an LRU main-memory cache, driven by
//! reconstructed persistent-connection workloads and parameterized by
//! Apache- or Flash-like cost profiles.
//!
//! The pieces:
//!
//! * [`costs`] — server, mechanism, and disk cost models (DESIGN.md §6.6);
//! * [`cache`] — the byte-budget LRU file cache;
//! * [`config`] — run configuration incl. the paper's named configurations;
//! * [`engine`] — the event loop;
//! * [`report`] — output statistics.
//!
//! # Examples
//!
//! ```
//! use phttp_sim::{build_workload, ProtocolMode, SimConfig, Simulator};
//! use phttp_trace::{generate, SessionConfig, SynthConfig};
//!
//! let trace = generate(&SynthConfig::small());
//! let cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 4);
//! let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
//! let report = Simulator::new(cfg, &trace, &workload).run();
//! assert_eq!(report.requests, trace.len() as u64);
//! println!("{}", report.summary());
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod config;
pub mod costs;
pub mod engine;
pub mod report;

pub use cache::LruCache;
pub use config::{ChurnAction, ChurnEvent, ProtocolMode, SimConfig};
pub use costs::{DiskParams, MechanismCosts, ServerCosts};
pub use engine::{build_workload, Simulator};
pub use phttp_simcore::EvictPolicy;
pub use report::{NodeReport, Report};
