//! The trace-driven cluster simulator (the paper's §6 simulator, extended
//! for HTTP/1.1 exactly as the paper extends the ASPLOS '98 simulator).
//!
//! ## Model
//!
//! * Closed loop: a fixed window of connections is kept in flight; the next
//!   trace connection is admitted when a slot frees ("the request arrival
//!   rate was matched to the aggregate throughput of the server").
//! * The network is infinitely fast and TCP dynamics are not modeled;
//!   throughput is bounded by CPU and disk only (the paper's assumption).
//! * Each back-end node has one CPU and one disk, both FIFO single servers,
//!   plus an LRU main-memory cache with a byte budget.
//! * The front-end has its own CPU so relaying can bottleneck and
//!   utilization can be reported (the paper's scalability argument).
//! * Within a persistent connection, a pipelined batch is sent as soon as
//!   the previous batch's last response completes (clients "have to wait
//!   for data from the server before requests in the next batch can be
//!   sent"); think time is not replayed because the closed loop compresses
//!   trace time.
//!
//! ## Request pipeline
//!
//! ```text
//! admit → FE dispatch → handoff (BE cpu) → [per request: FE tag?]
//!       → request cpu (serving node) → cache probe
//!       → (miss: disk read, insert)  → transmit cpu
//!       → (forwarded: conn-node fwd cpu | relayed: FE relay cpu)
//!       → response delivered
//! ```

use std::collections::HashMap;

use phttp_core::{
    Assignment, CacheEvent, ConnId, Dispatcher, DispatcherConfig, FeId, ForwardSemantics,
    Mechanism, NodeId, Ring, TierView,
};
use phttp_simcore::{Accumulator, EventQueue, FifoResource, Histogram, SimDuration, SimTime};
use phttp_trace::{ConnectionTrace, TargetId, Trace};

use crate::cache::LruCache;
use crate::config::{ChurnAction, ProtocolMode, SimConfig};
use crate::costs::CostTimes;
use crate::report::{NodeReport, Report};

/// Control-session disk-queue reporting period (paper §7.1: queue lengths
/// are conveyed to the front-end over the control sessions).
const DISK_REPORT_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// Health-probe period: how often each dispatcher's circuit breakers
/// tick (Open → HalfOpen after the configured cooldown). Only armed
/// when the run has a churn schedule — a static cluster never trips a
/// breaker.
const HEALTH_PROBE_INTERVAL: SimDuration = SimDuration::from_millis(50);

/// One simulated back-end node.
struct Backend {
    cpu: FifoResource,
    disk: FifoResource,
    cache: LruCache,
    requests: u64,
    hits: u64,
    bytes: u64,
    /// Disk reads actually issued (misses that scheduled a fetch).
    disk_fetches: u64,
    /// Misses parked on an already-in-flight fetch (delayed hits).
    delayed_hits: u64,
    /// Single-flight table: target → requests parked on the in-flight
    /// fetch. Present keys mean "a fetch is in flight"; the flight leader
    /// is the (conn, req) carried by the scheduled [`Ev::ReqDisk`] event.
    /// Only populated when `coalesce_misses` is on.
    flights: HashMap<TargetId, Vec<(u32, u16)>>,
    /// Cache admissions/evictions accumulated since the last feedback
    /// report (empty and untouched when feedback is off).
    pending_feedback: Vec<CacheEvent>,
    /// Whether the node's control session is up. A killed node stops
    /// reporting (disk queues, cache feedback) until it rejoins — the
    /// simulator twin of the prototype's closed control stream.
    session_up: bool,
}

impl Backend {
    fn new(cache_bytes: u64, feedback: bool, eviction: phttp_simcore::EvictPolicy) -> Self {
        let mut cache = LruCache::new(cache_bytes);
        cache.set_journal(feedback);
        cache.set_policy(eviction);
        Backend {
            cpu: FifoResource::new(),
            disk: FifoResource::new(),
            cache,
            requests: 0,
            hits: 0,
            bytes: 0,
            disk_fetches: 0,
            delayed_hits: 0,
            flights: HashMap::new(),
            pending_feedback: Vec::new(),
            session_up: true,
        }
    }

    /// Records the cache-content delta of one `insert` into the pending
    /// feedback report: the admission (if the target newly entered), the
    /// evictions it caused, and — when the cache *rejected* the target
    /// (larger than the whole budget) — an eviction-style "not cached"
    /// event, so the dispatcher's belief about uncacheable targets is
    /// corrected rather than diverging forever.
    fn record_insert(&mut self, target: TargetId, admitted: bool) {
        if admitted {
            self.pending_feedback.push(CacheEvent::Admit(target));
        } else if !self.cache.contains(target) {
            self.pending_feedback.push(CacheEvent::Evict(target));
        }
        for victim in self.cache.drain_evictions() {
            self.pending_feedback.push(CacheEvent::Evict(victim));
        }
    }
}

/// Runtime state of an in-flight connection.
struct ConnRt {
    /// Index into the workload's connection list.
    widx: usize,
    /// Front-end instance this connection was admitted to (round-robin
    /// across the tier; always 0 with a single front-end).
    fe: usize,
    /// Connection-handling node (updated on migration).
    node: NodeId,
    /// Current batch index.
    batch: usize,
    /// Outstanding requests in the current batch.
    remaining: usize,
    /// Serving node per request of the current batch.
    serving: Vec<NodeId>,
    /// Whether each request was moved off the connection node by
    /// back-end forwarding (drives the response-forwarding stage).
    forwarded: Vec<bool>,
    /// Arrival time of the current batch (latency accounting).
    batch_started: SimTime,
    /// Cache-probe instant per request of the current batch: when its
    /// miss began, for miss-delay accounting (delayed hits included).
    probe: Vec<SimTime>,
    /// Per-request policy connections (relaying front-end mode only).
    relay_conns: Vec<ConnId>,
}

/// Simulator events. Compact indices; all payload lives in the slab.
enum Ev {
    /// Front-end finished accepting + dispatching connection `c`.
    Dispatched(u32),
    /// Back-end finished taking over the handed-off connection.
    HandoffDone(u32),
    /// Request `r` of connection `c`'s current batch finished its
    /// per-request CPU: probe the cache.
    ReqCpu(u32, u16),
    /// Disk read finished.
    ReqDisk(u32, u16),
    /// Server transmit finished.
    ReqXmit(u32, u16),
    /// Forward/relay stage finished.
    ReqFwd(u32, u16),
    /// Periodic disk-queue report over the control sessions.
    DiskReport,
    /// Periodic cache-feedback report over the control sessions: each
    /// back-end's admission/eviction delta since the previous report is
    /// applied to the dispatcher's mapping belief.
    FeedbackReport,
    /// Periodic tier gossip round (front-end tiers only): every
    /// front-end publishes its ring-owned belief share and load figures;
    /// the others merge, adopt, and re-bias. One deterministic
    /// all-pairs exchange per round — the simulator's stand-in for the
    /// prototype's pairwise gossip sessions.
    Gossip,
    /// Periodic breaker tick (churn runs only): every dispatcher's
    /// health gate advances its cooldowns (Open → HalfOpen).
    HealthProbe,
    /// Scheduled membership change: index into the churn schedule.
    Churn(u32),
}

/// The simulator. Borrowing the workload keeps multi-run sweeps cheap.
pub struct Simulator<'w> {
    cfg: SimConfig,
    trace: &'w Trace,
    workload: &'w ConnectionTrace,
}

impl<'w> Simulator<'w> {
    /// Creates a simulator for the given configuration and workload.
    ///
    /// The `workload` must have been derived from `trace` (its target ids
    /// must be valid in the trace's corpus).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SimConfig, trace: &'w Trace, workload: &'w ConnectionTrace) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid simulation config: {e}");
        }
        Simulator {
            cfg,
            trace,
            workload,
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> Report {
        Run::new(self.cfg, self.trace, self.workload).run()
    }
}

/// Builds the workload view for a protocol mode from a trace.
pub fn build_workload(
    trace: &Trace,
    protocol: ProtocolMode,
    session: phttp_trace::SessionConfig,
) -> ConnectionTrace {
    match protocol {
        ProtocolMode::Http10 => phttp_trace::http10_connections(trace),
        ProtocolMode::PHttp => phttp_trace::reconstruct(trace, session),
    }
}

struct Run<'w> {
    cfg: SimConfig,
    trace: &'w Trace,
    workload: &'w ConnectionTrace,
    events: EventQueue<Ev>,
    /// One CPU per front-end instance (a single-element vec in the
    /// classic configuration).
    fes: Vec<FifoResource>,
    backends: Vec<Backend>,
    /// One dispatcher per front-end instance: its own mapping belief and
    /// load view, converged only as fast as the gossip carries deltas.
    dispatchers: Vec<Dispatcher>,
    /// Per-front-end merged view of the peers' published state.
    views: Vec<TierView>,
    /// Consistent-hash ring assigning each target its owning front-end
    /// (whose belief about that target wins at gossip time).
    ring: Ring,
    /// Per-front-end gossip sequence numbers.
    gossip_seq: Vec<u64>,
    gossip_rounds: u64,
    /// Mapping instructions (upserts + removals) peers adopted from
    /// gossiped deltas over the run.
    gossip_adoptions: u64,
    conns: HashMap<u32, ConnRt>,
    next_widx: usize,
    next_slot: u32,
    next_policy_conn: u64,
    active: usize,
    finished_at: SimTime,
    requests_done: u64,
    conns_done: u64,
    bytes_delivered: u64,
    forwarded: u64,
    migrations: u64,
    latency: Accumulator,
    latency_hist: Histogram,
    /// Miss-delay distribution: for every miss (leader or parked waiter),
    /// the time from cache probe to fetch completion.
    miss_hist: Histogram,
    /// Total aggregate miss delay (Σ per-miss delay, ms).
    agg_miss_delay_ms: f64,
    is_relay: bool,
}

impl<'w> Run<'w> {
    fn new(cfg: SimConfig, trace: &'w Trace, workload: &'w ConnectionTrace) -> Self {
        let semantics = match cfg.mechanism {
            Mechanism::MultipleHandoff | Mechanism::ZeroCost => ForwardSemantics::Migrate,
            _ => ForwardSemantics::LateralFetch,
        };
        let is_relay = cfg.mechanism == Mechanism::RelayingFrontend;
        let dispatchers: Vec<Dispatcher> = (0..cfg.front_ends)
            .map(|_| {
                Dispatcher::from_config(DispatcherConfig::new(
                    cfg.policy, semantics, cfg.nodes, cfg.lard,
                ))
            })
            .collect();
        let views = (0..cfg.front_ends)
            .map(|f| TierView::new(FeId(f), cfg.nodes))
            .collect();
        let ring = Ring::new(cfg.front_ends);
        let backends = (0..cfg.nodes)
            .map(|_| Backend::new(cfg.cache_bytes, cfg.cache_feedback, cfg.eviction))
            .collect();
        Run {
            fes: (0..cfg.front_ends).map(|_| FifoResource::new()).collect(),
            gossip_seq: vec![0; cfg.front_ends],
            gossip_rounds: 0,
            gossip_adoptions: 0,
            cfg,
            trace,
            workload,
            events: EventQueue::with_capacity(1024),
            backends,
            dispatchers,
            views,
            ring,
            conns: HashMap::new(),
            next_widx: 0,
            next_slot: 0,
            next_policy_conn: 0,
            active: 0,
            finished_at: SimTime::ZERO,
            requests_done: 0,
            conns_done: 0,
            bytes_delivered: 0,
            forwarded: 0,
            migrations: 0,
            latency: Accumulator::new(),
            // 0.1 ms .. ~200 s in doubling buckets: covers cached hits
            // through deep disk queues.
            latency_hist: Histogram::exponential(0.1, 200_000.0),
            miss_hist: Histogram::exponential(0.1, 200_000.0),
            agg_miss_delay_ms: 0.0,
            is_relay,
        }
    }

    fn fe_time(&self, us: u64) -> SimDuration {
        SimDuration::from_secs_f64(us as f64 / 1e6 / self.cfg.fe_speedup)
    }

    fn run(mut self) -> Report {
        self.events
            .push(SimTime::ZERO + DISK_REPORT_INTERVAL, Ev::DiskReport);
        if self.cfg.cache_feedback {
            self.events.push(
                SimTime::ZERO + self.cfg.feedback_interval,
                Ev::FeedbackReport,
            );
        }
        if self.cfg.front_ends > 1 {
            self.events
                .push(SimTime::ZERO + self.cfg.gossip_interval, Ev::Gossip);
        }
        if !self.cfg.churn.is_empty() {
            for (i, ev) in self.cfg.churn.iter().enumerate() {
                self.events.push(SimTime::ZERO + ev.at, Ev::Churn(i as u32));
            }
            self.events
                .push(SimTime::ZERO + HEALTH_PROBE_INTERVAL, Ev::HealthProbe);
        }
        self.try_admit(SimTime::ZERO);
        while let Some((now, ev)) = self.events.pop() {
            match ev {
                Ev::Dispatched(c) => self.on_dispatched(c, now),
                Ev::HandoffDone(c) => self.start_batch(c, now),
                Ev::ReqCpu(c, r) => self.on_req_cpu(c, r, now),
                Ev::ReqDisk(c, r) => self.on_req_disk(c, r, now),
                Ev::ReqXmit(c, r) => self.on_req_xmit(c, r, now),
                Ev::ReqFwd(c, r) => self.on_req_done(c, r, now),
                Ev::DiskReport => self.on_disk_report(now),
                Ev::FeedbackReport => self.on_feedback_report(now),
                Ev::Gossip => self.on_gossip(now),
                Ev::HealthProbe => self.on_health_probe(now),
                Ev::Churn(i) => self.on_churn(i),
            }
        }
        self.report()
    }

    /// Back-ends report their disk queue depths to the dispatcher over the
    /// control sessions (the paper's §7.1). Sampling on a fixed period —
    /// rather than at decision instants, which land exactly when a batch's
    /// disk reads have just drained — is what the real system does, and it
    /// removes a systematic idle-disk bias from the extended-LARD heuristic.
    fn on_disk_report(&mut self, now: SimTime) {
        for i in 0..self.cfg.nodes {
            if !self.backends[i].session_up {
                continue; // killed: no control session to report over
            }
            let depth = self.backends[i].disk.queue_len(now);
            // Control sessions fan out to every front-end instance: the
            // queue depth describes the *node*, which every tier member
            // decides against (mirrors the prototype's wiring).
            for d in &mut self.dispatchers {
                d.report_disk_queue(NodeId(i), depth);
            }
        }
        // Re-arm only while connections are in flight: admission is
        // eager, so `active == 0` means the workload is exhausted. (The
        // queue-emptiness test the pre-feedback code used would keep two
        // periodic control events re-arming each other forever.)
        if self.active > 0 {
            self.events.push(now + DISK_REPORT_INTERVAL, Ev::DiskReport);
        }
    }

    /// Back-ends flush their cache-content deltas to the dispatcher over
    /// the control sessions: the mapping belief sheds entries whose
    /// targets were evicted and confirms the ones still cached. One
    /// `apply_cache_feedback` batch per node per interval — the same
    /// batched, per-shard application the live prototype pays.
    fn on_feedback_report(&mut self, now: SimTime) {
        for i in 0..self.cfg.nodes {
            if !self.backends[i].session_up {
                continue; // killed: deltas cannot reach the dispatchers
            }
            let events = std::mem::take(&mut self.backends[i].pending_feedback);
            for d in &mut self.dispatchers {
                d.apply_cache_feedback(NodeId(i), &events);
            }
        }
        if self.active > 0 {
            self.events
                .push(now + self.cfg.feedback_interval, Ev::FeedbackReport);
        }
    }

    /// One tier gossip round: every front-end publishes the slice of its
    /// belief it owns on the ring (plus its locally charged loads), every
    /// peer merges the delta, adopts the mapping difference, and re-biases
    /// its load view with the summed peer loads. All-pairs in fixed index
    /// order, so multi-front-end runs stay deterministic.
    fn on_gossip(&mut self, now: SimTime) {
        self.gossip_rounds += 1;
        let m = self.cfg.front_ends;
        for f in 0..m {
            self.gossip_seq[f] += 1;
            let delta =
                self.dispatchers[f]
                    .snapshot()
                    .delta_for(FeId(f), self.gossip_seq[f], &self.ring);
            for g in 0..m {
                if g == f {
                    continue;
                }
                let outcome = self.views[g].merge(&delta);
                if outcome.applied {
                    self.gossip_adoptions +=
                        (outcome.upserts.len() + outcome.removals.len()) as u64;
                    self.dispatchers[g].adopt_merge(&outcome);
                }
            }
        }
        for g in 0..m {
            let remote = self.views[g].remote_load_fixed();
            self.dispatchers[g].set_remote_loads(&remote);
        }
        if self.active > 0 {
            self.events.push(now + self.cfg.gossip_interval, Ev::Gossip);
        }
    }

    /// Breaker tick: every dispatcher's health gate advances its
    /// cooldowns so tripped nodes move Open → HalfOpen and probation
    /// probes can close them again.
    fn on_health_probe(&mut self, now: SimTime) {
        for d in &self.dispatchers {
            d.health().tick_all();
        }
        if self.active > 0 {
            self.events
                .push(now + HEALTH_PROBE_INTERVAL, Ev::HealthProbe);
        }
    }

    /// One scheduled membership change from the churn schedule.
    ///
    /// * Kill: every dispatcher decommissions the node (beliefs dropped,
    ///   breaker forced Open) and its control session goes down. The
    ///   backend keeps draining whatever was already assigned to it —
    ///   the prototype's graceful decommission, so request conservation
    ///   survives arbitrary schedules.
    /// * JoinWarm: the node's surviving cache contents are snapshotted
    ///   into Admit events and replayed through every dispatcher's
    ///   warm-up path (absolute re-seed + breaker reset).
    /// * JoinCold: the cache is wiped first; the join carries an empty
    ///   journal, so dispatchers start from a blank belief.
    fn on_churn(&mut self, idx: u32) {
        match self.cfg.churn[idx as usize].action {
            ChurnAction::Kill(n) => {
                let be = &mut self.backends[n];
                be.session_up = false;
                be.pending_feedback.clear();
                for d in &mut self.dispatchers {
                    d.evict_node(NodeId(n));
                }
            }
            ChurnAction::JoinWarm(n) => {
                let events: Vec<CacheEvent> = self.backends[n]
                    .cache
                    .contents_lru_order()
                    .into_iter()
                    .map(|(t, _)| CacheEvent::Admit(t))
                    .collect();
                self.rejoin(n, &events);
            }
            ChurnAction::JoinCold(n) => {
                self.backends[n].cache.clear();
                self.rejoin(n, &[]);
            }
        }
    }

    /// Brings node `n` back: control session up, stale unreported deltas
    /// dropped (the join snapshot supersedes them), and every dispatcher
    /// warmed from `events`.
    fn rejoin(&mut self, n: usize, events: &[CacheEvent]) {
        let be = &mut self.backends[n];
        be.session_up = true;
        be.pending_feedback.clear();
        for d in &mut self.dispatchers {
            d.warm_up(NodeId(n), events);
        }
    }

    /// Admits connections while the window has room.
    fn try_admit(&mut self, now: SimTime) {
        while self.active < self.cfg.window() && self.next_widx < self.workload.connections.len() {
            let widx = self.next_widx;
            self.next_widx += 1;
            self.active += 1;
            let slot = self.next_slot;
            self.next_slot += 1;
            // Round-robin admission across the tier (the VIP's content-
            // blind L4 rotation); a single front-end always gets slot 0.
            let fe = slot as usize % self.cfg.front_ends;
            self.conns.insert(
                slot,
                ConnRt {
                    widx,
                    fe,
                    node: NodeId(0),
                    batch: 0,
                    remaining: 0,
                    serving: Vec::new(),
                    forwarded: Vec::new(),
                    batch_started: now,
                    probe: Vec::new(),
                    relay_conns: Vec::new(),
                },
            );
            let cost = self.fe_time(self.cfg.mech_costs.fe_conn_us);
            let done = self.fes[fe].schedule(now, cost);
            self.events.push(done, Ev::Dispatched(slot));
        }
    }

    /// FE dispatch complete: run the policy and start the handoff.
    fn on_dispatched(&mut self, c: u32, now: SimTime) {
        let (widx, fe) = {
            let rt = &self.conns[&c];
            (rt.widx, rt.fe)
        };
        let first_target = self.workload.connections[widx].batches[0].targets[0];

        if self.is_relay {
            // No handoff: the front-end keeps the connection and assigns
            // every request independently.
            self.start_batch(c, now);
            return;
        }

        let policy_conn = ConnId(c as u64);
        let node = self.dispatchers[fe].open_connection(policy_conn, first_target);
        self.conns.get_mut(&c).expect("conn slot").node = node;
        let handoff = SimDuration::from_micros(
            self.cfg.mech_costs.be_handoff_us + self.cfg.server.conn_establish_us,
        );
        let done = self.backends[node.0].cpu.schedule(now, handoff);
        self.events.push(done, Ev::HandoffDone(c));
    }

    /// Starts the current batch of connection `c`: assigns every request and
    /// launches its pipeline.
    fn start_batch(&mut self, c: u32, now: SimTime) {
        let (widx, batch_idx, conn_node, fe) = {
            let rt = &self.conns[&c];
            (rt.widx, rt.batch, rt.node, rt.fe)
        };
        let batch = &self.workload.connections[widx].batches[batch_idx];
        let n = batch.targets.len();
        let targets: Vec<TargetId> = batch.targets.clone();

        let policy_conn = ConnId(c as u64);
        // Batched arrival: the whole pipelined batch is decided in ONE
        // dispatcher call (the prototype's `FrontEnd::assign_batch`), so
        // the simulated front-end pays policy work per batch the same way
        // the live one pays lock traffic per batch. `assign_batch` is
        // observably equivalent to the per-request loop it replaced.
        let assignments = if !self.is_relay && batch_idx > 0 {
            self.dispatchers[fe].assign_batch(policy_conn, &targets)
        } else {
            Vec::new()
        };

        let mut serving = Vec::with_capacity(n);
        let mut forwarded = Vec::with_capacity(n);
        let mut relay_conns = Vec::with_capacity(n);

        for (r, &target) in targets.iter().enumerate() {
            let (node, was_forwarded, ready) = if self.is_relay {
                // Per-request assignment through a fresh policy connection.
                let id = ConnId(u64::MAX - self.next_policy_conn);
                self.next_policy_conn += 1;
                let node = self.dispatchers[fe].open_connection(id, target);
                relay_conns.push(id);
                let cost = self.fe_time(self.cfg.mech_costs.fe_req_us);
                let ready = self.fes[fe].schedule(now, cost);
                (node, false, ready)
            } else if batch_idx == 0 {
                // The first request is always served by the handling node.
                (conn_node, false, now)
            } else {
                self.apply_assignment(c, assignments[r], now)
            };
            serving.push(node);
            forwarded.push(was_forwarded);

            // Per-request CPU at the serving node.
            let cpu_done = self.backends[node.0].cpu.schedule(
                ready,
                SimDuration::from_micros(self.cfg.server.per_request_us),
            );
            self.events.push(cpu_done, Ev::ReqCpu(c, r as u16));
        }

        let rt = self.conns.get_mut(&c).expect("conn slot");
        rt.remaining = n;
        rt.serving = serving;
        rt.forwarded = forwarded;
        rt.relay_conns = relay_conns;
        rt.batch_started = now;
        rt.probe = vec![now; n];
    }

    /// Mechanism-cost handling for one already-decided request of a batch.
    /// Returns (serving node, forwarded-by-BEforward, ready time).
    ///
    /// The policy decision itself was made up front by `assign_batch`;
    /// this walks the consequences in request order, tracking the
    /// connection-handling node locally (`rt.node`) because under migrate
    /// semantics each remote assignment re-homes the connection for the
    /// *following* requests — exactly the order the per-request loop used
    /// to interleave decisions and bookkeeping in.
    fn apply_assignment(
        &mut self,
        c: u32,
        assignment: Assignment,
        now: SimTime,
    ) -> (NodeId, bool, SimTime) {
        let (conn_node, fe) = {
            let rt = &self.conns[&c];
            (rt.node, rt.fe)
        };
        let mc = &self.cfg.mech_costs;

        match (self.cfg.mechanism, assignment) {
            (Mechanism::ZeroCost, Assignment::Remote(node)) => {
                // Reassignment is free by definition.
                self.migrations += 1;
                self.conns.get_mut(&c).expect("conn slot").node = node;
                (node, false, now)
            }
            (Mechanism::MultipleHandoff, Assignment::Remote(node)) => {
                self.migrations += 1;
                // FE coordinates; both back-ends do protocol work. The
                // request is ready at the new node once its migrate-in
                // completes (its CPU serializes migrate-in before the
                // request's own processing).
                let cost = self.fe_time(mc.fe_req_us + mc.fe_migrate_us);
                let fe_done = self.fes[fe].schedule(now, cost);
                self.backends[conn_node.0]
                    .cpu
                    .schedule(now, SimDuration::from_micros(mc.be_migrate_out_us));
                let ready = self.backends[node.0]
                    .cpu
                    .schedule(fe_done, SimDuration::from_micros(mc.be_migrate_in_us));
                self.conns.get_mut(&c).expect("conn slot").node = node;
                (node, false, ready)
            }
            (Mechanism::BackendForwarding, Assignment::Remote(node)) => {
                self.forwarded += 1;
                // FE tags the request; the conn node issues the lateral
                // request; the remote node serves it.
                let cost = self.fe_time(mc.fe_req_us);
                let fe_done = self.fes[fe].schedule(now, cost);
                let lateral_done = self.backends[conn_node.0]
                    .cpu
                    .schedule(fe_done, SimDuration::from_micros(mc.be_lateral_req_us));
                (node, true, lateral_done)
            }
            (_, Assignment::Remote(node)) => {
                // Single handoff cannot move requests; config validation
                // prevents this, but stay safe.
                debug_assert!(false, "remote assignment under single handoff");
                (node, false, now)
            }
            (mech, Assignment::Local) => {
                // Request-granularity mechanisms still pay FE inspection.
                let ready = match mech {
                    Mechanism::BackendForwarding | Mechanism::MultipleHandoff => {
                        let cost = self.fe_time(mc.fe_req_us);
                        self.fes[fe].schedule(now, cost)
                    }
                    _ => now,
                };
                (conn_node, false, ready)
            }
        }
    }

    /// Per-request CPU done: probe the serving node's cache. On a miss,
    /// either schedule a disk read (becoming the flight leader) or — with
    /// coalescing on and a fetch for this target already in flight — park
    /// as a delayed hit to be released by the leader's [`Ev::ReqDisk`].
    fn on_req_cpu(&mut self, c: u32, r: u16, now: SimTime) {
        let (node, target) = self.request_ctx(c, r);
        let size = self.trace.size_of(target);
        self.conns.get_mut(&c).expect("conn slot").probe[r as usize] = now;
        let be = &mut self.backends[node.0];
        be.requests += 1;
        be.bytes += size;
        if be.cache.touch(target) {
            be.hits += 1;
            let done = be.cpu.schedule(now, self.cfg.server.xmit_time(size));
            self.events.push(done, Ev::ReqXmit(c, r));
        } else if self.cfg.coalesce_misses {
            if let Some(waiters) = be.flights.get_mut(&target) {
                waiters.push((c, r));
                be.delayed_hits += 1;
            } else {
                be.flights.insert(target, Vec::new());
                be.disk_fetches += 1;
                let done = be.disk.schedule(now, self.cfg.disk.read_time(size));
                self.events.push(done, Ev::ReqDisk(c, r));
            }
        } else {
            be.disk_fetches += 1;
            let done = be.disk.schedule(now, self.cfg.disk.read_time(size));
            self.events.push(done, Ev::ReqDisk(c, r));
        }
    }

    /// Disk read done: the OS caches what it read; transmit follows — for
    /// the flight leader and (with coalescing) every parked waiter. The
    /// cache insert carries the flight's aggregate miss delay so LRU-MAD
    /// can rank victims by what their next miss would cost.
    fn on_req_disk(&mut self, c: u32, r: u16, now: SimTime) {
        let (node, target) = self.request_ctx(c, r);
        let size = self.trace.size_of(target);
        let waiters = self.backends[node.0]
            .flights
            .remove(&target)
            .unwrap_or_default();
        let mut agg_us = self.account_miss(c, r, now);
        for &(wc, wr) in &waiters {
            agg_us += self.account_miss(wc, wr, now);
        }
        let be = &mut self.backends[node.0];
        let admitted = be.cache.insert_with_delay(target, size, agg_us);
        if self.cfg.cache_feedback {
            be.record_insert(target, admitted);
        }
        let xmit = self.cfg.server.xmit_time(size);
        let done = be.cpu.schedule(now, xmit);
        self.events.push(done, Ev::ReqXmit(c, r));
        for (wc, wr) in waiters {
            let done = self.backends[node.0].cpu.schedule(now, xmit);
            self.events.push(done, Ev::ReqXmit(wc, wr));
        }
    }

    /// Records one finished miss (leader or waiter) in the miss-delay
    /// metrics; returns its delay in µs for the flight's aggregate.
    fn account_miss(&mut self, c: u32, r: u16, now: SimTime) -> u64 {
        let probe = self.conns[&c].probe[r as usize];
        let delay = now.duration_since(probe);
        let ms = delay.as_secs_f64() * 1e3;
        self.agg_miss_delay_ms += ms;
        self.miss_hist.add(ms);
        delay.as_micros()
    }

    /// Server transmit done: forward/relay if needed, else complete.
    fn on_req_xmit(&mut self, c: u32, r: u16, now: SimTime) {
        let rt = &self.conns[&c];
        let target = self.target_of(rt.widx, rt.batch, r);
        let size = self.trace.size_of(target);
        if rt.forwarded[r as usize] {
            // Back-end forwarding: the response crosses the conn node.
            // NFS-style: the fetching node does NOT insert into its cache.
            let conn_node = rt.node;
            let chunks = size.div_ceil(512);
            let cost = SimDuration::from_micros(self.cfg.mech_costs.be_fwd_per_512_us * chunks);
            let done = self.backends[conn_node.0].cpu.schedule(now, cost);
            self.events.push(done, Ev::ReqFwd(c, r));
        } else if self.is_relay {
            let fe = rt.fe;
            let chunks = size.div_ceil(512);
            let cost = self.fe_time(self.cfg.mech_costs.fe_relay_per_512_us * chunks);
            let done = self.fes[fe].schedule(now, cost);
            self.events.push(done, Ev::ReqFwd(c, r));
        } else {
            self.on_req_done(c, r, now);
        }
    }

    /// A response reached the client.
    fn on_req_done(&mut self, c: u32, r: u16, now: SimTime) {
        self.requests_done += 1;
        self.finished_at = self.finished_at.max(now);
        {
            let rt = self.conns.get_mut(&c).expect("conn slot");
            let target = self.workload.connections[rt.widx].batches[rt.batch].targets[r as usize];
            self.bytes_delivered += self.trace.size_of(target);
            let lat = now.duration_since(rt.batch_started);
            let lat_ms = lat.as_secs_f64() * 1e3;
            self.latency.add(lat_ms);
            self.latency_hist.add(lat_ms);
            if let Some(&relay_conn) = rt.relay_conns.get(r as usize) {
                self.dispatchers[rt.fe].close_connection(relay_conn);
            }
            rt.remaining -= 1;
            if rt.remaining > 0 {
                return;
            }
        }
        // Batch complete: next batch or connection close.
        let (widx, batch, node, fe) = {
            let rt = &self.conns[&c];
            (rt.widx, rt.batch, rt.node, rt.fe)
        };
        if batch + 1 < self.workload.connections[widx].batches.len() {
            self.conns.get_mut(&c).expect("conn slot").batch = batch + 1;
            self.start_batch(c, now);
        } else {
            // Teardown happens at the conn node but nobody waits for it.
            if !self.is_relay {
                self.backends[node.0].cpu.schedule(
                    now,
                    SimDuration::from_micros(self.cfg.server.conn_teardown_us),
                );
                self.dispatchers[fe].close_connection(ConnId(c as u64));
            }
            self.conns.remove(&c);
            self.active -= 1;
            self.conns_done += 1;
            self.try_admit(now);
        }
    }

    fn request_ctx(&self, c: u32, r: u16) -> (NodeId, TargetId) {
        let rt = &self.conns[&c];
        let node = rt.serving[r as usize];
        (node, self.target_of(rt.widx, rt.batch, r))
    }

    fn target_of(&self, widx: usize, batch: usize, r: u16) -> TargetId {
        self.workload.connections[widx].batches[batch].targets[r as usize]
    }

    fn report(mut self) -> Report {
        // Quiescent flush: whatever deltas accumulated after the last
        // periodic report still reach the dispatcher (the real system's
        // back-ends keep reporting after traffic stops; the event loop
        // has no "after", so flush here).
        if self.cfg.cache_feedback {
            for i in 0..self.cfg.nodes {
                if !self.backends[i].session_up {
                    continue; // still killed at run end: nothing reaches anyone
                }
                let events = std::mem::take(&mut self.backends[i].pending_feedback);
                for d in &mut self.dispatchers {
                    d.apply_cache_feedback(NodeId(i), &events);
                }
            }
        }
        // True divergence, measured against the simulated caches
        // themselves (not the dispatcher's mirror): believed pairs whose
        // target the serving node does not actually hold. Computable with
        // feedback on or off — the off/on delta is the headline of the
        // `mapping_coherence` bench. With a front-end tier, each
        // instance's belief is counted separately (a pair adopted by two
        // instances is two beliefs that can each be stale).
        let mut true_divergence = 0u64;
        let mut believed_pairs = 0u64;
        for d in &self.dispatchers {
            d.mapping().for_each_pair(|target, node| {
                believed_pairs += 1;
                if !self.backends[node.0].cache.contains(target) {
                    true_divergence += 1;
                }
            });
        }
        // Counters only: the divergence/believed-pair gauges were just
        // computed from ground truth above, so the mirror-walk variant
        // (`coherence()`) would be a second full pass for nothing.
        // Summed across instances: feedback fans out to each.
        let coherence = self
            .dispatchers
            .iter()
            .map(|d| d.coherence_counters())
            .reduce(|mut a, b| {
                a.stale_removed += b.stale_removed;
                a.reports += b.reports;
                a
            })
            .expect("at least one front-end");
        let horizon = self.finished_at;
        let secs = horizon.as_secs_f64();
        let per_node: Vec<NodeReport> = self
            .backends
            .iter()
            .map(|b| NodeReport {
                requests: b.requests,
                cache_hits: b.hits,
                bytes_served: b.bytes,
                cpu_utilization: b.cpu.utilization(horizon),
                disk_utilization: b.disk.utilization(horizon),
                cache_evictions: b.cache.evictions(),
                disk_fetches: b.disk_fetches,
                delayed_hits: b.delayed_hits,
            })
            .collect();
        let total_requests: u64 = per_node.iter().map(|n| n.requests).sum();
        let total_hits: u64 = per_node.iter().map(|n| n.cache_hits).sum();
        let total_fetches: u64 = per_node.iter().map(|n| n.disk_fetches).sum();
        let total_delayed: u64 = per_node.iter().map(|n| n.delayed_hits).sum();
        Report {
            label: self.cfg.label(),
            nodes: self.cfg.nodes,
            requests: self.requests_done,
            connections: self.conns_done,
            finished_at: horizon,
            throughput_rps: if secs > 0.0 {
                self.requests_done as f64 / secs
            } else {
                0.0
            },
            bytes_delivered: self.bytes_delivered,
            bandwidth_mbps: if secs > 0.0 {
                self.bytes_delivered as f64 * 8.0 / 1e6 / secs
            } else {
                0.0
            },
            cache_hit_rate: if total_requests > 0 {
                total_hits as f64 / total_requests as f64
            } else {
                0.0
            },
            requests_per_connection: if self.conns_done > 0 {
                self.requests_done as f64 / self.conns_done as f64
            } else {
                0.0
            },
            forwarded_requests: self.forwarded,
            migrations: self.migrations,
            // The bottleneck instance: with one front-end this is *the*
            // front-end utilization; with a tier it is the figure the
            // scalability argument cares about.
            fe_utilization: self
                .fes
                .iter()
                .map(|fe| fe.utilization(horizon))
                .fold(0.0, f64::max),
            front_ends: self.cfg.front_ends,
            per_fe_utilization: self.fes.iter().map(|fe| fe.utilization(horizon)).collect(),
            gossip_rounds: self.gossip_rounds,
            gossip_adoptions: self.gossip_adoptions,
            mean_latency_ms: self.latency.mean(),
            p50_latency_ms: self.latency_hist.quantile(0.50).unwrap_or(0.0),
            p95_latency_ms: self.latency_hist.quantile(0.95).unwrap_or(0.0),
            p99_latency_ms: self.latency_hist.quantile(0.99).unwrap_or(0.0),
            mapping_divergence: true_divergence,
            believed_pairs,
            stale_mappings_removed: coherence.stale_removed,
            feedback_reports: coherence.reports,
            disk_fetches: total_fetches,
            delayed_hits: total_delayed,
            agg_miss_delay_ms: self.agg_miss_delay_ms,
            miss_p50_latency_ms: self.miss_hist.quantile(0.50).unwrap_or(0.0),
            miss_p99_latency_ms: self.miss_hist.quantile(0.99).unwrap_or(0.0),
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phttp_trace::{SessionConfig, SynthConfig};

    fn small_trace() -> Trace {
        phttp_trace::generate(&SynthConfig::small())
    }

    fn run_label(label: &str, nodes: usize, trace: &Trace) -> Report {
        let mut cfg = SimConfig::paper_config(label, nodes);
        // The small trace has a ~5 MB working set; shrink the cache so the
        // run is in the paper's capacity-miss regime (working set larger
        // than one node's cache, smaller than the aggregate).
        cfg.cache_bytes = 2 * 1024 * 1024;
        let workload = build_workload(trace, cfg.protocol, SessionConfig::default());
        Simulator::new(cfg, trace, &workload).run()
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let trace = small_trace();
        for label in [
            "WRR",
            "WRR-PHTTP",
            "simple-LARD",
            "simple-LARD-PHTTP",
            "multiHandoff-extLARD-PHTTP",
            "BEforward-extLARD-PHTTP",
            "zeroCost-extLARD-PHTTP",
            "relay-LARD-PHTTP",
        ] {
            let report = run_label(label, 3, &trace);
            assert_eq!(
                report.requests,
                trace.len() as u64,
                "{label}: request conservation violated"
            );
            assert!(report.throughput_rps > 0.0, "{label}: zero throughput");
            assert!(report.finished_at > SimTime::ZERO);
        }
    }

    #[test]
    fn connection_counts_match_workload() {
        let trace = small_trace();
        let r10 = run_label("simple-LARD", 2, &trace);
        assert_eq!(
            r10.connections,
            trace.len() as u64,
            "HTTP/1.0: conn per request"
        );
        let rp = run_label("simple-LARD-PHTTP", 2, &trace);
        let workload = phttp_trace::reconstruct(&trace, SessionConfig::default());
        assert_eq!(rp.connections, workload.connections.len() as u64);
        assert!(rp.requests_per_connection > 1.5);
    }

    #[test]
    fn phttp_beats_http10_under_ext_lard() {
        // The headline claim: with an efficient mechanism, persistent
        // connections help rather than hurt. On this deliberately tiny
        // trace the margin is thin for back-end forwarding (its per-request
        // lateral costs amortize over longer runs — the figure harness
        // asserts the full-scale version), so the strict inequality is
        // checked on the migration mechanism and back-end forwarding is
        // held to "competitive".
        let trace = small_trace();
        let multi = run_label("multiHandoff-extLARD-PHTTP", 3, &trace);
        let fwd = run_label("BEforward-extLARD-PHTTP", 3, &trace);
        let simple10 = run_label("simple-LARD", 3, &trace);
        assert!(
            multi.throughput_rps > simple10.throughput_rps,
            "multiHandoff-extLARD-PHTTP ({:.0} rps) must beat simple-LARD/1.0 ({:.0} rps)",
            multi.throughput_rps,
            simple10.throughput_rps
        );
        assert!(
            fwd.throughput_rps > simple10.throughput_rps * 0.85,
            "BEforward-extLARD-PHTTP ({:.0} rps) must stay competitive with simple-LARD/1.0 ({:.0} rps)",
            fwd.throughput_rps,
            simple10.throughput_rps
        );
    }

    #[test]
    fn ext_lard_beats_simple_lard_on_phttp() {
        let trace = small_trace();
        let ext = run_label("BEforward-extLARD-PHTTP", 3, &trace);
        let simple = run_label("simple-LARD-PHTTP", 3, &trace);
        assert!(
            ext.throughput_rps >= simple.throughput_rps * 0.98,
            "extLARD ({:.0}) must not lose to simple LARD ({:.0}) on P-HTTP",
            ext.throughput_rps,
            simple.throughput_rps
        );
    }

    #[test]
    fn lard_beats_wrr_at_scale() {
        let trace = small_trace();
        let lard = run_label("simple-LARD", 4, &trace);
        let wrr = run_label("WRR", 4, &trace);
        assert!(
            lard.throughput_rps > wrr.throughput_rps * 1.3,
            "LARD ({:.0}) must clearly beat WRR ({:.0}) at 4 nodes",
            lard.throughput_rps,
            wrr.throughput_rps
        );
        assert!(lard.cache_hit_rate > wrr.cache_hit_rate);
    }

    #[test]
    fn zero_cost_is_an_upper_bound_for_mechanisms() {
        let trace = small_trace();
        let zero = run_label("zeroCost-extLARD-PHTTP", 3, &trace);
        let multi = run_label("multiHandoff-extLARD-PHTTP", 3, &trace);
        let fwd = run_label("BEforward-extLARD-PHTTP", 3, &trace);
        // Allow a whisker of slack: different mechanisms perturb admission
        // order, which can shift cache contents slightly.
        assert!(zero.throughput_rps >= multi.throughput_rps * 0.97);
        assert!(zero.throughput_rps >= fwd.throughput_rps * 0.97);
    }

    #[test]
    fn deterministic_runs() {
        let trace = small_trace();
        let a = run_label("BEforward-extLARD-PHTTP", 3, &trace);
        let b = run_label("BEforward-extLARD-PHTTP", 3, &trace);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.forwarded_requests, b.forwarded_requests);
        assert!((a.throughput_rps - b.throughput_rps).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_hit_rates_are_sane() {
        let trace = small_trace();
        let r = run_label("BEforward-extLARD-PHTTP", 3, &trace);
        assert!((0.0..=1.0).contains(&r.cache_hit_rate));
        assert!((0.0..=1.0).contains(&r.fe_utilization));
        for n in &r.per_node {
            assert!((0.0..=1.0).contains(&n.cpu_utilization));
            assert!((0.0..=1.0).contains(&n.disk_utilization));
            assert!(n.cache_hits <= n.requests);
        }
        let served: u64 = r.per_node.iter().map(|n| n.requests).sum();
        assert_eq!(served, r.requests, "per-node serving counts must add up");
    }

    #[test]
    fn forwarding_happens_under_beforward() {
        let trace = small_trace();
        let r = run_label("BEforward-extLARD-PHTTP", 4, &trace);
        // The policy should move at least some requests (exact count depends
        // on disk pressure); migrations must be zero for this mechanism.
        assert_eq!(r.migrations, 0);
        let m = run_label("multiHandoff-extLARD-PHTTP", 4, &trace);
        assert_eq!(m.forwarded_requests, 0);
    }

    #[test]
    fn feedback_converges_divergence_to_zero() {
        use phttp_simcore::SimDuration;
        let trace = small_trace();
        // Working set ≫ one node's cache: eviction churn guaranteed.
        let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
            .with_feedback(SimDuration::from_millis(100));
        cfg.cache_bytes = 2 * 1024 * 1024;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        assert_eq!(
            r.mapping_divergence, 0,
            "with feedback on, a quiescent run must end belief-coherent"
        );
        assert!(r.feedback_reports > 0, "reports must have flowed");
        assert!(
            r.stale_mappings_removed > 0,
            "eviction churn must have shed stale beliefs"
        );
        assert!(r.believed_pairs > 0);
        // The paper's behavioural claims still hold with feedback on.
        assert_eq!(r.requests, trace.len() as u64);
    }

    #[test]
    fn no_feedback_leaves_divergence_behind() {
        let trace = small_trace();
        let run = |feedback: bool| {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3);
            if feedback {
                cfg = cfg.with_feedback(phttp_simcore::SimDuration::from_millis(100));
            }
            cfg.cache_bytes = 2 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let open_loop = run(false);
        let closed_loop = run(true);
        assert!(
            open_loop.mapping_divergence > 0,
            "the only-grows table must have diverged under churn"
        );
        assert_eq!(open_loop.feedback_reports, 0);
        assert_eq!(open_loop.stale_mappings_removed, 0);
        assert!(
            closed_loop.mapping_divergence < open_loop.mapping_divergence,
            "feedback must shrink divergence ({} -> {})",
            open_loop.mapping_divergence,
            closed_loop.mapping_divergence
        );
    }

    #[test]
    fn feedback_runs_stay_deterministic() {
        use phttp_simcore::SimDuration;
        let trace = small_trace();
        let run = || {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
                .with_feedback(SimDuration::from_millis(50));
            cfg.cache_bytes = 2 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.stale_mappings_removed, b.stale_mappings_removed);
        assert_eq!(a.feedback_reports, b.feedback_reports);
        assert_eq!(a.mapping_divergence, b.mapping_divergence);
    }

    #[test]
    fn coalescing_dedupes_fetches_and_cuts_aggregate_delay() {
        let trace = small_trace();
        let run = |coalesce: bool| {
            let mut cfg = SimConfig::paper_config("WRR-PHTTP", 1);
            cfg.cache_bytes = 64 * 1024 * 1024; // eviction-free
            if coalesce {
                cfg = cfg.with_coalescing();
            }
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let off = run(false);
        let on = run(true);
        // Conservation and accounting identities.
        assert_eq!(on.requests, trace.len() as u64);
        assert_eq!(off.delayed_hits, 0, "no parking without coalescing");
        let on_hits: u64 = on.per_node.iter().map(|n| n.cache_hits).sum();
        let off_hits: u64 = off.per_node.iter().map(|n| n.cache_hits).sum();
        assert_eq!(
            on_hits + on.delayed_hits + on.disk_fetches,
            on.requests,
            "every request is a hit, a delayed hit, or a fetch"
        );
        assert_eq!(off_hits + off.disk_fetches, off.requests);
        // Eviction-free: each distinct target is fetched exactly once.
        let distinct = {
            let mut seen = std::collections::HashSet::new();
            trace.requests().iter().map(|r| r.target).for_each(|t| {
                seen.insert(t);
            });
            seen.len() as u64
        };
        assert_eq!(
            on.disk_fetches, distinct,
            "coalescing must collapse every redundant fetch"
        );
        assert!(off.disk_fetches >= distinct);
        // De-duplication can only reduce total miss delay.
        assert!(
            on.agg_miss_delay_ms <= off.agg_miss_delay_ms + 1e-9,
            "coalesced aggregate miss delay {} must not exceed uncoalesced {}",
            on.agg_miss_delay_ms,
            off.agg_miss_delay_ms
        );
    }

    #[test]
    fn coalescing_runs_stay_deterministic() {
        let trace = small_trace();
        let run = || {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3).with_coalescing();
            cfg.cache_bytes = 2 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.disk_fetches, b.disk_fetches);
        assert_eq!(a.delayed_hits, b.delayed_hits);
        assert!((a.agg_miss_delay_ms - b.agg_miss_delay_ms).abs() < 1e-9);
    }

    #[test]
    fn feedback_converges_under_lru_mad() {
        use phttp_simcore::{EvictPolicy, SimDuration};
        let trace = small_trace();
        // Same setup as `feedback_converges_divergence_to_zero`, but with
        // the delayed-hits-aware policy: the mirror replays journalled
        // victims, so coherence must be policy-independent.
        let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
            .with_feedback(SimDuration::from_millis(100))
            .with_coalescing()
            .with_eviction(EvictPolicy::LruMad);
        cfg.cache_bytes = 2 * 1024 * 1024;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        assert_eq!(
            r.mapping_divergence, 0,
            "feedback must stay exact under LRU-MAD eviction"
        );
        assert!(r.stale_mappings_removed > 0, "churn must have occurred");
        assert_eq!(r.requests, trace.len() as u64);
    }

    #[test]
    fn front_end_tier_conserves_requests_and_gossips() {
        use phttp_simcore::SimDuration;
        let trace = small_trace();
        let run = |m: usize| {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
                .with_front_ends(m, SimDuration::from_millis(5));
            cfg.cache_bytes = 2 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let r = run(2);
        assert_eq!(r.requests, trace.len() as u64, "request conservation");
        assert_eq!(r.front_ends, 2);
        assert_eq!(r.per_fe_utilization.len(), 2);
        assert!(
            r.per_fe_utilization.iter().all(|&u| u > 0.0),
            "both instances must have worked: {:?}",
            r.per_fe_utilization
        );
        assert!(r.gossip_rounds > 0, "gossip must have run");
        assert!(
            r.gossip_adoptions > 0,
            "peers must have adopted ring-owned beliefs"
        );
        // Splitting one front-end CPU's work across two instances must
        // relieve the per-instance bottleneck.
        let single = run(1);
        assert_eq!(single.front_ends, 1);
        assert_eq!(single.gossip_rounds, 0, "no gossip without a tier");
        assert_eq!(single.per_fe_utilization, vec![single.fe_utilization]);
        assert!(
            r.fe_utilization < single.fe_utilization,
            "tier bottleneck {:.3} must sit below the single instance {:.3}",
            r.fe_utilization,
            single.fe_utilization
        );
    }

    #[test]
    fn front_end_tier_runs_stay_deterministic() {
        use phttp_simcore::SimDuration;
        let trace = small_trace();
        let run = || {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
                .with_front_ends(4, SimDuration::from_millis(5))
                .with_feedback(SimDuration::from_millis(100));
            cfg.cache_bytes = 2 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.forwarded_requests, b.forwarded_requests);
        assert_eq!(a.gossip_rounds, b.gossip_rounds);
        assert_eq!(a.gossip_adoptions, b.gossip_adoptions);
        assert_eq!(a.mapping_divergence, b.mapping_divergence);
        assert_eq!(a.per_fe_utilization, b.per_fe_utilization);
    }

    #[test]
    fn churn_conserves_requests_and_stays_deterministic() {
        use crate::config::{ChurnAction, ChurnEvent};
        let trace = small_trace();
        let run = || {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
                .with_feedback(SimDuration::from_millis(100))
                .with_churn(vec![
                    ChurnEvent {
                        at: SimDuration::from_millis(200),
                        action: ChurnAction::Kill(1),
                    },
                    ChurnEvent {
                        at: SimDuration::from_millis(600),
                        action: ChurnAction::JoinWarm(1),
                    },
                    ChurnEvent {
                        at: SimDuration::from_millis(900),
                        action: ChurnAction::Kill(2),
                    },
                    ChurnEvent {
                        at: SimDuration::from_millis(1400),
                        action: ChurnAction::JoinCold(2),
                    },
                ]);
            cfg.cache_bytes = 2 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        assert_eq!(
            a.requests,
            trace.len() as u64,
            "churn must not lose or duplicate requests"
        );
        let served: u64 = a.per_node.iter().map(|n| n.requests).sum();
        assert_eq!(served, a.requests);
        let b = run();
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.mapping_divergence, b.mapping_divergence);
        assert_eq!(a.per_node.len(), b.per_node.len());
        for (x, y) in a.per_node.iter().zip(&b.per_node) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.cache_hits, y.cache_hits);
        }
    }

    #[test]
    fn warm_rejoin_recovers_better_than_cold() {
        use crate::config::{ChurnAction, ChurnEvent};
        let trace = small_trace();
        let run = |rejoin: ChurnAction| {
            let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
                .with_feedback(SimDuration::from_millis(100))
                .with_churn(vec![
                    ChurnEvent {
                        at: SimDuration::from_millis(300),
                        action: ChurnAction::Kill(1),
                    },
                    ChurnEvent {
                        at: SimDuration::from_millis(500),
                        action: rejoin,
                    },
                ]);
            // Eviction-free: with capacity pressure the warm/cold gap
            // drowns in second-order eviction churn; without it the
            // wiped cache's re-fetches are the only difference.
            cfg.cache_bytes = 64 * 1024 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let warm = run(ChurnAction::JoinWarm(1));
        let cold = run(ChurnAction::JoinCold(1));
        assert_eq!(warm.requests, trace.len() as u64);
        assert_eq!(cold.requests, trace.len() as u64);
        // A wiped cache has to re-fetch what the warm rejoin kept.
        assert!(
            cold.disk_fetches > warm.disk_fetches,
            "cold rejoin fetched {} <= warm {}",
            cold.disk_fetches,
            warm.disk_fetches
        );
        assert!(cold.cache_hit_rate <= warm.cache_hit_rate + 1e-9);
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let trace = Trace::new(Vec::new(), vec![100]);
        let r = run_label("WRR", 2, &trace);
        assert_eq!(r.requests, 0);
        assert_eq!(r.throughput_rps, 0.0);
    }

    #[test]
    fn single_node_phttp_equals_http10_when_disk_bound() {
        // Paper: "With one server node the performance with HTTP/1.1 is
        // identical to HTTP/1.0 because the backend servers are disk bound
        // with all policies." Identical is too strict for a different
        // admission pattern; within a few percent is the observable claim.
        let trace = small_trace();
        let one10 = run_label("WRR", 1, &trace);
        let one11 = run_label("WRR-PHTTP", 1, &trace);
        let ratio = one11.throughput_rps / one10.throughput_rps;
        assert!(
            (0.8..=1.6).contains(&ratio),
            "1-node P-HTTP/HTTP1.0 ratio {ratio:.2} out of disk-bound band"
        );
    }
}
