//! Simulation configuration: cluster shape, mechanism/policy combination,
//! and workload mode.

use phttp_core::{LardParams, Mechanism, PolicyKind};
use phttp_simcore::{EvictPolicy, SimDuration};
use serde::{Deserialize, Serialize};

use crate::costs::{DiskParams, MechanismCosts, ServerCosts};

/// Whether the clients speak HTTP/1.0 or HTTP/1.1 (P-HTTP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// One request per TCP connection.
    Http10,
    /// Persistent connections with pipelined batches (reconstructed from
    /// the trace by the 15 s / 1 s heuristics).
    PHttp,
}

impl ProtocolMode {
    /// Suffix used in the paper's configuration labels.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolMode::Http10 => "",
            ProtocolMode::PHttp => "-PHTTP",
        }
    }
}

/// A scheduled cluster-membership change (the simulator twin of the
/// prototype's `Cluster::kill_node` / `rejoin_node_*` chaos API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// Decommission the node: every front-end instance drops its beliefs
    /// about it and trips its circuit breaker (the control-session EOF
    /// path). In-flight requests drain; the node's cache keeps its
    /// contents, but it stops reporting until it rejoins.
    Kill(usize),
    /// The node rejoins announcing its surviving cache contents — the
    /// dispatchers' beliefs are warmed from the snapshot before the node
    /// takes traffic.
    JoinWarm(usize),
    /// The node rejoins freshly wiped: its cache is cleared and the join
    /// carries an empty journal (a replacement machine, not a restart).
    JoinCold(usize),
}

impl ChurnAction {
    /// The node index the action applies to.
    pub fn node(self) -> usize {
        match self {
            ChurnAction::Kill(n) | ChurnAction::JoinWarm(n) | ChurnAction::JoinCold(n) => n,
        }
    }
}

/// One entry of a churn schedule: what happens, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Simulated instant the change takes effect.
    pub at: SimDuration,
    /// The membership change.
    pub action: ChurnAction,
}

/// Full configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of back-end nodes.
    pub nodes: usize,
    /// Request-distribution policy.
    pub policy: PolicyKind,
    /// Request-distribution mechanism.
    pub mechanism: Mechanism,
    /// Client protocol mode.
    pub protocol: ProtocolMode,
    /// Back-end server software cost profile.
    pub server: ServerCosts,
    /// Mechanism cost profile.
    pub mech_costs: MechanismCosts,
    /// Disk model.
    pub disk: DiskParams,
    /// Per-node main-memory cache budget in bytes.
    pub cache_bytes: u64,
    /// LARD policy parameters.
    pub lard: LardParams,
    /// Closed-loop concurrency window per node: the simulator keeps
    /// `window_per_node * nodes` connections in flight (the paper matched
    /// the arrival rate to the aggregate server throughput).
    pub window_per_node: usize,
    /// Speed multiplier for the front-end CPU (>1 models an SMP front-end;
    /// the paper suggests SMP front-ends for larger clusters).
    pub fe_speedup: f64,
    /// Cache-coherent mapping feedback: when `true`, back-ends report
    /// their cache admissions/evictions to the dispatcher over the
    /// control sessions every [`feedback_interval`](Self::feedback_interval),
    /// so the mapping belief tracks real cache contents instead of only
    /// growing. Off by default — the paper's dispatcher runs open-loop,
    /// and the divergence between the two is exactly what the
    /// `mapping_coherence` bench measures.
    pub cache_feedback: bool,
    /// Reporting period of the cache-feedback control messages. Shorter
    /// intervals keep the belief fresher at more control traffic; longer
    /// intervals let more stale routing happen between reports (the
    /// staleness trade-off, see ARCHITECTURE.md "Mapping coherence").
    pub feedback_interval: SimDuration,
    /// Single-flight miss coalescing: when `true`, concurrent misses for
    /// the same (node, target) share one disk fetch — the first miss
    /// becomes the flight leader and schedules the read; later misses park
    /// as *delayed hits* and are released when the leader's read completes.
    /// Off by default: the paper's model fetches redundantly, and the
    /// off/on delta is the headline of the `miss_latency` bench.
    pub coalesce_misses: bool,
    /// Cache victim-selection policy (strict LRU, or the delayed-hits-aware
    /// LRU-MAD — see [`EvictPolicy`]).
    pub eviction: EvictPolicy,
    /// Number of front-end instances behind the VIP. With 1 (the default,
    /// the paper's configuration) the model is the classic single
    /// front-end. With more, connections are admitted round-robin across
    /// the instances, each instance runs its own dispatcher (its own CPU,
    /// mapping belief, and load view), and the instances exchange state
    /// by periodic gossip: each publishes the slice of its belief it owns
    /// on the tier's consistent-hash ring, peers adopt it, and everyone
    /// folds the others' reported loads into a remote-load bias — the
    /// simulator twin of the prototype's `ProtoConfig::front_ends`.
    pub front_ends: usize,
    /// Period of the tier gossip rounds (ignored when `front_ends == 1`).
    /// Longer intervals let instances act on staler peer state — the
    /// freshness/traffic trade-off the `fe_tier` bench measures.
    pub gossip_interval: SimDuration,
    /// Scheduled membership churn (kills and warm/cold rejoins), applied
    /// at the given simulated instants. Empty by default — the paper's
    /// cluster is static; churn is what the elasticity bench and the
    /// chaos conservation properties exercise.
    pub churn: Vec<ChurnEvent>,
}

impl SimConfig {
    /// A named paper configuration on the Apache cost profile.
    ///
    /// `label` must be one of the figure-legend names:
    /// `WRR`, `WRR-PHTTP`, `simple-LARD`, `simple-LARD-PHTTP`,
    /// `multiHandoff-extLARD-PHTTP`, `BEforward-extLARD-PHTTP`,
    /// `zeroCost-extLARD-PHTTP`, `relay-LARD-PHTTP`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown label.
    pub fn paper_config(label: &str, nodes: usize) -> SimConfig {
        let base = SimConfig {
            nodes,
            policy: PolicyKind::Lard,
            mechanism: Mechanism::SingleHandoff,
            protocol: ProtocolMode::Http10,
            server: ServerCosts::apache(),
            mech_costs: MechanismCosts::apache(),
            disk: DiskParams::default(),
            cache_bytes: 16 * 1024 * 1024,
            lard: LardParams::default(),
            window_per_node: 40,
            fe_speedup: 1.0,
            cache_feedback: false,
            feedback_interval: SimDuration::from_millis(100),
            coalesce_misses: false,
            eviction: EvictPolicy::Lru,
            front_ends: 1,
            gossip_interval: SimDuration::from_millis(10),
            churn: Vec::new(),
        };
        match label {
            "WRR" => SimConfig {
                policy: PolicyKind::Wrr,
                ..base
            },
            "WRR-PHTTP" => SimConfig {
                policy: PolicyKind::Wrr,
                protocol: ProtocolMode::PHttp,
                ..base
            },
            "simple-LARD" => base,
            "simple-LARD-PHTTP" => SimConfig {
                protocol: ProtocolMode::PHttp,
                ..base
            },
            "multiHandoff-extLARD-PHTTP" => SimConfig {
                policy: PolicyKind::ExtLard,
                mechanism: Mechanism::MultipleHandoff,
                protocol: ProtocolMode::PHttp,
                ..base
            },
            "BEforward-extLARD-PHTTP" => SimConfig {
                policy: PolicyKind::ExtLard,
                mechanism: Mechanism::BackendForwarding,
                protocol: ProtocolMode::PHttp,
                ..base
            },
            "zeroCost-extLARD-PHTTP" => SimConfig {
                policy: PolicyKind::ExtLard,
                mechanism: Mechanism::ZeroCost,
                protocol: ProtocolMode::PHttp,
                ..base
            },
            "relay-LARD-PHTTP" => SimConfig {
                policy: PolicyKind::Lard,
                mechanism: Mechanism::RelayingFrontend,
                protocol: ProtocolMode::PHttp,
                ..base
            },
            other => panic!("unknown paper configuration label: {other}"),
        }
    }

    /// Switches the server and mechanism cost profiles to Flash.
    pub fn with_flash(mut self) -> SimConfig {
        self.server = ServerCosts::flash();
        self.mech_costs = MechanismCosts::flash();
        self
    }

    /// Enables cache-coherent mapping feedback at the given reporting
    /// interval (builder style).
    pub fn with_feedback(mut self, interval: SimDuration) -> SimConfig {
        self.cache_feedback = true;
        self.feedback_interval = interval;
        self
    }

    /// Enables single-flight miss coalescing (builder style).
    pub fn with_coalescing(mut self) -> SimConfig {
        self.coalesce_misses = true;
        self
    }

    /// Selects the cache victim-selection policy (builder style).
    pub fn with_eviction(mut self, policy: EvictPolicy) -> SimConfig {
        self.eviction = policy;
        self
    }

    /// Schedules cluster-membership churn (builder style). Events apply
    /// at their simulated instants in the order given for equal times.
    pub fn with_churn(mut self, churn: Vec<ChurnEvent>) -> SimConfig {
        self.churn = churn;
        self
    }

    /// Runs a front-end tier of `front_ends` instances gossiping every
    /// `gossip_interval` (builder style).
    pub fn with_front_ends(mut self, front_ends: usize, gossip_interval: SimDuration) -> SimConfig {
        self.front_ends = front_ends;
        self.gossip_interval = gossip_interval;
        self
    }

    /// Total closed-loop window.
    pub fn window(&self) -> usize {
        self.window_per_node * self.nodes
    }

    /// Validates the mechanism/policy combination.
    ///
    /// Single handoff cannot move requests off the connection node, so it is
    /// incompatible with the extended-LARD policy (which exists to do
    /// exactly that); the relaying front-end re-assigns every request and is
    /// driven per-request, which the dispatcher models as per-request
    /// connections, so extended LARD's connection state is meaningless there.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.policy == PolicyKind::ExtLard && self.mechanism == Mechanism::SingleHandoff {
            return Err("extended LARD requires a request-granularity mechanism \
                 (multiple handoff, back-end forwarding, or zero-cost)"
                .into());
        }
        if self.mechanism == Mechanism::RelayingFrontend && self.policy == PolicyKind::ExtLard {
            return Err("the relaying front-end is driven per-request; use LARD or WRR".into());
        }
        if self.window_per_node == 0 {
            return Err("window_per_node must be positive".into());
        }
        if self.fe_speedup <= 0.0 {
            return Err("fe_speedup must be positive".into());
        }
        if self.cache_feedback && self.feedback_interval == SimDuration::ZERO {
            return Err("feedback_interval must be positive when cache_feedback is on".into());
        }
        if self.front_ends == 0 {
            return Err("front_ends must be at least 1".into());
        }
        if self.front_ends > 1 && self.gossip_interval == SimDuration::ZERO {
            return Err("gossip_interval must be positive when running a front-end tier".into());
        }
        for ev in &self.churn {
            if ev.action.node() >= self.nodes {
                return Err(format!(
                    "churn event targets node {} but the cluster has {} nodes",
                    ev.action.node(),
                    self.nodes
                ));
            }
        }
        self.lard.validate()
    }

    /// The paper-style label of this configuration.
    pub fn label(&self) -> String {
        let mech = match (self.mechanism, self.policy) {
            (Mechanism::SingleHandoff, PolicyKind::Wrr) => "WRR".to_string(),
            (Mechanism::SingleHandoff, PolicyKind::Lard) => "simple-LARD".to_string(),
            (m, p) => format!("{}-{}", m.label(), p.label()),
        };
        format!("{mech}{}", self.protocol.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        for label in [
            "WRR",
            "WRR-PHTTP",
            "simple-LARD",
            "simple-LARD-PHTTP",
            "multiHandoff-extLARD-PHTTP",
            "BEforward-extLARD-PHTTP",
            "zeroCost-extLARD-PHTTP",
            "relay-LARD-PHTTP",
        ] {
            let cfg = SimConfig::paper_config(label, 4);
            cfg.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
            let flash = cfg.with_flash();
            flash.validate().unwrap();
        }
    }

    #[test]
    fn labels_roundtrip() {
        assert_eq!(SimConfig::paper_config("WRR", 2).label(), "WRR");
        assert_eq!(
            SimConfig::paper_config("BEforward-extLARD-PHTTP", 2).label(),
            "BEforward-extLARD-PHTTP"
        );
        assert_eq!(
            SimConfig::paper_config("simple-LARD-PHTTP", 2).label(),
            "simple-LARD-PHTTP"
        );
        assert_eq!(
            SimConfig::paper_config("zeroCost-extLARD-PHTTP", 2).label(),
            "zeroCost-extLARD-PHTTP"
        );
    }

    #[test]
    #[should_panic(expected = "unknown paper configuration")]
    fn unknown_label_panics() {
        let _ = SimConfig::paper_config("nonsense", 2);
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        let mut cfg = SimConfig::paper_config("simple-LARD", 2);
        cfg.policy = PolicyKind::ExtLard; // ext-LARD over single handoff
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_config("relay-LARD-PHTTP", 2);
        cfg.policy = PolicyKind::ExtLard;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_config("WRR", 2);
        cfg.nodes = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn front_end_tier_builder_and_validation() {
        let cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 2);
        assert_eq!(cfg.front_ends, 1, "single front-end by default");
        let cfg = cfg.with_front_ends(4, SimDuration::from_millis(5));
        assert_eq!(cfg.front_ends, 4);
        cfg.validate().unwrap();

        let mut bad = SimConfig::paper_config("WRR", 2);
        bad.front_ends = 0;
        assert!(bad.validate().is_err());

        let mut bad = SimConfig::paper_config("WRR", 2).with_front_ends(2, SimDuration::ZERO);
        assert!(bad.validate().is_err());
        bad.gossip_interval = SimDuration::from_millis(1);
        bad.validate().unwrap();
    }

    #[test]
    fn coalescing_and_eviction_builders() {
        let cfg = SimConfig::paper_config("WRR-PHTTP", 2);
        assert!(!cfg.coalesce_misses, "coalescing is off by default");
        assert_eq!(cfg.eviction, EvictPolicy::Lru, "strict LRU by default");
        let cfg = cfg.with_coalescing().with_eviction(EvictPolicy::LruMad);
        assert!(cfg.coalesce_misses);
        assert_eq!(cfg.eviction, EvictPolicy::LruMad);
        cfg.validate().unwrap();
    }

    #[test]
    fn churn_builder_and_validation() {
        use phttp_simcore::SimDuration;
        let cfg = SimConfig::paper_config("WRR", 2);
        assert!(cfg.churn.is_empty(), "static cluster by default");
        let cfg = cfg.with_churn(vec![
            ChurnEvent {
                at: SimDuration::from_millis(10),
                action: ChurnAction::Kill(1),
            },
            ChurnEvent {
                at: SimDuration::from_millis(20),
                action: ChurnAction::JoinWarm(1),
            },
        ]);
        cfg.validate().unwrap();

        let bad = SimConfig::paper_config("WRR", 2).with_churn(vec![ChurnEvent {
            at: SimDuration::from_millis(1),
            action: ChurnAction::JoinCold(2),
        }]);
        assert!(bad.validate().is_err(), "out-of-range churn node");
    }

    #[test]
    fn window_scales_with_nodes() {
        let cfg = SimConfig::paper_config("WRR", 4);
        assert_eq!(cfg.window(), 4 * cfg.window_per_node);
    }
}
