//! Cost models for the simulated cluster.
//!
//! The CPU cost profiles (Apache/Flash server costs and mechanism costs)
//! live in [`phttp_core::costmodel`] so the simulator, the analytic model
//! and the benchmark harness share one source of truth; this module
//! re-exports them, adds [`SimDuration`] adapters, and defines the disk
//! service model (which only the simulator needs).

use phttp_simcore::SimDuration;
use serde::{Deserialize, Serialize};

pub use phttp_core::costmodel::{chunks, MechanismCosts, ServerCosts};

/// [`SimDuration`] adapters for the shared cost model.
pub trait CostTimes {
    /// Transmit time for `bytes` of response data.
    fn xmit_time(&self, bytes: u64) -> SimDuration;
}

impl CostTimes for ServerCosts {
    fn xmit_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.xmit_us(bytes))
    }
}

/// Disk service model: fixed positioning cost plus linear transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Average positioning (seek + rotational) cost per read.
    pub seek_us: u64,
    /// Sequential transfer rate, bytes per second.
    pub transfer_bytes_per_sec: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            seek_us: 10_000,
            transfer_bytes_per_sec: 15.0 * 1024.0 * 1024.0,
        }
    }
}

impl DiskParams {
    /// Service time for reading `bytes` from disk.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        let transfer = bytes as f64 / self.transfer_bytes_per_sec;
        SimDuration::from_micros(self.seek_us) + SimDuration::from_secs_f64(transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmit_time_matches_us_model() {
        let c = ServerCosts::apache();
        assert_eq!(c.xmit_time(8 * 1024).as_micros(), c.xmit_us(8 * 1024));
    }

    #[test]
    fn disk_read_time_scales_with_size() {
        let d = DiskParams::default();
        let small = d.read_time(1024);
        let large = d.read_time(1024 * 1024);
        assert!(small.as_micros() >= 10_000);
        assert!(large > small);
        // 1 MiB at 15 MiB/s ≈ 66.7 ms plus 10 ms seek.
        let expect_ms = 1.0 / 15.0 * 1000.0 + 10.0;
        assert!((large.as_secs_f64() * 1e3 - expect_ms).abs() < 1.0);
    }
}
