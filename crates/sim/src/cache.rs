//! The back-end node's main-memory file cache.
//!
//! A byte-budget strict-LRU over [`TargetId`]s — the simulator's model of
//! FreeBSD's unified buffer cache (the paper observed 70-85 MB of usable
//! cache on its 128 MB back-ends; the budget is a [`crate::SimConfig`]
//! field). The generic implementation lives in [`phttp_simcore::lru`] and
//! is shared with the live prototype.

use phttp_trace::TargetId;

/// LRU cache keyed by target.
pub type LruCache = phttp_simcore::lru::LruCache<TargetId>;
