//! Property-based tests of the simulator over randomized workloads and
//! configurations: conservation, determinism, and metric sanity must hold
//! for *every* input, not just the paper's.

use proptest::prelude::*;

use phttp_sim::{build_workload, ChurnAction, ChurnEvent, SimConfig, Simulator};
use phttp_simcore::{SimDuration, SimTime};
use phttp_trace::{ClientId, Request, SessionConfig, TargetId, Trace};

/// Strategy: a small random trace (corpus of 12 targets, up to 120 requests).
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec((0u64..30_000_000, 0u32..8, 0u32..12), 1..120),
        proptest::collection::vec(100u64..200_000, 12),
    )
        .prop_map(|(reqs, sizes)| {
            let requests = reqs
                .into_iter()
                .map(|(t, c, g)| Request {
                    time: SimTime::from_micros(t),
                    client: ClientId(c),
                    target: TargetId(g),
                })
                .collect();
            Trace::new(requests, sizes)
        })
}

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("WRR"),
        Just("WRR-PHTTP"),
        Just("simple-LARD"),
        Just("simple-LARD-PHTTP"),
        Just("multiHandoff-extLARD-PHTTP"),
        Just("BEforward-extLARD-PHTTP"),
        Just("zeroCost-extLARD-PHTTP"),
        Just("relay-LARD-PHTTP"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every admitted request completes exactly once, for every mechanism,
    /// policy, cluster size, and workload.
    #[test]
    fn conservation(trace in arb_trace(), label in arb_label(), nodes in 1usize..6) {
        let mut cfg = SimConfig::paper_config(label, nodes);
        cfg.cache_bytes = 256 * 1024;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        prop_assert_eq!(r.requests, trace.len() as u64, "{}", label);
        // Per-node serving counts add up to the total.
        let served: u64 = r.per_node.iter().map(|n| n.requests).sum();
        prop_assert_eq!(served, r.requests);
        // Bytes delivered equal the trace's response bytes.
        prop_assert_eq!(r.bytes_delivered, trace.total_response_bytes());
    }

    /// Reports are internally consistent: rates, utilizations and hit rates
    /// stay in range whatever the input.
    #[test]
    fn metric_sanity(trace in arb_trace(), label in arb_label(), nodes in 1usize..5) {
        let mut cfg = SimConfig::paper_config(label, nodes);
        cfg.cache_bytes = 256 * 1024;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        prop_assert!((0.0..=1.0).contains(&r.cache_hit_rate));
        prop_assert!((0.0..=1.0).contains(&r.fe_utilization));
        prop_assert!(r.throughput_rps >= 0.0);
        prop_assert!(r.mean_latency_ms >= 0.0);
        for n in &r.per_node {
            prop_assert!((0.0..=1.0).contains(&n.cpu_utilization));
            prop_assert!((0.0..=1.0).contains(&n.disk_utilization));
            prop_assert!(n.cache_hits <= n.requests);
        }
        // Mechanism exclusivity: forwarding and migration never both occur.
        prop_assert!(r.forwarded_requests == 0 || r.migrations == 0);
    }

    /// Bit-for-bit determinism over arbitrary inputs.
    #[test]
    fn determinism(trace in arb_trace(), label in arb_label(), nodes in 1usize..4) {
        let run = || {
            let mut cfg = SimConfig::paper_config(label, nodes);
            cfg.cache_bytes = 256 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.forwarded_requests, b.forwarded_requests);
        prop_assert_eq!(a.migrations, b.migrations);
        prop_assert_eq!(a.bytes_delivered, b.bytes_delivered);
    }

    /// Single handoff mechanisms never move requests: all work is served at
    /// connection-handling nodes.
    #[test]
    fn connection_granularity_policies_never_move(trace in arb_trace(), nodes in 1usize..5) {
        for label in ["WRR-PHTTP", "simple-LARD-PHTTP"] {
            let mut cfg = SimConfig::paper_config(label, nodes);
            cfg.cache_bytes = 256 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            let r = Simulator::new(cfg, &trace, &workload).run();
            prop_assert_eq!(r.forwarded_requests, 0);
            prop_assert_eq!(r.migrations, 0);
        }
    }

    /// With one node there is nowhere to move anything, for any mechanism.
    #[test]
    fn single_node_never_moves(trace in arb_trace(), label in arb_label()) {
        let mut cfg = SimConfig::paper_config(label, 1);
        cfg.cache_bytes = 256 * 1024;
        let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
        let r = Simulator::new(cfg, &trace, &workload).run();
        prop_assert_eq!(r.forwarded_requests + r.migrations, 0);
    }

    /// Delayed-hits accounting identity, for every mechanism, policy and
    /// workload (evictions included): each request is exactly one of a
    /// cache hit, a delayed hit (parked on an in-flight fetch), or a
    /// fetch. Without coalescing, delayed hits are identically zero.
    #[test]
    fn coalescing_accounting_identity(trace in arb_trace(), label in arb_label(), nodes in 1usize..5) {
        for coalesce in [false, true] {
            let mut cfg = SimConfig::paper_config(label, nodes);
            cfg.cache_bytes = 256 * 1024;
            cfg.coalesce_misses = coalesce;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            let r = Simulator::new(cfg, &trace, &workload).run();
            let hits: u64 = r.per_node.iter().map(|n| n.cache_hits).sum();
            prop_assert_eq!(
                hits + r.delayed_hits + r.disk_fetches,
                r.requests,
                "{}: hit/delayed-hit/fetch must partition the requests",
                label
            );
            if !coalesce {
                prop_assert_eq!(r.delayed_hits, 0);
            }
        }
    }

    /// On an eviction-free single node, coalescing is exactly "the
    /// uncoalesced run with redundant fetches de-duplicated": every
    /// distinct target is fetched once, every other miss becomes a delayed
    /// hit, and de-duplication can only shrink the aggregate miss delay.
    #[test]
    fn coalescing_dedupes_redundant_fetches(trace in arb_trace(), phttp in any::<bool>()) {
        let label = if phttp { "WRR-PHTTP" } else { "WRR" };
        let run = |coalesce: bool| {
            let mut cfg = SimConfig::paper_config(label, 1);
            cfg.cache_bytes = u64::MAX; // eviction-free: corpus always fits
            cfg.coalesce_misses = coalesce;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let off = run(false);
        let on = run(true);
        let distinct = {
            let mut seen = std::collections::HashSet::new();
            for r in trace.requests() {
                seen.insert(r.target);
            }
            seen.len() as u64
        };
        prop_assert_eq!(on.disk_fetches, distinct, "one fetch per distinct target");
        prop_assert!(off.disk_fetches >= distinct);
        let off_hits: u64 = off.per_node.iter().map(|n| n.cache_hits).sum();
        prop_assert_eq!(
            off.disk_fetches - distinct,
            off.requests - off_hits - distinct,
            "uncoalesced redundant fetches are exactly its non-first misses"
        );
        prop_assert!(
            on.agg_miss_delay_ms <= off.agg_miss_delay_ms + 1e-9,
            "de-duplication must not increase aggregate miss delay ({} > {})",
            on.agg_miss_delay_ms,
            off.agg_miss_delay_ms
        );
    }

    /// Request conservation survives arbitrary membership churn: random
    /// schedules of kills and warm/cold rejoins (including nonsense like
    /// double kills and joins of never-killed nodes) must never lose or
    /// duplicate a request, and churned runs stay deterministic.
    #[test]
    fn churn_conserves_requests(
        trace in arb_trace(),
        label in arb_label(),
        nodes in 2usize..5,
        schedule in proptest::collection::vec(
            (0u64..3_000, 0usize..4, 0u8..3),
            0..6,
        ),
    ) {
        let churn: Vec<ChurnEvent> = schedule
            .iter()
            .map(|&(at_ms, node, kind)| ChurnEvent {
                at: SimDuration::from_millis(at_ms),
                action: match kind {
                    0 => ChurnAction::Kill(node % nodes),
                    1 => ChurnAction::JoinWarm(node % nodes),
                    _ => ChurnAction::JoinCold(node % nodes),
                },
            })
            .collect();
        let run = || {
            let mut cfg = SimConfig::paper_config(label, nodes)
                .with_churn(churn.clone());
            cfg.cache_bytes = 256 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        prop_assert_eq!(a.requests, trace.len() as u64, "{}", label);
        let served: u64 = a.per_node.iter().map(|n| n.requests).sum();
        prop_assert_eq!(served, a.requests);
        prop_assert_eq!(a.bytes_delivered, trace.total_response_bytes());
        let b = run();
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.disk_fetches, b.disk_fetches);
    }

    /// LRU-MAD is a drop-in policy: conservation and accounting hold, and
    /// runs stay bit-for-bit deterministic.
    #[test]
    fn lru_mad_conserves_and_is_deterministic(trace in arb_trace(), label in arb_label(), nodes in 1usize..4) {
        let run = || {
            let mut cfg = SimConfig::paper_config(label, nodes)
                .with_coalescing()
                .with_eviction(phttp_sim::EvictPolicy::LruMad);
            cfg.cache_bytes = 256 * 1024;
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            Simulator::new(cfg, &trace, &workload).run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.requests, trace.len() as u64);
        prop_assert_eq!(a.bytes_delivered, trace.total_response_bytes());
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.disk_fetches, b.disk_fetches);
        prop_assert_eq!(a.delayed_hits, b.delayed_hits);
    }
}
