//! The future-event list: a time-ordered priority queue with FIFO tie-breaking.
//!
//! `std::collections::BinaryHeap` is a max-heap and is not stable for equal
//! keys; simulation correctness (and reproducibility) requires that events
//! scheduled for the same instant fire in the order they were scheduled.
//! [`EventQueue`] therefore orders on `(time, sequence-number)` with the heap
//! inverted into a min-heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue delivering items in non-decreasing time stamp order.
///
/// Events with equal time stamps are delivered in insertion order.
///
/// # Examples
///
/// ```
/// use phttp_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), "later");
/// q.push(SimTime::from_micros(1), "first");
/// q.push(SimTime::from_micros(5), "last");
///
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "later")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "last")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with space for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the time stamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        for (t, v) in [(30u64, 'c'), (10, 'a'), (20, 'b'), (40, 'd')] {
            q.push(SimTime::from_micros(t), v);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(100);
        for i in 0..50 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(3));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 'x');
        q.push(SimTime::from_micros(5), 'y');
        assert_eq!(q.pop().unwrap().1, 'y');
        q.push(SimTime::from_micros(1), 'z');
        // 'z' is earlier than the remaining 'x' even though pushed later.
        assert_eq!(q.pop().unwrap().1, 'z');
        assert_eq!(q.pop().unwrap().1, 'x');
    }
}
