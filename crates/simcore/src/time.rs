//! Virtual time for discrete-event simulation.
//!
//! Simulated time is kept in integer **microseconds** so that event ordering
//! is exact and runs are bit-for-bit reproducible across platforms. The
//! paper's cost constants (connection setup, per-request CPU, transmit cost
//! per 512 bytes) are all naturally expressed in microseconds, and two months
//! of trace time still fit comfortably in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time stamp from microseconds since the simulation origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time stamp from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time stamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the time stamp as microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time stamp as (fractional) seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: add beyond u64 microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in add"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(15).as_micros(), 15_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!(
            t.duration_since(SimTime::from_micros(10)),
            SimDuration::from_micros(5)
        );
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(1);
        assert_eq!(u, SimTime::from_secs(1));
    }

    #[test]
    fn duration_from_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_micros(500_000)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(6));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX).saturating_mul(2),
            SimDuration::from_micros(u64::MAX)
        );
    }
}
