//! Byte-budget LRU cache modeling a node's main-memory file cache.
//!
//! The paper's back-ends rely on FreeBSD's unified buffer cache; both the
//! simulator (`phttp-sim`) and the live prototype (`phttp-proto`) model it
//! as a strict LRU over whole entries with a byte budget. Entries are whole
//! documents — the workload is static files, which the OS caches in full.
//!
//! Implementation: hash map + intrusive doubly-linked list over a slab, so
//! `touch`/`insert`/evict are O(1) and the structure handles millions of
//! operations per run.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry<K> {
    target: K,
    size: u64,
    prev: usize,
    next: usize,
}

/// A strict-LRU cache of keyed entries with a byte budget.
#[derive(Debug, Clone)]
pub struct LruCache<K> {
    budget: u64,
    used: u64,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    evictions: u64,
    /// When enabled, every victim of budget pressure is appended here for
    /// the owner to drain — the raw material of cache-coherence feedback
    /// reports. Disabled by default so unconsumed journals cannot grow.
    journal: Option<Vec<K>>,
}

impl<K: Copy + Eq + Hash> LruCache<K> {
    /// Creates a cache holding at most `budget_bytes` of content.
    pub fn new(budget_bytes: u64) -> Self {
        LruCache {
            budget: budget_bytes,
            used: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
            journal: None,
        }
    }

    /// Turns the eviction journal on or off. While on, every entry
    /// evicted by budget pressure is recorded (in eviction order) until
    /// [`drain_evictions`](Self::drain_evictions) collects it. Explicit
    /// [`remove`](Self::remove) calls and rejected oversized inserts are
    /// *not* journalled — they are the owner's own actions, not silent
    /// evictions the owner needs telling about. Turning the journal off
    /// discards any undrained entries.
    pub fn set_journal(&mut self, enabled: bool) {
        self.journal = enabled.then(Vec::new);
    }

    /// Takes the journalled evictions accumulated since the last drain
    /// (empty if the journal is disabled).
    pub fn drain_evictions(&mut self) -> Vec<K> {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Returns the byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Returns the bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Returns the number of cached targets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns `true` if the target is cached, and if so marks it most
    /// recently used (a cache hit).
    pub fn touch(&mut self, target: K) -> bool {
        if let Some(&idx) = self.map.get(&target) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Returns `true` if the target is cached without updating recency.
    pub fn contains(&self, target: K) -> bool {
        self.map.contains_key(&target)
    }

    /// Inserts a target of the given size, evicting LRU entries as needed.
    /// Returns `true` iff the target was **newly admitted** — absent
    /// before the call and cached after it. Refreshing an existing entry
    /// and rejecting an oversized one both return `false`.
    ///
    /// A target larger than the whole budget is not cached at all (the OS
    /// cannot hold it resident either). Re-inserting an existing target
    /// refreshes its recency and updates its size.
    pub fn insert(&mut self, target: K, size: u64) -> bool {
        if let Some(&idx) = self.map.get(&target) {
            // Size update (static content rarely changes, but stay safe).
            let old = self.slab[idx].size;
            self.used = self.used - old + size;
            self.slab[idx].size = size;
            self.unlink(idx);
            self.push_front(idx);
            self.shrink_to_budget(Some(target));
            return false;
        }
        if size > self.budget {
            return false;
        }
        self.used += size;
        let idx = self.alloc(Entry {
            target,
            size,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(target, idx);
        self.push_front(idx);
        self.shrink_to_budget(Some(target));
        self.map.contains_key(&target)
    }

    /// Removes a target if present; returns whether it was cached.
    pub fn remove(&mut self, target: K) -> bool {
        if let Some(idx) = self.map.remove(&target) {
            self.used -= self.slab[idx].size;
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Evicts least-recently-used entries until within budget, never
    /// evicting `keep` (the entry just inserted).
    fn shrink_to_budget(&mut self, keep: Option<K>) {
        while self.used > self.budget {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL, "over budget with empty cache");
            let victim = self.slab[tail].target;
            if Some(victim) == keep {
                // Only the just-inserted oversized entry remains; drop it.
                self.remove(victim);
                break;
            }
            self.remove(victim);
            self.evictions += 1;
            if let Some(journal) = self.journal.as_mut() {
                journal.push(victim);
            }
        }
    }

    fn alloc(&mut self, e: Entry<K>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = e;
            idx
        } else {
            self.slab.push(e);
            self.slab.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> u32 {
        i
    }

    #[test]
    fn insert_then_touch_hits() {
        let mut c = LruCache::new(1000);
        c.insert(t(1), 100);
        assert!(c.touch(t(1)));
        assert!(!c.touch(t(2)));
        assert_eq!(c.used(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = LruCache::new(300);
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(3), 100);
        // Touch 1 so 2 becomes LRU.
        assert!(c.touch(t(1)));
        c.insert(t(4), 100); // must evict 2
        assert!(c.contains(t(1)));
        assert!(!c.contains(t(2)));
        assert!(c.contains(t(3)));
        assert!(c.contains(t(4)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn never_exceeds_budget() {
        let mut c = LruCache::new(250);
        for i in 0..100 {
            c.insert(t(i), 40);
            assert!(c.used() <= 250, "used {} over budget", c.used());
        }
        assert_eq!(c.len(), 6); // 6 * 40 = 240 <= 250
    }

    #[test]
    fn oversized_target_is_not_cached() {
        let mut c = LruCache::new(100);
        c.insert(t(1), 50);
        c.insert(t(2), 500);
        assert!(!c.contains(t(2)));
        assert!(c.contains(t(1)), "oversized insert must not nuke the cache");
        assert_eq!(c.used(), 50);
    }

    #[test]
    fn reinsert_updates_size_and_recency() {
        let mut c = LruCache::new(300);
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(1), 150); // refresh + grow
        assert_eq!(c.used(), 250);
        c.insert(t(3), 100); // evicts t(2), the LRU
        assert!(!c.contains(t(2)));
        assert!(c.contains(t(1)));
    }

    #[test]
    fn remove_returns_presence() {
        let mut c = LruCache::new(300);
        c.insert(t(1), 100);
        assert!(c.remove(t(1)));
        assert!(!c.remove(t(1)));
        assert_eq!(c.used(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn slab_reuse_after_removals() {
        let mut c = LruCache::new(1_000);
        for round in 0..10 {
            for i in 0..10 {
                c.insert(t(round * 10 + i), 100);
            }
        }
        // Budget fits 10 entries; the slab must not have grown to 100.
        assert!(c.slab.len() <= 20, "slab leaked: {}", c.slab.len());
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn insert_reports_new_admissions_only() {
        let mut c = LruCache::new(300);
        assert!(c.insert(t(1), 100), "first insert is an admission");
        assert!(!c.insert(t(1), 100), "refresh is not an admission");
        assert!(
            !c.insert(t(2), 500),
            "rejected oversized is not an admission"
        );
        assert!(c.insert(t(3), 100));
    }

    #[test]
    fn journal_records_evictions_in_order() {
        let mut c = LruCache::new(300);
        // Journal off by default: evictions are not recorded.
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(3), 100);
        c.insert(t(4), 200); // evicts 1 and 2
        assert_eq!(c.evictions(), 2);
        assert!(c.drain_evictions().is_empty());

        c.set_journal(true);
        c.insert(t(5), 100); // 100+200+100 > 300: evicts 3 (the LRU)
        c.insert(t(6), 200); // 200+100+200 > 300: evicts 4
        assert_eq!(
            c.drain_evictions(),
            vec![t(3), t(4)],
            "victims in eviction order"
        );
        assert!(c.drain_evictions().is_empty(), "drain empties the journal");

        // Explicit removes are the owner's own action: not journalled.
        assert!(c.remove(t(6)));
        assert!(c.drain_evictions().is_empty());
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut c = LruCache::new(0);
        c.insert(t(1), 1);
        assert!(c.is_empty());
        assert!(!c.touch(t(1)));
    }
}
