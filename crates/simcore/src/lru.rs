//! Byte-budget LRU cache modeling a node's main-memory file cache.
//!
//! The paper's back-ends rely on FreeBSD's unified buffer cache; both the
//! simulator (`phttp-sim`) and the live prototype (`phttp-proto`) model it
//! as a strict LRU over whole entries with a byte budget. Entries are whole
//! documents — the workload is static files, which the OS caches in full.
//!
//! Implementation: hash map + intrusive doubly-linked list over a slab, so
//! `touch`/`insert`/evict are O(1) and the structure handles millions of
//! operations per run.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

/// How many entries from the LRU tail the MAD policy examines per
/// eviction. Small and constant: recency still dominates (only cold-ish
/// entries are candidates), the scan is O(1), and the choice is
/// deterministic.
pub const MAD_CANDIDATES: usize = 8;

/// Victim-selection policy for [`LruCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictPolicy {
    /// Strict LRU: always evict the tail (least recently used) entry.
    #[default]
    Lru,
    /// LRU-MAD ("miss aggregate delay", after *Caching with Delayed Hits*,
    /// SIGCOMM 2020): examine the [`MAD_CANDIDATES`] least-recently-used
    /// entries and evict the one whose estimated next miss costs the least
    /// aggregate delay *per cached byte*. The per-entry cost estimate is an
    /// EWMA of the aggregate miss delay observed when the entry was last
    /// fetched (leader fetch latency plus every coalesced waiter's wait),
    /// fed in via [`LruCache::insert_with_delay`]. Recency still gates the
    /// candidate set, so the policy degrades to LRU when delays are uniform.
    LruMad,
}

#[derive(Debug, Clone)]
struct Entry<K, V> {
    target: K,
    size: u64,
    /// EWMA of observed aggregate miss delay (µs) for this entry; 0 until
    /// a delay sample is provided. Only consulted by [`EvictPolicy::LruMad`].
    score: u64,
    /// The cached payload, if the owner caches one (see
    /// [`LruCache::insert_valued`]). Metadata-only entries — the
    /// simulator's, and any admitted through the plain
    /// [`LruCache::insert`] — carry `None`.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A strict-LRU cache of keyed entries with a byte budget.
///
/// Generic over an optional per-entry payload `V` (default `()` — the
/// simulator and the dispatcher's mirrors track metadata only). The
/// prototype's nodes instantiate `V = bytes::Bytes` so the cache is the
/// sole long-term owner of each cached body slice: a hit hands out an
/// O(1) refcounted clone instead of regenerating a fresh copy, and an
/// eviction drops the last owner.
#[derive(Debug, Clone)]
pub struct LruCache<K, V = ()> {
    budget: u64,
    used: u64,
    policy: EvictPolicy,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    evictions: u64,
    /// When enabled, every victim of budget pressure is appended here for
    /// the owner to drain — the raw material of cache-coherence feedback
    /// reports. Disabled by default so unconsumed journals cannot grow.
    journal: Option<Vec<K>>,
}

impl<K: Copy + Eq + Hash, V> LruCache<K, V> {
    /// Creates a cache holding at most `budget_bytes` of content.
    pub fn new(budget_bytes: u64) -> Self {
        LruCache {
            budget: budget_bytes,
            used: 0,
            policy: EvictPolicy::Lru,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
            journal: None,
        }
    }

    /// Selects the victim-selection policy. Switching policy never touches
    /// cache contents — it only changes which entry future budget pressure
    /// evicts — so the eviction journal (and any [`drain_evictions`]
    /// consumer replaying it) stays exact under either policy.
    ///
    /// [`drain_evictions`]: Self::drain_evictions
    pub fn set_policy(&mut self, policy: EvictPolicy) {
        self.policy = policy;
    }

    /// Returns the active victim-selection policy.
    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    /// Turns the eviction journal on or off. While on, every entry
    /// evicted by budget pressure is recorded (in eviction order) until
    /// [`drain_evictions`](Self::drain_evictions) collects it. Explicit
    /// [`remove`](Self::remove) calls and rejected oversized inserts are
    /// *not* journalled — they are the owner's own actions, not silent
    /// evictions the owner needs telling about. Turning the journal off
    /// discards any undrained entries.
    pub fn set_journal(&mut self, enabled: bool) {
        self.journal = enabled.then(Vec::new);
    }

    /// Takes the journalled evictions accumulated since the last drain
    /// (empty if the journal is disabled).
    pub fn drain_evictions(&mut self) -> Vec<K> {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Returns the byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Returns the bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Returns the number of cached targets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns `true` if the target is cached, and if so marks it most
    /// recently used (a cache hit).
    pub fn touch(&mut self, target: K) -> bool {
        if let Some(&idx) = self.map.get(&target) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Like [`touch`](Self::touch), but also returns a borrow of the
    /// entry's cached payload (a hit on a valued cache). `None` when
    /// the target is absent **or** cached metadata-only; either way
    /// recency is updated iff the target is present.
    pub fn touch_value(&mut self, target: K) -> Option<&V> {
        let &idx = self.map.get(&target)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx].value.as_ref()
    }

    /// The entry's cached payload without updating recency.
    pub fn get(&self, target: K) -> Option<&V> {
        self.map
            .get(&target)
            .and_then(|&idx| self.slab[idx].value.as_ref())
    }

    /// Every cached `(target, payload)` pair, in no particular order,
    /// skipping metadata-only entries. O(len) — diagnostics and the
    /// refcount-hygiene audit, not the serve path.
    pub fn iter_values(&self) -> impl Iterator<Item = (K, &V)> {
        self.map.values().filter_map(|&idx| {
            let e = &self.slab[idx];
            e.value.as_ref().map(|v| (e.target, v))
        })
    }

    /// Returns `true` if the target is cached without updating recency.
    pub fn contains(&self, target: K) -> bool {
        self.map.contains_key(&target)
    }

    /// Inserts a target of the given size, evicting LRU entries as needed.
    /// Returns `true` iff the target was **newly admitted** — absent
    /// before the call and cached after it. Refreshing an existing entry
    /// and rejecting an oversized one both return `false`.
    ///
    /// A target larger than the whole budget is not cached at all (the OS
    /// cannot hold it resident either). Re-inserting an existing target
    /// refreshes its recency and updates its size.
    pub fn insert(&mut self, target: K, size: u64) -> bool {
        self.insert_inner(target, size, None, None)
    }

    /// [`insert`](Self::insert) carrying the cached payload itself —
    /// the zero-copy serve path's entry point: the cache becomes the
    /// long-term owner of the body slice, and hits clone the refcount
    /// instead of the bytes. Refreshing an existing entry replaces its
    /// payload (same target ⇒ same content; the old slice drops).
    pub fn insert_valued(&mut self, target: K, size: u64, value: V) -> bool {
        self.insert_inner(target, size, None, Some(value))
    }

    /// [`insert_valued`](Self::insert_valued) plus a miss-delay
    /// observation (see [`insert_with_delay`](Self::insert_with_delay)).
    pub fn insert_valued_with_delay(
        &mut self,
        target: K,
        size: u64,
        value: V,
        agg_delay_us: u64,
    ) -> bool {
        self.insert_inner(target, size, Some(agg_delay_us), Some(value))
    }

    /// [`insert`](Self::insert) plus a miss-delay observation: `agg_delay_us`
    /// is the aggregate delay (µs) the miss that produced this insert cost —
    /// the fetch latency itself plus the wait of every coalesced request
    /// parked on the same in-flight fetch. The entry's MAD score becomes an
    /// EWMA of these samples (`new = (old + sample) / 2` on refresh), which
    /// [`EvictPolicy::LruMad`] uses to rank eviction victims. Under
    /// [`EvictPolicy::Lru`] the sample is recorded but never consulted, so
    /// the two entry points behave identically.
    pub fn insert_with_delay(&mut self, target: K, size: u64, agg_delay_us: u64) -> bool {
        self.insert_inner(target, size, Some(agg_delay_us), None)
    }

    fn insert_inner(
        &mut self,
        target: K,
        size: u64,
        delay_us: Option<u64>,
        value: Option<V>,
    ) -> bool {
        if let Some(&idx) = self.map.get(&target) {
            // Size update (static content rarely changes, but stay safe).
            let old = self.slab[idx].size;
            self.used = self.used - old + size;
            self.slab[idx].size = size;
            if let Some(sample) = delay_us {
                let old_score = self.slab[idx].score;
                self.slab[idx].score = (old_score + sample) / 2;
            }
            if value.is_some() {
                // A metadata-only refresh keeps whatever payload the
                // entry already owns; a valued refresh replaces it.
                self.slab[idx].value = value;
            }
            self.unlink(idx);
            self.push_front(idx);
            self.shrink_to_budget(Some(target));
            return false;
        }
        if size > self.budget {
            return false;
        }
        self.used += size;
        let idx = self.alloc(Entry {
            target,
            size,
            score: delay_us.unwrap_or(0),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(target, idx);
        self.push_front(idx);
        self.shrink_to_budget(Some(target));
        self.map.contains_key(&target)
    }

    /// The entry's current MAD score (EWMA aggregate miss delay, µs), if
    /// cached. Diagnostic / test hook.
    pub fn mad_score(&self, target: K) -> Option<u64> {
        self.map.get(&target).map(|&idx| self.slab[idx].score)
    }

    /// The cached entries as `(target, size)` pairs in **admission
    /// order** (least recently used first, most recently used last).
    /// Replaying these through `insert` rebuilds an identical cache —
    /// the snapshot a warm-rejoining node sends in its `Join` handshake
    /// so front-ends can rebuild beliefs without re-learning. O(len);
    /// join granularity, not hot path.
    pub fn contents_lru_order(&self) -> Vec<(K, u64)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            let e = &self.slab[idx];
            out.push((e.target, e.size));
            idx = e.prev;
        }
        out
    }

    /// Empties the cache — a node restarting with cold memory — while
    /// preserving its configuration (budget, policy, journal enablement).
    /// The wipe is the owner's own action, so nothing is journalled and
    /// any undrained journal entries are discarded with the contents
    /// they describe.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
        if let Some(j) = self.journal.as_mut() {
            j.clear();
        }
    }

    /// Removes a target if present; returns whether it was cached.
    pub fn remove(&mut self, target: K) -> bool {
        if let Some(idx) = self.map.remove(&target) {
            self.used -= self.slab[idx].size;
            self.unlink(idx);
            // Drop the payload now, not when the slot is next reused —
            // an evicted body slice must release its refcount with the
            // eviction (the refcount-hygiene invariant).
            self.slab[idx].value = None;
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// Evicts entries until within budget, never evicting `keep` (the entry
    /// just inserted) unless it is the only entry left. The victim each
    /// round is chosen by the active [`EvictPolicy`]; victims are counted
    /// and journalled in eviction order regardless of policy, so journal
    /// replay (the cache-feedback mirror) stays exact.
    fn shrink_to_budget(&mut self, keep: Option<K>) {
        while self.used > self.budget {
            debug_assert_ne!(self.tail, NIL, "over budget with empty cache");
            let victim = match self.policy {
                EvictPolicy::Lru => self.slab[self.tail].target,
                EvictPolicy::LruMad => self.pick_mad_victim(keep),
            };
            if Some(victim) == keep {
                // Only the just-inserted oversized entry remains; drop it.
                self.remove(victim);
                break;
            }
            self.remove(victim);
            self.evictions += 1;
            if let Some(journal) = self.journal.as_mut() {
                journal.push(victim);
            }
        }
    }

    /// LRU-MAD victim choice: among the [`MAD_CANDIDATES`] tail-most
    /// entries (excluding `keep`), the one with the smallest estimated
    /// aggregate miss delay per cached byte — evicting it frees the most
    /// bytes per unit of future delay re-incurred. Ties keep the earliest
    /// (most LRU) candidate, so uniform scores degrade to strict LRU.
    /// Returns `keep` itself only when it is the sole entry.
    fn pick_mad_victim(&self, keep: Option<K>) -> K {
        let mut best: Option<usize> = None;
        let mut idx = self.tail;
        let mut seen = 0;
        while idx != NIL && seen < MAD_CANDIDATES {
            let e = &self.slab[idx];
            if Some(e.target) != keep {
                let better = match best {
                    None => true,
                    Some(b) => {
                        // score/size comparison without division:
                        // e wins iff score_e * size_b < score_b * size_e.
                        (e.score as u128) * (self.slab[b].size as u128)
                            < (self.slab[b].score as u128) * (e.size as u128)
                    }
                };
                if better {
                    best = Some(idx);
                }
            }
            seen += 1;
            idx = e.prev;
        }
        match best {
            Some(i) => self.slab[i].target,
            // Every candidate was `keep`: it is the only entry left.
            None => self.slab[self.tail].target,
        }
    }

    fn alloc(&mut self, e: Entry<K, V>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = e;
            idx
        } else {
            self.slab.push(e);
            self.slab.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> u32 {
        i
    }

    #[test]
    fn insert_then_touch_hits() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(t(1), 100);
        assert!(c.touch(t(1)));
        assert!(!c.touch(t(2)));
        assert_eq!(c.used(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(3), 100);
        // Touch 1 so 2 becomes LRU.
        assert!(c.touch(t(1)));
        c.insert(t(4), 100); // must evict 2
        assert!(c.contains(t(1)));
        assert!(!c.contains(t(2)));
        assert!(c.contains(t(3)));
        assert!(c.contains(t(4)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn never_exceeds_budget() {
        let mut c: LruCache<u32> = LruCache::new(250);
        for i in 0..100 {
            c.insert(t(i), 40);
            assert!(c.used() <= 250, "used {} over budget", c.used());
        }
        assert_eq!(c.len(), 6); // 6 * 40 = 240 <= 250
    }

    #[test]
    fn oversized_target_is_not_cached() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.insert(t(1), 50);
        c.insert(t(2), 500);
        assert!(!c.contains(t(2)));
        assert!(c.contains(t(1)), "oversized insert must not nuke the cache");
        assert_eq!(c.used(), 50);
    }

    #[test]
    fn reinsert_updates_size_and_recency() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(1), 150); // refresh + grow
        assert_eq!(c.used(), 250);
        c.insert(t(3), 100); // evicts t(2), the LRU
        assert!(!c.contains(t(2)));
        assert!(c.contains(t(1)));
    }

    #[test]
    fn remove_returns_presence() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.insert(t(1), 100);
        assert!(c.remove(t(1)));
        assert!(!c.remove(t(1)));
        assert_eq!(c.used(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn slab_reuse_after_removals() {
        let mut c: LruCache<u32> = LruCache::new(1_000);
        for round in 0..10 {
            for i in 0..10 {
                c.insert(t(round * 10 + i), 100);
            }
        }
        // Budget fits 10 entries; the slab must not have grown to 100.
        assert!(c.slab.len() <= 20, "slab leaked: {}", c.slab.len());
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn insert_reports_new_admissions_only() {
        let mut c: LruCache<u32> = LruCache::new(300);
        assert!(c.insert(t(1), 100), "first insert is an admission");
        assert!(!c.insert(t(1), 100), "refresh is not an admission");
        assert!(
            !c.insert(t(2), 500),
            "rejected oversized is not an admission"
        );
        assert!(c.insert(t(3), 100));
    }

    #[test]
    fn journal_records_evictions_in_order() {
        let mut c: LruCache<u32> = LruCache::new(300);
        // Journal off by default: evictions are not recorded.
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(3), 100);
        c.insert(t(4), 200); // evicts 1 and 2
        assert_eq!(c.evictions(), 2);
        assert!(c.drain_evictions().is_empty());

        c.set_journal(true);
        c.insert(t(5), 100); // 100+200+100 > 300: evicts 3 (the LRU)
        c.insert(t(6), 200); // 200+100+200 > 300: evicts 4
        assert_eq!(
            c.drain_evictions(),
            vec![t(3), t(4)],
            "victims in eviction order"
        );
        assert!(c.drain_evictions().is_empty(), "drain empties the journal");

        // Explicit removes are the owner's own action: not journalled.
        assert!(c.remove(t(6)));
        assert!(c.drain_evictions().is_empty());
    }

    #[test]
    fn contents_enumerate_lru_to_mru_and_replay_identically() {
        let mut c: LruCache<u32> = LruCache::new(400);
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(3), 100);
        assert!(c.touch(t(1))); // recency now 2, 3, 1
        assert_eq!(
            c.contents_lru_order(),
            vec![(t(2), 100), (t(3), 100), (t(1), 100)]
        );
        // Replaying the snapshot into a fresh cache reproduces contents
        // AND recency: the same subsequent insert evicts the same victim.
        let mut replayed: LruCache<u32> = LruCache::new(400);
        for (k, size) in c.contents_lru_order() {
            replayed.insert(k, size);
        }
        for fresh in [&mut c, &mut replayed] {
            fresh.insert(t(4), 200); // over budget: evicts the LRU, t(2)
            assert!(!fresh.contains(t(2)));
            assert!(fresh.contains(t(1)));
            assert!(fresh.contains(t(3)));
        }
        assert!(LruCache::<u32>::new(10).contents_lru_order().is_empty());
    }

    #[test]
    fn clear_wipes_contents_but_keeps_configuration() {
        let mut c: LruCache<u32> = LruCache::new(250);
        c.set_policy(EvictPolicy::LruMad);
        c.set_journal(true);
        c.insert(t(1), 100);
        c.insert(t(2), 100);
        c.insert(t(3), 100); // evicts t(1) into the journal
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
        assert_eq!(c.budget(), 250);
        assert_eq!(c.policy(), EvictPolicy::LruMad);
        assert!(c.contents_lru_order().is_empty());
        assert!(
            c.drain_evictions().is_empty(),
            "a wipe discards undrained journal entries"
        );
        // Still fully usable, journal included.
        c.insert(t(4), 200);
        c.insert(t(5), 100); // evicts t(4)
        assert_eq!(c.drain_evictions(), vec![t(4)]);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let mut c: LruCache<u32> = LruCache::new(0);
        c.insert(t(1), 1);
        assert!(c.is_empty());
        assert!(!c.touch(t(1)));
    }

    #[test]
    fn mad_evicts_cheapest_delay_per_byte() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.set_policy(EvictPolicy::LruMad);
        // Same size, different miss cost: the cheap entry goes first even
        // though the expensive one is older (more LRU).
        c.insert_with_delay(t(1), 100, 50_000); // expensive to re-fetch
        c.insert_with_delay(t(2), 100, 1_000); // cheap to re-fetch
        c.insert_with_delay(t(3), 100, 20_000);
        c.insert_with_delay(t(4), 100, 20_000); // forces one eviction
        assert!(!c.contains(t(2)), "cheapest-delay entry must be the victim");
        assert!(c.contains(t(1)), "high-delay entry survives despite age");
        assert!(c.contains(t(3)));
        assert!(c.contains(t(4)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn mad_uniform_scores_degrade_to_lru() {
        let mut lru: LruCache<u32> = LruCache::new(300);
        let mut mad: LruCache<u32> = LruCache::new(300);
        mad.set_policy(EvictPolicy::LruMad);
        for c in [&mut lru, &mut mad] {
            c.insert_with_delay(t(1), 100, 10_000);
            c.insert_with_delay(t(2), 100, 10_000);
            c.insert_with_delay(t(3), 100, 10_000);
            assert!(c.touch(t(1)));
            c.insert_with_delay(t(4), 100, 10_000);
        }
        for i in 1..=4 {
            assert_eq!(
                lru.contains(t(i)),
                mad.contains(t(i)),
                "uniform-score MAD must match LRU on t({i})"
            );
        }
        assert!(!mad.contains(t(2)), "t(2) is the LRU victim in both");
    }

    #[test]
    fn mad_normalizes_by_size() {
        let mut c: LruCache<u32> = LruCache::new(1_000);
        c.set_policy(EvictPolicy::LruMad);
        // The large entry costs more in absolute delay but much less per
        // byte — evicting it frees the most space per unit of future delay.
        c.insert_with_delay(t(1), 800, 20_000); // 25 µs/byte
        c.insert_with_delay(t(2), 100, 10_000); // 100 µs/byte
        c.insert_with_delay(t(3), 500, 15_000); // forces eviction
        assert!(!c.contains(t(1)), "large low-density entry is the victim");
        assert!(c.contains(t(2)));
        assert!(c.contains(t(3)));
    }

    #[test]
    fn mad_score_is_ewma_and_candidates_respect_recency() {
        let mut c: LruCache<u32> = LruCache::new(10_000);
        c.set_policy(EvictPolicy::LruMad);
        assert!(c.insert_with_delay(t(1), 100, 8_000));
        assert_eq!(c.mad_score(t(1)), Some(8_000));
        assert!(!c.insert_with_delay(t(1), 100, 2_000), "refresh");
        assert_eq!(c.mad_score(t(1)), Some(5_000), "(8000 + 2000) / 2");
        // Plain insert keeps the learned score on refresh.
        c.insert(t(1), 100);
        assert_eq!(c.mad_score(t(1)), Some(5_000));
        assert_eq!(c.mad_score(t(9)), None);

        // An entry outside the MAD candidate window is safe no matter how
        // cheap: only the MAD_CANDIDATES tail entries are examined.
        let mut c: LruCache<u32> = LruCache::new((MAD_CANDIDATES as u64 + 1) * 100);
        c.set_policy(EvictPolicy::LruMad);
        c.insert_with_delay(t(0), 100, 0); // cheapest, but will be MRU-side
        for i in 1..=MAD_CANDIDATES as u32 {
            c.insert_with_delay(t(i), 100, 50_000);
        }
        assert!(c.touch(t(0))); // move the cheap entry to the head
        c.insert_with_delay(t(99), 100, 50_000); // forces one eviction
        assert!(
            c.contains(t(0)),
            "entry outside the tail window must not be chosen"
        );
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn mad_oversized_keep_semantics_match_lru() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.set_policy(EvictPolicy::LruMad);
        c.insert_with_delay(t(1), 60, 1_000);
        // Refresh-grow beyond budget: the grown entry itself is dropped
        // once it is the only one left, exactly like strict LRU.
        c.insert_with_delay(t(1), 150, 1_000);
        assert!(!c.contains(t(1)));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn valued_entries_hand_out_payloads_and_drop_on_eviction() {
        use std::rc::Rc;
        let mut c: LruCache<u32, Rc<Vec<u8>>> = LruCache::new(300);
        let body = Rc::new(vec![7u8; 100]);
        assert!(c.insert_valued(t(1), 100, body.clone()));
        assert_eq!(Rc::strong_count(&body), 2, "cache holds one owner");
        // A hit is a refcount clone of the cached payload, not a copy.
        let hit = c.touch_value(t(1)).expect("valued hit").clone();
        assert!(Rc::ptr_eq(&hit, &body));
        drop(hit);
        // get() reads without recency; metadata-only entries read None.
        assert!(c.get(t(1)).is_some());
        c.insert(t(2), 100);
        assert!(c.get(t(2)).is_none(), "plain insert carries no payload");
        assert!(c.touch_value(t(2)).is_none());
        assert!(c.touch(t(2)), "metadata-only entry still hits");
        // iter_values enumerates only valued entries.
        assert_eq!(c.iter_values().count(), 1);
        // Eviction releases the cache's ownership immediately.
        c.insert_valued(t(3), 150, Rc::new(vec![0u8; 150]));
        c.insert_valued(t(4), 100, Rc::new(vec![0u8; 100])); // evicts t(1)
        assert!(!c.contains(t(1)));
        assert_eq!(Rc::strong_count(&body), 1, "eviction dropped the payload");
        // Explicit remove too.
        let b3 = c.get(t(3)).unwrap().clone();
        assert_eq!(Rc::strong_count(&b3), 2);
        assert!(c.remove(t(3)));
        assert_eq!(Rc::strong_count(&b3), 1, "remove dropped the payload");
    }

    #[test]
    fn valued_refresh_replaces_but_metadata_refresh_keeps() {
        use std::rc::Rc;
        let mut c: LruCache<u32, Rc<u32>> = LruCache::new(1000);
        let v1 = Rc::new(11);
        c.insert_valued(t(1), 100, v1.clone());
        // Metadata-only refresh (the feedback path) keeps the payload.
        c.insert(t(1), 100);
        assert!(Rc::ptr_eq(c.get(t(1)).unwrap(), &v1));
        // Valued refresh replaces it and drops the old owner.
        c.insert_valued_with_delay(t(1), 100, Rc::new(22), 5_000);
        assert_eq!(Rc::strong_count(&v1), 1);
        assert_eq!(**c.get(t(1)).unwrap(), 22);
        assert_eq!(c.mad_score(t(1)), Some(2_500), "(0 + 5000) / 2");
        // clear() drops every payload with the contents.
        let v2 = c.get(t(1)).unwrap().clone();
        c.clear();
        assert_eq!(Rc::strong_count(&v2), 1);
    }

    #[test]
    fn mad_journals_victims_in_eviction_order() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.set_policy(EvictPolicy::LruMad);
        c.set_journal(true);
        c.insert_with_delay(t(1), 100, 30_000);
        c.insert_with_delay(t(2), 100, 1_000);
        c.insert_with_delay(t(3), 100, 2_000);
        c.insert_with_delay(t(4), 200, 40_000); // evicts 2 then 3 (cheapest)
        assert_eq!(c.drain_evictions(), vec![t(2), t(3)]);
        assert!(c.contains(t(1)));
        assert!(c.contains(t(4)));
    }
}
