//! Random-variate samplers used by the synthetic workload generator.
//!
//! Only the distributions the reproduction actually needs are implemented:
//! Zipf (target popularity), log-normal body with a Pareto tail (response
//! sizes — the standard web-workload model from Arlitt & Williamson and
//! SURGE), and exponential (inter-arrival gaps). All samplers draw from a
//! caller-supplied [`rand::Rng`] so every consumer stays deterministic under
//! a fixed seed.

use rand::Rng;

/// Zipf-distributed ranks over `1..=n` with exponent `s`.
///
/// Sampling uses a precomputed cumulative table and binary search: O(n) memory
/// once, O(log n) per sample, exact for any `s >= 0`. Web-server popularity is
/// classically Zipf-like with `s ≈ 1` (Arlitt & Williamson, SIGMETRICS '96 —
/// cited by the paper as reference \[3\]).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Returns the number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there is exactly one rank (degenerate distribution).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0-based; rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Returns the probability mass of 0-based rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Samples a standard normal variate via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sampler parameterized by the mean/σ of the underlying normal.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal (of ln X).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a sampler; `sigma` must be non-negative and finite.
    ///
    /// # Panics
    ///
    /// Panics on non-finite parameters or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Samples one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Returns the distribution mean `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Pareto sampler (`x >= scale`, shape `alpha`), for heavy response-size tails.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Minimum value (scale parameter).
    pub scale: f64,
    /// Tail index; smaller is heavier. Web file sizes: `alpha ≈ 1.1-1.5`.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `alpha > 0`.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite());
        assert!(alpha > 0.0 && alpha.is_finite());
        Pareto { scale, alpha }
    }

    /// Samples one variate by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
        self.scale / u.powf(1.0 / self.alpha)
    }
}

/// Exponential sampler with the given mean, for inter-arrival gaps.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    /// Mean of the distribution (1/λ).
    pub mean: f64,
}

impl Exp {
    /// Creates a sampler with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite());
        Exp { mean }
    }

    /// Samples one variate by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.9);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(50), 0.0);
        assert_eq!(z.len(), 50);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn lognormal_mean_close_to_analytic() {
        let d = LogNormal::new(8.0, 1.0);
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let emp = sum / n as f64;
        let want = d.mean();
        assert!(
            (emp - want).abs() / want < 0.05,
            "empirical {emp} vs analytic {want}"
        );
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(1024.0, 1.3);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1024.0);
        }
    }

    #[test]
    fn exp_mean_close_to_analytic() {
        let d = Exp::new(250.0);
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let emp = sum / n as f64;
        assert!((emp - 250.0).abs() / 250.0 < 0.03, "mean {emp}");
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut r = rng();
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = rng();
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
