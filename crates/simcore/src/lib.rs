//! Discrete-event simulation engine for the P-HTTP cluster reproduction.
//!
//! This crate is the bottom-most substrate of the workspace: integer
//! microsecond virtual time, a future-event list with FIFO tie-breaking,
//! analytic FIFO single-server resources (the CPUs and disks of the cluster
//! model), the random-variate samplers the synthetic workload needs, and
//! streaming statistics. It knows nothing about HTTP or clusters;
//! `phttp-sim` builds the paper's simulator on top of it.
//!
//! Everything is deterministic: given the same seed and inputs, a simulation
//! produces bit-identical outputs on every platform, which the integration
//! tests assert.
//!
//! # Examples
//!
//! A tiny M/D/1-style queue driven by the engine:
//!
//! ```
//! use phttp_simcore::{EventQueue, FifoResource, SimDuration, SimTime};
//!
//! let mut events = EventQueue::new();
//! let mut server = FifoResource::new();
//! // Three jobs arrive at t = 0us, 50us, 60us; each needs 100us of service.
//! for t in [0u64, 50, 60] {
//!     events.push(SimTime::from_micros(t), ());
//! }
//! let mut completions = Vec::new();
//! while let Some((now, ())) = events.pop() {
//!     completions.push(server.schedule(now, SimDuration::from_micros(100)));
//! }
//! assert_eq!(
//!     completions,
//!     vec![
//!         SimTime::from_micros(100),
//!         SimTime::from_micros(200),
//!         SimTime::from_micros(300),
//!     ]
//! );
//! ```

pub mod dist;
pub mod lru;
pub mod queue;
pub mod resource;
pub mod stats;
pub mod time;

pub use dist::{Exp, LogNormal, Pareto, Zipf};
pub use lru::{EvictPolicy, LruCache};
pub use queue::EventQueue;
pub use resource::FifoResource;
pub use stats::{Accumulator, Histogram, TimeWeighted};
pub use time::{SimDuration, SimTime};
