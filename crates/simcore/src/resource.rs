//! FIFO single-server resources (CPU, disk).
//!
//! The cluster model in the paper charges every processing step to either a
//! back-end's CPU, its disk, or the front-end's CPU, each of which serves one
//! job at a time in arrival order. [`FifoResource`] computes completion times
//! analytically (no per-slice events needed) while still exposing the two
//! observables the policies and metrics need:
//!
//! * the **queue depth** at a given instant — extended LARD's disk-utilization
//!   heuristic is defined as "fewer than k queued disk events";
//! * the **cumulative busy time** — utilization reporting (the paper quotes
//!   front-end CPU utilization to argue one front-end scales to ~10 back-ends).

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A work-conserving single server with a FIFO queue.
///
/// Jobs are submitted with [`FifoResource::schedule`], which returns the
/// completion time: `max(now, previous completion) + demand`.
///
/// # Examples
///
/// ```
/// use phttp_simcore::{FifoResource, SimDuration, SimTime};
///
/// let mut cpu = FifoResource::new();
/// let t0 = SimTime::ZERO;
/// let d = SimDuration::from_micros(100);
/// let c1 = cpu.schedule(t0, d);
/// let c2 = cpu.schedule(t0, d); // queues behind the first job
/// assert_eq!(c1, SimTime::from_micros(100));
/// assert_eq!(c2, SimTime::from_micros(200));
/// assert_eq!(cpu.queue_len(SimTime::from_micros(50)), 2);
/// assert_eq!(cpu.queue_len(SimTime::from_micros(150)), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoResource {
    /// Completion times of jobs not yet known to have finished, non-decreasing.
    completions: VecDeque<SimTime>,
    /// Instant the server becomes free (equals the last completion time).
    free_at: SimTime,
    /// Total service time ever scheduled.
    busy: SimDuration,
    /// Number of jobs ever scheduled.
    jobs: u64,
}

impl FifoResource {
    /// Creates an idle resource at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a job of length `demand` at time `now`; returns its completion time.
    ///
    /// Monotonicity of `now` across calls is *not* required: a job submitted
    /// with an earlier `now` than a previous call still queues behind all
    /// previously scheduled work, which is exactly the behaviour of a real
    /// FIFO device fed by an event loop that processes events in time order.
    pub fn schedule(&mut self, now: SimTime, demand: SimDuration) -> SimTime {
        let start = self.free_at.max(now);
        let done = start + demand;
        self.free_at = done;
        self.busy += demand;
        self.jobs += 1;
        self.completions.push_back(done);
        done
    }

    /// Returns the number of jobs still queued or in service at `now`.
    ///
    /// This is the paper's "queued disk events" observable. Jobs whose
    /// completion time is `<= now` are retired from the internal deque.
    pub fn queue_len(&mut self, now: SimTime) -> usize {
        while let Some(&front) = self.completions.front() {
            if front <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
        self.completions.len()
    }

    /// Returns the instant the server becomes free of all queued work.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Returns `true` if the server has no work at `now`.
    pub fn is_idle(&mut self, now: SimTime) -> bool {
        self.queue_len(now) == 0
    }

    /// Returns the total service time scheduled so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Returns the number of jobs scheduled so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Returns utilization over `[SimTime::ZERO, horizon]`.
    ///
    /// If scheduled work extends past `horizon`, the excess is excluded, so
    /// the result is always in `[0, 1]` for a resource that started idle.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy = self.busy.as_micros() as f64;
        let over = self.free_at.as_micros().saturating_sub(horizon.as_micros()) as f64;
        ((busy - over).max(0.0) / horizon.as_micros() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn dur(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = FifoResource::new();
        assert_eq!(r.schedule(us(1000), dur(50)), us(1050));
    }

    #[test]
    fn busy_server_queues() {
        let mut r = FifoResource::new();
        r.schedule(us(0), dur(100));
        assert_eq!(r.schedule(us(10), dur(100)), us(200));
        assert_eq!(r.schedule(us(20), dur(100)), us(300));
    }

    #[test]
    fn gap_leaves_server_idle() {
        let mut r = FifoResource::new();
        r.schedule(us(0), dur(10));
        // Arrives long after the first job finished: starts at its own `now`.
        assert_eq!(r.schedule(us(1000), dur(10)), us(1010));
        // The idle gap does not count as busy time.
        assert_eq!(r.busy_time(), dur(20));
    }

    #[test]
    fn queue_len_retires_completed_jobs() {
        let mut r = FifoResource::new();
        r.schedule(us(0), dur(100)); // completes at 100
        r.schedule(us(0), dur(100)); // completes at 200
        r.schedule(us(0), dur(100)); // completes at 300
        assert_eq!(r.queue_len(us(0)), 3);
        assert_eq!(r.queue_len(us(100)), 2);
        assert_eq!(r.queue_len(us(250)), 1);
        assert_eq!(r.queue_len(us(300)), 0);
        assert!(r.is_idle(us(301)));
    }

    #[test]
    fn utilization_bounds() {
        let mut r = FifoResource::new();
        r.schedule(us(0), dur(500));
        assert!((r.utilization(us(1000)) - 0.5).abs() < 1e-9);
        // Work scheduled past the horizon is clipped.
        r.schedule(us(900), dur(500));
        let u = r.utilization(us(1000));
        assert!(u <= 1.0 && u > 0.5, "u = {u}");
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn zero_demand_job_completes_instantly() {
        let mut r = FifoResource::new();
        assert_eq!(r.schedule(us(42), SimDuration::ZERO), us(42));
        assert_eq!(r.queue_len(us(42)), 0);
        assert_eq!(r.jobs(), 1);
    }
}
