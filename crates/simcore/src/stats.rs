//! Streaming statistics for simulation outputs.

use std::fmt;

use crate::time::SimTime;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use phttp_simcore::Accumulator;
///
/// let mut a = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     a.add(x);
/// }
/// assert_eq!(a.count(), 3);
/// assert!((a.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// Time-weighted average of a step function (e.g. queue length, load).
///
/// Call [`TimeWeighted::update`] with each change point; the value is assumed
/// to hold from the previous update until the new one.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            weighted_sum: 0.0,
            start: t0,
            peak: v0,
        }
    }

    /// Records that the tracked quantity changed to `v` at time `t`.
    ///
    /// Out-of-order updates (t earlier than the last change) are clamped to
    /// the last change point, contributing zero weight.
    pub fn update(&mut self, t: SimTime, v: f64) {
        let t = t.max(self.last_t);
        let dt = t.duration_since(self.last_t).as_micros() as f64;
        self.weighted_sum += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Returns the time-weighted mean over `[t0, t]`.
    pub fn mean_until(&self, t: SimTime) -> f64 {
        let t = t.max(self.last_t);
        let total = t.duration_since(self.start).as_micros() as f64;
        if total == 0.0 {
            return self.last_v;
        }
        let tail = t.duration_since(self.last_t).as_micros() as f64;
        (self.weighted_sum + self.last_v * tail) / total
    }

    /// Returns the largest value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Returns the current value.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// Fixed-boundary histogram over `f64` observations, with overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bucket bounds.
    ///
    /// An observation `x` lands in the first bucket whose bound is `>= x`;
    /// values above every bound land in a final overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// Creates 2^k-spaced bounds from `lo` doubling up to at least `hi`.
    pub fn exponential(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo);
        let mut bounds = vec![lo];
        let mut b = lo;
        while b < hi {
            b *= 2.0;
            bounds.push(b);
        }
        Histogram::new(bounds)
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        let i = self.bounds.partition_point(|&b| b < x);
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns `(upper_bound, count)` pairs; the last entry has bound `+inf`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Approximate quantile: upper bound of the bucket containing quantile `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (bound, count) in self.buckets() {
            acc += count;
            if acc >= target {
                return Some(bound);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.variance() - 4.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
        assert!((a.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn accumulator_empty_is_safe() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn time_weighted_step_function() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_micros(10), 4.0); // 0 for [0,10)
        tw.update(SimTime::from_micros(30), 2.0); // 4 for [10,30)
        let mean = tw.mean_until(SimTime::from_micros(40)); // 2 for [30,40)
                                                            // (0*10 + 4*20 + 2*10) / 40 = 100/40 = 2.5
        assert!((mean - 2.5).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn time_weighted_out_of_order_update_is_clamped() {
        let mut tw = TimeWeighted::new(SimTime::from_micros(100), 1.0);
        tw.update(SimTime::from_micros(50), 9.0); // clamped, zero weight
        let mean = tw.mean_until(SimTime::from_micros(200));
        // 1.0 held for zero time, then 9.0 for [100,200).
        assert!((mean - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucketing_and_quantiles() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 0.7, 5.0, 50.0, 5000.0] {
            h.add(x);
        }
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1);
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(Histogram::new(vec![1.0]).quantile(0.5), None);
    }

    #[test]
    fn histogram_exponential_covers_range() {
        let h = Histogram::exponential(1.0, 1000.0);
        let last = h.buckets().map(|(b, _)| b).fold(0.0, f64::max);
        assert!(last.is_infinite());
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![10.0, 1.0]);
    }
}
