//! Property-based tests for the simulation engine invariants.

use proptest::prelude::*;

use phttp_simcore::{EventQueue, FifoResource, SimDuration, SimTime, Zipf};

proptest! {
    /// Pop order is a non-decreasing total order over arbitrary pushes.
    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Events at identical times come out in insertion order (stability).
    #[test]
    fn event_queue_is_fifo_for_ties(groups in proptest::collection::vec((0u64..100, 1usize..8), 1..50)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for &(t, k) in &groups {
            for _ in 0..k {
                q.push(SimTime::from_micros(t), idx);
                idx += 1;
            }
        }
        // Group pops by time; within each time, payloads must be ascending
        // in insertion order *per original time bucket*.
        let mut per_time: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        while let Some((t, v)) = q.pop() {
            per_time.entry(t.as_micros()).or_default().push(v);
        }
        for vals in per_time.values() {
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            prop_assert_eq!(vals, &sorted);
        }
    }

    /// A FIFO server never completes a job before its submission, never
    /// reorders completions, and conserves total busy time.
    #[test]
    fn fifo_resource_invariants(jobs in proptest::collection::vec((0u64..10_000, 0u64..500), 1..100)) {
        let mut jobs = jobs;
        jobs.sort_by_key(|&(t, _)| t); // event loops submit in time order
        let mut r = FifoResource::new();
        let mut last_done = SimTime::ZERO;
        let mut total = 0u64;
        for &(t, d) in &jobs {
            let done = r.schedule(SimTime::from_micros(t), SimDuration::from_micros(d));
            prop_assert!(done >= SimTime::from_micros(t + d));
            prop_assert!(done >= last_done);
            last_done = done;
            total += d;
        }
        prop_assert_eq!(r.busy_time().as_micros(), total);
        prop_assert_eq!(r.jobs(), jobs.len() as u64);
        // After the last completion the queue must drain completely.
        prop_assert_eq!(r.queue_len(last_done), 0);
    }

    /// Utilization is always within [0, 1].
    #[test]
    fn utilization_bounded(jobs in proptest::collection::vec((0u64..1_000, 0u64..1_000), 0..50), horizon in 1u64..10_000) {
        let mut jobs = jobs;
        jobs.sort_by_key(|&(t, _)| t);
        let mut r = FifoResource::new();
        for &(t, d) in &jobs {
            r.schedule(SimTime::from_micros(t), SimDuration::from_micros(d));
        }
        let u = r.utilization(SimTime::from_micros(horizon));
        prop_assert!((0.0..=1.0).contains(&u), "utilization {} out of range", u);
    }

    /// Zipf sampling always returns a valid rank and pmf sums to one.
    #[test]
    fn zipf_sound(n in 1usize..500, s in 0.0f64..2.5, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }
}
