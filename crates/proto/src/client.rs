//! Event-driven client load generator — the prototype analogue of the
//! paper's client software: "an event-driven program that simulates multiple
//! HTTP clients", each making "requests as fast as the server cluster can
//! handle them" (closed loop, no think time).
//!
//! A pool of client threads plays the connections of a
//! [`ConnectionTrace`]: P-HTTP mode sends each pipelined batch in one
//! write and reads the batch's responses before the next batch; HTTP/1.0
//! mode opens a fresh connection per request. Every response is verified
//! against the content store (length plus byte pattern).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use phttp_http::{Request, ResponseParser, Version};
use phttp_trace::ConnectionTrace;

use crate::store::ContentStore;

/// Which protocol the clients speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientProtocol {
    /// One request per TCP connection (`HTTP/1.0`).
    Http10,
    /// Persistent connections with pipelined batches (`HTTP/1.1`).
    PHttp,
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Protocol mode.
    pub protocol: ClientProtocol,
    /// Verify every response body against the store.
    pub verify: bool,
    /// Per-socket read timeout.
    pub read_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 16,
            protocol: ClientProtocol::PHttp,
            verify: true,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Result of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Responses received and (if enabled) verified.
    pub requests: u64,
    /// Connections completed.
    pub connections: u64,
    /// Response verification failures plus transport errors.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Payload bytes received.
    pub bytes: u64,
}

impl LoadReport {
    /// Requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// Plays `workload` against the cluster and reports throughput.
///
/// Connections are claimed by client threads from a shared cursor, so the
/// admission order follows the workload order regardless of thread count.
/// Multiple front-end addresses are used round-robin (per connection) to
/// spread TCP 4-tuple pressure, emulating multiple client machines.
pub fn run_load(
    addrs: &[SocketAddr],
    store: &Arc<ContentStore>,
    workload: &ConnectionTrace,
    cfg: &LoadConfig,
) -> LoadReport {
    assert!(!addrs.is_empty(), "need at least one front-end address");
    let cursor = Arc::new(AtomicUsize::new(0));
    let requests = Arc::new(AtomicU64::new(0));
    let connections = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.clients.max(1) {
            let cursor = cursor.clone();
            let requests = requests.clone();
            let connections = connections.clone();
            let errors = errors.clone();
            let bytes = bytes.clone();
            let store = store.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = workload.connections.get(i) else {
                    break;
                };
                let addr = addrs[i % addrs.len()];
                match play_connection(addr, &store, conn, cfg) {
                    Ok((reqs, errs, by)) => {
                        requests.fetch_add(reqs, Ordering::Relaxed);
                        errors.fetch_add(errs, Ordering::Relaxed);
                        bytes.fetch_add(by, Ordering::Relaxed);
                        connections.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(conn.num_requests() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    LoadReport {
        requests: requests.load(Ordering::Relaxed),
        connections: connections.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        bytes: bytes.load(Ordering::Relaxed),
    }
}

/// Plays one trace connection; returns `(requests_ok, errors, bytes)`.
fn play_connection(
    addr: SocketAddr,
    store: &ContentStore,
    conn: &phttp_trace::Connection,
    cfg: &LoadConfig,
) -> std::io::Result<(u64, u64, u64)> {
    match cfg.protocol {
        ClientProtocol::PHttp => play_phttp(addr, store, conn, cfg),
        ClientProtocol::Http10 => {
            let mut ok = 0;
            let mut errs = 0;
            let mut by = 0;
            for target in conn.targets() {
                let mut stream = connect(addr, cfg)?;
                let req = Request::get(ContentStore::uri(target), Version::Http10);
                stream.write_all(&req.to_bytes())?;
                match read_responses(&mut stream, 1, cfg)? {
                    mut resp if resp.len() == 1 => {
                        let body = resp.remove(0);
                        by += body.len() as u64;
                        if !cfg.verify || store.verify(target, &body) {
                            ok += 1;
                        } else {
                            errs += 1;
                        }
                    }
                    _ => errs += 1,
                }
            }
            Ok((ok, errs, by))
        }
    }
}

fn play_phttp(
    addr: SocketAddr,
    store: &ContentStore,
    conn: &phttp_trace::Connection,
    cfg: &LoadConfig,
) -> std::io::Result<(u64, u64, u64)> {
    let mut stream = connect(addr, cfg)?;
    let mut ok = 0;
    let mut errs = 0;
    let mut by = 0;
    for batch in &conn.batches {
        // Pipeline the whole batch in a single write.
        let mut wire = BytesMut::new();
        for &target in &batch.targets {
            Request::get(ContentStore::uri(target), Version::Http11).encode(&mut wire);
        }
        stream.write_all(&wire)?;
        let bodies = read_responses(&mut stream, batch.targets.len(), cfg)?;
        if bodies.len() != batch.targets.len() {
            errs += (batch.targets.len() - bodies.len()) as u64;
        }
        for (&target, body) in batch.targets.iter().zip(&bodies) {
            by += body.len() as u64;
            if !cfg.verify || store.verify(target, body) {
                ok += 1;
            } else {
                errs += 1;
            }
        }
    }
    Ok((ok, errs, by))
}

/// Connects with retries: HTTP/1.0 mode opens one connection per request,
/// which at load-generator rates can transiently exhaust ephemeral ports
/// (TIME_WAIT); brief backoff rides it out, as a real browser's retry would.
fn connect(addr: SocketAddr, cfg: &LoadConfig) -> std::io::Result<TcpStream> {
    let mut delay = Duration::from_millis(1);
    let mut last_err = None;
    for _ in 0..8 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(cfg.read_timeout))?;
                return Ok(stream);
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// Reads exactly `n` responses (in order) and returns their bodies.
fn read_responses(
    stream: &mut TcpStream,
    n: usize,
    _cfg: &LoadConfig,
) -> std::io::Result<Vec<bytes::Bytes>> {
    let mut parser = ResponseParser::new();
    let mut out = Vec::with_capacity(n);
    let mut buf = [0u8; 32 * 1024];
    while out.len() < n {
        match parser
            .next()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Some(resp) => {
                out.push(resp.body);
                continue;
            }
            None => {
                let read = stream.read(&mut buf)?;
                if read == 0 {
                    break;
                }
                parser.feed(&buf[..read]);
            }
        }
    }
    Ok(out)
}
