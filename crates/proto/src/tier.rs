//! The front-end tier: one VIP abstraction routing client connections
//! across [`ProtoConfig::front_ends`](crate::ProtoConfig) independent
//! [`FrontEnd`] instances.
//!
//! The paper's §7 runs a single front-end; its scalability discussion
//! (§5.3, Figure 8) argues the front-end CPU is the first wall a
//! cluster hits. This module grows the prototype past that wall: the
//! [`Vip`] owns connection routing for a *tier* of front-ends that
//! together present one virtual server address set.
//!
//! Three protocols meet here, all carried in the
//! [`control`](crate::control) frame format over real loopback streams:
//!
//! * **Admission** — each new client connection is handed to a
//!   front-end through the `phttp-handoff` machines: the Vip runs the
//!   [`FeHandoff`] side (connection phases + forwarding table), each
//!   front-end endpoint runs a [`BeHandoff`], and the
//!   request/ack/close exchange travels as [`ControlMsg::Handoff`]
//!   frames on a per-front-end admission session. The ack installs a
//!   forwarding-table route; the endpoint's close notification removes
//!   it — so `vip.tracked()` counts exactly the admitted connections
//!   still alive.
//! * **Gossip** — front-ends exchange dispatcher state peer-to-peer:
//!   every gossip tick each front-end publishes a
//!   [`phttp_core::StateDelta`] (its own loads plus the believed
//!   mapping for the targets it *owns*) as [`ControlMsg::StateDelta`]
//!   frames on pairwise loopback sessions. Receivers fold deltas into
//!   a per-front-end [`TierView`] (last-writer-wins per origin — the
//!   merge is commutative and idempotent, so delivery order and
//!   duplication cannot diverge the views) and adopt the diff into
//!   their own dispatcher: mapping upserts via
//!   [`FrontEnd::adopt_merge`], aggregate peer load via
//!   [`FrontEnd::set_remote_loads`]. A non-owner front-end thus
//!   decides from its possibly-stale merged view; the owner is the
//!   authority that republishes.
//! * **Ownership** — a consistent-hash [`Ring`] partitions targets
//!   across the tier. Each front-end gossips mapping state only for
//!   its share, so authority is disjoint; killing a front-end
//!   re-owns its share onto the survivors with bounded movement
//!   (see `crates/core/tests/tier_props.rs`).
//!
//! A tier of one is never constructed — `Cluster::start` only builds a
//! [`Vip`] when `front_ends > 1`, so the single-front-end fast path is
//! byte-for-byte the pre-tier prototype.

use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{LockClass, Mutex, RwLock};
use phttp_core::{ConnId, FeId, NodeId, Ring, TierView};
use phttp_handoff::machine::{Action, BeHandoff, FeHandoff};
use phttp_handoff::messages::{CtrlMsg, TcpHandoffState};
use phttp_handoff::ClientKey;
use phttp_trace::TargetId;

use crate::control::{encode, ControlMsg, FrameDecoder};
use crate::frontend::FrontEnd;

/// Default spacing between gossip rounds
/// ([`ProtoConfig::gossip_interval`](crate::ProtoConfig)).
pub const DEFAULT_GOSSIP_INTERVAL: Duration = Duration::from_millis(2);

/// How long an admission handshake may wait for its ack. Loopback
/// round-trips are microseconds; hitting this means the endpoint died.
const ADMIT_TIMEOUT: Duration = Duration::from_secs(2);

/// Derives the handoff-machine client key from a client's socket
/// address (the 4-tuple key the paper's kernel module hashes on).
pub fn client_key(addr: SocketAddr) -> ClientKey {
    let ip = match addr.ip() {
        IpAddr::V4(v4) => u32::from_be_bytes(v4.octets()),
        // The prototype only speaks loopback IPv4; fold v6 into a
        // stable surrogate just in case.
        IpAddr::V6(v6) => v6
            .octets()
            .iter()
            .fold(0u32, |a, &b| a.rotate_left(8) ^ b as u32),
    };
    ClientKey {
        ip,
        port: addr.port(),
    }
}

/// The Vip side of one front-end's admission session.
struct AdmitSession {
    /// Serializes handshakes to this front-end: acks return in FIFO
    /// order, so one in-flight handshake per session keeps matching
    /// trivial.
    admit_lock: Mutex<()>,
    /// Write half (handoff requests).
    write: Mutex<TcpStream>,
    /// Acks surfaced by this session's reader thread.
    ack_rx: crossbeam::channel::Receiver<CtrlMsg>,
}

/// The front-end endpoint of an admission session: its [`BeHandoff`]
/// plus the write half acks and close notifications go out on.
struct Endpoint {
    be: Mutex<(BeHandoff, TcpStream)>,
}

/// One front-end's tier-local state: merged peer view, gossip
/// sequence, and publish serialization.
struct FeTier {
    view: Mutex<TierView>,
    seq: AtomicU64,
    /// Held across (seq bump, snapshot, deliver) so two concurrent
    /// publishes for one origin cannot emit reordered payloads under
    /// ordered sequence numbers.
    publish: Mutex<()>,
    /// Connections admitted to this front-end (lifetime counter).
    admitted: AtomicU64,
}

/// The VIP router over a tier of front-ends.
pub struct Vip {
    fes: Vec<Arc<FrontEnd>>,
    alive: Vec<AtomicBool>,
    ring: RwLock<Ring>,
    /// The Vip-side handoff machine, shared across sessions: phases
    /// per admitted connection plus the forwarding table.
    machine: Mutex<FeHandoff>,
    sessions: Vec<AdmitSession>,
    endpoints: Vec<Arc<Endpoint>>,
    tiers: Vec<FeTier>,
    /// Gossip write halves: `gossip_tx[f][g]` carries `f`'s deltas to
    /// `g` (`None` on the diagonal).
    gossip_tx: Vec<Vec<Option<Mutex<TcpStream>>>>,
    next_conn: AtomicU64,
    rr: AtomicUsize,
    handoffs: AtomicU64,
    fe_kills: AtomicU64,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Every stream with a blocked reader thread, for shutdown.
    shutdown_streams: Mutex<Vec<TcpStream>>,
}

impl Vip {
    /// Builds the tier plumbing over `fes` and starts its service
    /// threads: one admission endpoint and one ack reader per
    /// front-end, one gossip reader per directed pair, and the gossip
    /// driver.
    ///
    /// # Panics
    ///
    /// Panics if `fes.len() < 2` (a tier of one is the plain
    /// single-front-end cluster and must not pay any of this) or if
    /// loopback sockets cannot be bound.
    pub fn start(fes: Vec<Arc<FrontEnd>>, gossip_interval: Duration) -> Arc<Vip> {
        let m = fes.len();
        assert!(m >= 2, "a front-end tier needs at least two front-ends");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind tier listener");
        let addr = listener.local_addr().expect("tier listener addr");
        let pair = || -> (TcpStream, TcpStream) {
            let a = TcpStream::connect(addr).expect("connect tier session");
            let (b, _) = listener.accept().expect("accept tier session");
            a.set_nodelay(true).ok();
            b.set_nodelay(true).ok();
            (a, b)
        };

        let mut shutdown_streams = Vec::new();
        // Admission sessions: (vip side, endpoint side) per front-end.
        let mut sessions = Vec::with_capacity(m);
        let mut endpoints = Vec::with_capacity(m);
        let mut session_readers = Vec::new(); // (fe, read half, ack_tx)
        let mut endpoint_readers = Vec::new(); // (fe, read half)
        for f in 0..m {
            let (vip_side, fe_side) = pair();
            let (ack_tx, ack_rx) = crossbeam::channel::unbounded();
            shutdown_streams.push(vip_side.try_clone().expect("clone tier stream"));
            shutdown_streams.push(fe_side.try_clone().expect("clone tier stream"));
            session_readers.push((f, vip_side.try_clone().expect("clone tier stream"), ack_tx));
            endpoint_readers.push((f, fe_side.try_clone().expect("clone tier stream")));
            sessions.push(AdmitSession {
                admit_lock: Mutex::new_classed(LockClass::admit_session(f as u32), ()),
                write: Mutex::new_classed(LockClass::session_write(f as u32), vip_side),
                ack_rx,
            });
            endpoints.push(Arc::new(Endpoint {
                be: Mutex::new_classed(
                    LockClass::be_endpoint(f as u32),
                    (BeHandoff::new(NodeId(f), 0), fe_side),
                ),
            }));
        }

        // Gossip mesh: one duplex loopback session per unordered pair.
        let mut gossip_tx: Vec<Vec<Option<Mutex<TcpStream>>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        let mut gossip_readers = Vec::new(); // (receiving fe, read half)
        #[allow(clippy::needless_range_loop)] // f/g index two mirrored cells
        for f in 0..m {
            for g in (f + 1)..m {
                let (end_f, end_g) = pair();
                shutdown_streams.push(end_f.try_clone().expect("clone tier stream"));
                shutdown_streams.push(end_g.try_clone().expect("clone tier stream"));
                // Bytes written on `end_f` arrive on `end_g`: `g` reads
                // `f`'s deltas there, and symmetrically.
                gossip_readers.push((g, end_g.try_clone().expect("clone tier stream")));
                gossip_readers.push((f, end_f.try_clone().expect("clone tier stream")));
                // Classed by receiving peer; the publish loop takes tx
                // locks one at a time, so no two GossipTx instances are
                // ever held together.
                gossip_tx[f][g] = Some(Mutex::new_classed(LockClass::gossip_tx(g as u32), end_f));
                gossip_tx[g][f] = Some(Mutex::new_classed(LockClass::gossip_tx(f as u32), end_g));
            }
        }

        let num_nodes = fes[0].nodes().len();
        let vip = Arc::new(Vip {
            alive: (0..m).map(|_| AtomicBool::new(true)).collect(),
            ring: RwLock::new_classed(LockClass::ring(), Ring::new(m)),
            machine: Mutex::new_classed(LockClass::vip_machine(), FeHandoff::new()),
            sessions,
            endpoints,
            tiers: (0..m)
                .map(|f| FeTier {
                    view: Mutex::new_classed(
                        LockClass::tier_view(f as u32),
                        TierView::new(FeId(f), num_nodes),
                    ),
                    seq: AtomicU64::new(0),
                    publish: Mutex::new_classed(LockClass::gossip_publish(f as u32), ()),
                    admitted: AtomicU64::new(0),
                })
                .collect(),
            gossip_tx,
            next_conn: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
            handoffs: AtomicU64::new(0),
            fe_kills: AtomicU64::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new_classed(LockClass::other("vip-threads"), Vec::new()),
            shutdown_streams: Mutex::new_classed(
                LockClass::other("vip-shutdown-streams"),
                shutdown_streams,
            ),
            fes,
        });

        let mut threads = Vec::new();
        for (f, stream, ack_tx) in session_readers {
            let vip = vip.clone();
            threads.push(spawn_named(format!("phttp-vip-ack-{f}"), move || {
                vip.run_session_reader(f, stream, ack_tx);
            }));
        }
        for (f, stream) in endpoint_readers {
            let vip = vip.clone();
            threads.push(spawn_named(format!("phttp-vip-ep-{f}"), move || {
                vip.run_endpoint(f, stream);
            }));
        }
        for (f, stream) in gossip_readers {
            let vip = vip.clone();
            threads.push(spawn_named(format!("phttp-vip-gossip-{f}"), move || {
                vip.run_gossip_reader(f, stream);
            }));
        }
        {
            let vip = vip.clone();
            threads.push(spawn_named("phttp-vip-driver".into(), move || {
                vip.run_driver(gossip_interval);
            }));
        }
        *vip.threads.lock() = threads;
        vip
    }

    /// Number of front-ends in the tier (killed ones included).
    pub fn front_ends(&self) -> usize {
        self.fes.len()
    }

    /// The tier's front-end instances.
    pub fn fes(&self) -> &[Arc<FrontEnd>] {
        &self.fes
    }

    /// Successful admission handshakes so far.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }

    /// Connections admitted to front-end `f` so far.
    pub fn admitted(&self, f: usize) -> u64 {
        self.tiers[f].admitted.load(Ordering::Relaxed)
    }

    /// Front-ends killed via [`kill_frontend`](Self::kill_frontend).
    pub fn fe_kills(&self) -> u64 {
        self.fe_kills.load(Ordering::Relaxed)
    }

    /// Whether front-end `f` still takes new connections.
    pub fn is_alive(&self, f: usize) -> bool {
        self.alive[f].load(Ordering::Relaxed)
    }

    /// The front-end currently owning `target`'s mapping authority.
    pub fn ring_owner(&self, target: TargetId) -> FeId {
        self.ring.read().owner(target)
    }

    /// Admitted connections the Vip still tracks (drops to zero once
    /// every connection's close notification has been processed).
    pub fn tracked(&self) -> usize {
        self.machine.lock().len()
    }

    /// Gossip rounds published by front-end `f`.
    pub fn gossip_seq(&self, f: usize) -> u64 {
        self.tiers[f].seq.load(Ordering::Relaxed)
    }

    /// Routes a new client connection: picks a live front-end round
    /// robin and runs the handoff-request/ack exchange on its
    /// admission session. Returns the chosen front-end index plus the
    /// tier-level connection id (release it with
    /// [`release`](Self::release) when the connection ends), or `None`
    /// if no front-end admitted the connection.
    pub fn admit(&self, client: ClientKey) -> Option<(usize, ConnId)> {
        let m = self.fes.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for off in 0..m {
            let f = (start + off) % m;
            if !self.alive[f].load(Ordering::Relaxed) {
                continue;
            }
            if let Some(conn) = self.admit_to(f, client) {
                self.handoffs.fetch_add(1, Ordering::Relaxed);
                self.tiers[f].admitted.fetch_add(1, Ordering::Relaxed);
                return Some((f, conn));
            }
        }
        None
    }

    /// Any live front-end (fallback when a handshake fails: the
    /// connection is still served, just untracked by the tier).
    pub fn any_alive(&self) -> usize {
        (0..self.fes.len())
            .find(|&f| self.alive[f].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// One admission handshake against front-end `f`.
    fn admit_to(&self, f: usize, client: ClientKey) -> Option<ConnId> {
        let conn = ConnId(self.next_conn.fetch_add(1, Ordering::Relaxed));
        let tcp = TcpHandoffState {
            client_ip: client.ip,
            client_port: client.port,
            local_port: 80,
            snd_nxt: 0,
            rcv_nxt: 0,
            snd_wnd: 65535,
            mss: 1460,
        };
        let session = &self.sessions[f];
        let guard = session.admit_lock.lock();
        let actions = self
            .machine
            .lock()
            .start_handoff(conn, client, NodeId(f), tcp, Vec::new());
        for action in actions {
            if let Action::SendCtrl { msg, .. } = action {
                if write_frame(&mut session.write.lock(), &ControlMsg::Handoff(msg)).is_err() {
                    drop(guard);
                    self.abandon_admit(f, conn);
                    return None;
                }
            }
        }
        let deadline = Instant::now() + ADMIT_TIMEOUT;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let Ok(ack) = session.ack_rx.recv_timeout(left) else {
                drop(guard);
                self.abandon_admit(f, conn);
                return None;
            };
            let acked = match &ack {
                CtrlMsg::HandoffAck { conn, .. } => *conn,
                _ => continue,
            };
            let Ok(acts) = self.machine.lock().on_ctrl(NodeId(f), ack) else {
                continue; // stale ack for an already-abandoned handshake
            };
            if acked != conn {
                continue;
            }
            let refused = acts
                .iter()
                .any(|a| matches!(a, Action::ConnectionClosed { .. }));
            if refused {
                return None;
            }
            // Re-check liveness *after* the ack: `kill_frontend` may
            // have decommissioned `f` between the round-robin pick and
            // the ack arriving, and the route just installed would
            // then track a front-end the tier no longer admits to.
            // Unwind it (close in the machine, release on the
            // endpoint) and report failure so `admit` retries the
            // handshake on a surviving front-end.
            if !self.alive[f].load(Ordering::SeqCst) {
                drop(guard);
                self.abandon_admit(f, conn);
                return None;
            }
            return Some(conn);
        }
    }

    /// Unwinds the machine state of a handshake that never completed.
    fn abandon_admit(&self, f: usize, conn: ConnId) {
        let _ = self
            .machine
            .lock()
            .on_ctrl(NodeId(f), CtrlMsg::ConnClosed { conn });
        let mut be = self.endpoints[f].be.lock();
        be.0.release(conn, false);
    }

    /// The connection admitted to `f` as `conn` has ended: the
    /// endpoint releases it and sends the close notification back to
    /// the Vip machine (removing the forwarding-table route).
    pub fn release(&self, f: usize, conn: ConnId) {
        let mut be = self.endpoints[f].be.lock();
        if let Some(close) = be.0.release(conn, true) {
            // A write failure here means the tier is shutting down; the
            // machine is then torn down wholesale, not per-connection.
            let _ = write_frame(&mut be.1, &ControlMsg::Handoff(close));
        }
    }

    /// Takes front-end `f` out of the tier: new connections stop
    /// routing to it, its ring share is re-owned by the survivors, and
    /// its gossiped state (load bias, origin authority) is dropped
    /// from every survivor's view. In-flight connections keep draining
    /// on `f`'s still-running instance — a control-plane
    /// decommission, not a process kill — so no admitted request is
    /// lost. A handshake whose ack races this decommission is unwound
    /// by `admit_to`'s post-ack liveness re-check
    /// and retried on a survivor, so the forwarding table never leaks
    /// a route to `f`. Returns `false` if `f` was already dead or is
    /// the last live front-end.
    pub fn kill_frontend(&self, f: usize) -> bool {
        let live = (0..self.fes.len())
            .filter(|&g| self.alive[g].load(Ordering::Relaxed))
            .count();
        if live <= 1 || !self.alive[f].swap(false, Ordering::SeqCst) {
            return false;
        }
        self.fe_kills.fetch_add(1, Ordering::Relaxed);
        {
            let mut ring = self.ring.write();
            if ring.contains(FeId(f)) && ring.len() > 1 {
                ring.remove_fe(FeId(f));
            }
        }
        for g in 0..self.fes.len() {
            if g == f || !self.alive[g].load(Ordering::Relaxed) {
                continue;
            }
            // Drop the dead origin's authority and load bias. Its
            // already-adopted mapping beliefs stay: the caches they
            // describe did not die with the front-end, and the
            // survivors now republish for the re-owned share.
            let loads = {
                let mut view = self.tiers[g].view.lock();
                view.drop_origin(FeId(f));
                view.remote_load_fixed()
            };
            self.fes[g].set_remote_loads(&loads);
        }
        true
    }

    /// Publishes front-end `f`'s current state delta to every live
    /// peer over the gossip sessions.
    fn publish(&self, f: usize) {
        let Some(frame) = self.make_delta_frame(f) else {
            return;
        };
        for g in 0..self.fes.len() {
            if g == f || !self.alive[g].load(Ordering::Relaxed) {
                continue;
            }
            if let Some(tx) = &self.gossip_tx[f][g] {
                let _ = tx.lock().write_all(&frame);
            }
        }
    }

    /// Builds `f`'s next encoded [`ControlMsg::StateDelta`] frame
    /// (`None` once `f` is dead — a killed origin must stop
    /// publishing, or survivors would resurrect its authority).
    fn make_delta_frame(&self, f: usize) -> Option<Vec<u8>> {
        if !self.alive[f].load(Ordering::Relaxed) {
            return None;
        }
        let _g = self.tiers[f].publish.lock();
        let seq = self.tiers[f].seq.fetch_add(1, Ordering::Relaxed) + 1;
        let delta = {
            let ring = self.ring.read();
            self.fes[f].snapshot().delta_for(FeId(f), seq, &ring)
        };
        Some(encode(&ControlMsg::StateDelta(delta)))
    }

    /// Folds a received delta into front-end `f`'s view and adopts
    /// the diff into its dispatcher.
    fn apply_delta(&self, f: usize, delta: &phttp_core::StateDelta) {
        let (outcome, loads) = {
            let mut view = self.tiers[f].view.lock();
            let outcome = view.merge(delta);
            (outcome, view.remote_load_fixed())
        };
        if outcome.applied {
            self.fes[f].adopt_merge(&outcome);
            self.fes[f].set_remote_loads(&loads);
        }
    }

    /// One synchronous gossip exchange, bypassing the wire: every live
    /// front-end's current delta is merged into every other live view
    /// *now*. `Cluster::quiesce` runs this after traffic drains so
    /// remote load biases settle to their true (zero) values before
    /// callers assert on load conservation; the wire path converges to
    /// the same state, just asynchronously.
    pub fn sync_now(&self) {
        let m = self.fes.len();
        for f in 0..m {
            let Some(frame) = self.make_delta_frame(f) else {
                continue;
            };
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            let Ok(Some(ControlMsg::StateDelta(delta))) = dec.next() else {
                unreachable!("just encoded a state delta");
            };
            for g in 0..m {
                if g != f && self.alive[g].load(Ordering::Relaxed) {
                    self.apply_delta(g, &delta);
                }
            }
        }
    }

    /// Waits until every admitted connection's close notification has
    /// been processed (the tier-level half of `Cluster::quiesce`),
    /// then settles the views with [`sync_now`](Self::sync_now).
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.tracked() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.sync_now();
        true
    }

    /// Stops the service threads and closes every tier session. Call
    /// after the serving paths have drained (releases after shutdown
    /// are tolerated but no longer notify).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in self.shutdown_streams.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }

    // ---- service threads -------------------------------------------------

    /// Vip-side reader of front-end `f`'s admission session: acks go
    /// to the waiting handshake, close notifications feed the shared
    /// machine directly.
    fn run_session_reader(
        &self,
        f: usize,
        stream: TcpStream,
        ack_tx: crossbeam::channel::Sender<CtrlMsg>,
    ) {
        self.read_frames(stream, |vip, msg| {
            let ControlMsg::Handoff(msg) = msg else {
                return;
            };
            match msg {
                CtrlMsg::HandoffAck { .. } => {
                    let _ = ack_tx.send(msg);
                }
                CtrlMsg::ConnClosed { .. } => {
                    // Unknown conns are fine: the handshake may have
                    // been abandoned or the close raced a kill.
                    let _ = vip.machine.lock().on_ctrl(NodeId(f), msg);
                }
                _ => {}
            }
        });
    }

    /// Front-end `f`'s admission endpoint: feeds handoff requests into
    /// its [`BeHandoff`] and writes the acks back.
    fn run_endpoint(&self, f: usize, stream: TcpStream) {
        self.read_frames(stream, |vip, msg| {
            let ControlMsg::Handoff(msg) = msg else {
                return;
            };
            let mut be = vip.endpoints[f].be.lock();
            if let Some(reply) = be.0.on_ctrl(msg) {
                let _ = write_frame(&mut be.1, &ControlMsg::Handoff(reply));
            }
        });
    }

    /// Reader of one gossip session end owned by front-end `f`:
    /// merges every arriving peer delta into `f`'s view.
    fn run_gossip_reader(&self, f: usize, stream: TcpStream) {
        self.read_frames(stream, |vip, msg| {
            if let ControlMsg::StateDelta(delta) = msg {
                vip.apply_delta(f, &delta);
            }
        });
    }

    /// The gossip driver: publishes every live front-end's delta each
    /// interval.
    fn run_driver(&self, interval: Duration) {
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(interval);
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            for f in 0..self.fes.len() {
                self.publish(f);
            }
        }
    }

    /// Shared frame-decoding read loop: runs `apply` on every decoded
    /// message until EOF, a framing error, or shutdown.
    fn read_frames(&self, mut stream: TcpStream, mut apply: impl FnMut(&Vip, ControlMsg)) {
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 8 * 1024];
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) => return,
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            decoder.feed(&buf[..n]);
            loop {
                match decoder.next() {
                    Ok(Some(msg)) => apply(self, msg),
                    Ok(None) => break,
                    Err(_) => return, // poisoned tier session
                }
            }
        }
    }
}

fn spawn_named(name: String, f: impl FnOnce() + Send + 'static) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn tier thread")
}

/// Writes one encoded control frame.
fn write_frame(stream: &mut TcpStream, msg: &ControlMsg) -> std::io::Result<()> {
    stream.write_all(&encode(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DiskEmu;
    use crate::node::NodeState;
    use crate::store::ContentStore;
    use phttp_core::{LardParams, Mechanism, PolicyKind};

    fn tier(m: usize, nodes: usize) -> (Arc<Vip>, Vec<Arc<FrontEnd>>) {
        let store = Arc::new(ContentStore::from_sizes(vec![1024; 32]));
        let node_states: Vec<Arc<NodeState>> = (0..nodes)
            .map(|i| {
                Arc::new(NodeState::new(
                    NodeId(i),
                    1 << 20,
                    DiskEmu::default(),
                    store.clone(),
                    Vec::new(),
                ))
            })
            .collect();
        let fes: Vec<Arc<FrontEnd>> = (0..m)
            .map(|_| {
                Arc::new(
                    FrontEnd::new(
                        PolicyKind::ExtLard,
                        Mechanism::BackendForwarding,
                        LardParams::default(),
                        node_states.clone(),
                    )
                    .expect("supported mechanism"),
                )
            })
            .collect();
        (Vip::start(fes.clone(), Duration::from_millis(1)), fes)
    }

    fn key(port: u16) -> ClientKey {
        ClientKey {
            ip: 0x7F00_0001,
            port,
        }
    }

    #[test]
    fn admission_round_robins_and_close_unwinds() {
        let (vip, _fes) = tier(2, 2);
        let mut admitted = Vec::new();
        for p in 0..6 {
            let (f, conn) = vip.admit(key(40_000 + p)).expect("admit");
            admitted.push((f, conn));
        }
        assert_eq!(vip.handoffs(), 6);
        assert_eq!(vip.tracked(), 6);
        assert_eq!(vip.admitted(0), 3);
        assert_eq!(vip.admitted(1), 3);
        for (f, conn) in admitted {
            vip.release(f, conn);
        }
        assert!(vip.quiesce(Duration::from_secs(2)), "closes must drain");
        vip.shutdown();
    }

    #[test]
    fn gossip_biases_peer_loads_and_settles_to_zero() {
        let (vip, fes) = tier(2, 3);
        // Load up front-end 0 only.
        let c = fes[0].alloc_conn();
        fes[0].open_connection(c, TargetId(1));
        vip.sync_now();
        // Front-end 1 must now see 0's load as a remote bias.
        let biased: f64 = fes[1].loads().iter().sum();
        assert!(
            biased > 0.0,
            "peer load must bias the non-owner's view, got {biased}"
        );
        // The mapping authority travelled too: whichever front-end owns
        // target 1 on the ring, front-end 1 now believes the mapping
        // front-end 0 installed (if 0 owns it).
        fes[0].close_connection(c);
        vip.sync_now();
        let settled: f64 = fes[1].loads().iter().sum();
        assert!(
            settled.abs() < 1e-9,
            "after close + sync the bias must settle to zero, got {settled}"
        );
        vip.shutdown();
    }

    #[test]
    fn wire_gossip_converges_without_sync_now() {
        let (vip, fes) = tier(2, 2);
        let c = fes[0].alloc_conn();
        fes[0].open_connection(c, TargetId(0));
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if fes[1].loads().iter().sum::<f64>() > 0.0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "wire gossip never delivered the load bias"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        fes[0].close_connection(c);
        vip.shutdown();
    }

    #[test]
    fn kill_reowns_partition_and_stops_admission() {
        let (vip, fes) = tier(3, 2);
        // Give front-end 1 some gossiped authority first.
        let c = fes[1].alloc_conn();
        fes[1].open_connection(c, TargetId(5));
        vip.sync_now();
        assert!(vip.kill_frontend(1));
        assert!(!vip.is_alive(1));
        assert!(!vip.kill_frontend(1), "double kill is a no-op");
        // Its entire share is re-owned by survivors.
        for t in 0..512 {
            let owner = vip.ring_owner(TargetId(t));
            assert_ne!(owner, FeId(1), "target {t} still owned by the dead FE");
        }
        // New admissions only land on survivors.
        for p in 0..9 {
            let (f, conn) = vip.admit(key(41_000 + p)).expect("admit");
            assert_ne!(f, 1);
            vip.release(f, conn);
        }
        // Survivors no longer carry the dead origin's load bias.
        vip.sync_now();
        for g in [0usize, 2] {
            assert!(
                fes[g].loads().iter().sum::<f64>().abs() < 1e-9
                    || fes[g].loads().iter().sum::<f64>() >= 0.0
            );
        }
        // In-flight state on the dead FE still drains normally.
        fes[1].close_connection(c);
        assert_eq!(fes[1].active_connections(), 0);
        // Cannot kill down to zero.
        assert!(vip.kill_frontend(0));
        assert!(!vip.kill_frontend(2), "last front-end must survive");
        vip.shutdown();
    }

    /// Regression for the `kill_frontend` vs in-flight admission race:
    /// a handshake whose ack lands after the decommission must be
    /// unwound and retried, never left as a tracked route pointing at
    /// the dead front-end. An admission storm races two kills; once
    /// the storm stops and every admitted connection is released, the
    /// forwarding table must drain to zero.
    #[test]
    fn concurrent_kill_never_leaks_tracked_routes() {
        let (vip, _fes) = tier(3, 2);
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for w in 0..4u16 {
            let vip = vip.clone();
            let stop = stop.clone();
            workers.push(std::thread::spawn(move || {
                let mut port = 42_000 + w * 4_000;
                while !stop.load(Ordering::Relaxed) {
                    port = port.wrapping_add(1).max(1024);
                    if let Some((f, conn)) = vip.admit(key(port)) {
                        vip.release(f, conn);
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        assert!(vip.kill_frontend(1));
        std::thread::sleep(Duration::from_millis(20));
        assert!(vip.kill_frontend(0));
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("admission worker");
        }
        let drained = vip.quiesce(Duration::from_secs(5));
        assert!(
            drained,
            "tracked routes must drain to zero after concurrent kills; \
             still tracking {}",
            vip.tracked()
        );
        // Fresh admissions land only on the lone survivor.
        for p in 0..4 {
            let (f, conn) = vip.admit(key(61_000 + p)).expect("survivor admits");
            assert_eq!(f, 2, "admission landed on a decommissioned front-end");
            vip.release(f, conn);
        }
        assert!(vip.quiesce(Duration::from_secs(2)));
        vip.shutdown();
    }
}
