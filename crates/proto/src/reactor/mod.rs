//! `phttp-reactor`: the event-driven front-end I/O model.
//!
//! The thread-per-connection path (`cluster.rs`) burns one OS thread
//! per client connection — the scalability wall the paper's front-end
//! must avoid if P-HTTP's amortized TCP costs are to survive high
//! concurrency. This module replaces it with readiness-driven
//! (epoll-style, via the vendored `mio` shim) reactor **shards**:
//! `ProtoConfig::reactor_shards` loop threads (one per core on a real
//! host), each owning its own poller, its own front-end accept
//! socket(s), its own generation-checked connection slab, timer heap,
//! per-node lateral-session pools, its share of the back-ends'
//! peer-server listeners and control sessions — and nothing else.
//! Shards share only the already-`&self`-concurrent
//! [`crate::FrontEnd`]/[`phttp_core::ConcurrentDispatcher`] and the
//! content store; there are **no cross-shard channels on the data
//! path**. Accept distribution uses `SO_REUSEPORT` listener groups
//! (each shard binds its own socket on every front-end address; the
//! kernel spreads connections across the group's accept queues), with
//! a round-robin acceptor-handoff fallback where the reuseport bind is
//! unavailable.
//!
//! Lateral **serving** is event-driven too: each node's peer listener
//! is a registered source on one shard, and accepted peer connections
//! run the same incremental-parse → serve → strictly-ordered write-out
//! machine as client connections (minus the dispatcher). A
//! reactor-mode cluster therefore runs zero per-client and zero
//! per-peer-connection threads — its thread count is `reactor_shards`,
//! independent of connection count.
//!
//! The policy engine needs no adaptation: PR 1/PR 2 shaped
//! [`phttp_core::ConcurrentDispatcher`] so decisions run inline on
//! event-loop threads — `FrontEnd::assign_batch` is called directly
//! from each shard, one call per drained pipelined batch, exactly as
//! the handler threads call it in the thread model.
//!
//! ## Connection lifecycle (see ARCHITECTURE.md "I/O models" for the
//! full state diagram)
//!
//! 1. **Accept** — a listener's readable event accepts until
//!    `WouldBlock`; each stream becomes a `conn::ClientConn` slab
//!    slot registered for `READABLE` (peer listeners produce
//!    peer-server connections in the same slab).
//! 2. **Read → parse** — readable events feed the connection's
//!    incremental [`phttp_http::RequestParser`]; every drained batch of
//!    complete requests is decided **inline** via
//!    [`crate::FrontEnd::assign_batch`] (peer-server connections skip
//!    the dispatcher: every request serves on the listener's node).
//! 3. **Serve** — each request becomes an in-order pipeline entry:
//!    cache hits resolve to response bytes immediately; misses queue on
//!    the shard's event-driven per-node disk scheduler
//!    (`disk::DiskSched`); remote assignments either issue a
//!    non-blocking lateral fetch (`peer::PeerSession`) or, under
//!    migrate semantics, re-home the connection after an emulated
//!    handoff-protocol delay (a timer).
//! 4. **Write** — ready entries are staged strictly in request order
//!    and flushed with backpressure: an unwritable socket parks the
//!    bytes and registers `WRITABLE`; a large unsent backlog — staged
//!    bytes (`HIGH_WATER`) or unanswered pipeline entries
//!    (`MAX_PIPELINE`) — pauses reading. Peer-server connections obey
//!    the same rules.
//! 5. **Close** — client EOF, a non-keep-alive request, a parse error,
//!    or the idle timeout drains the pipeline and then releases the
//!    slot, closing the dispatcher connection exactly once.
//!
//! ## Failure handling
//!
//! A control session that hits EOF (or a framing/read error) while the
//! cluster is **not** shutting down is a node-failure signal: the shard
//! deregisters the source and calls [`crate::FrontEnd::evict_node`] for
//! that node, dropping every believed mapping that references it. The
//! quiescent-flush EOF of a clean `Cluster::shutdown` is distinguished
//! by the stop flag (set before the node-side streams close) and never
//! evicts. A peer session that dies mid-fetch (dial, write, or read
//! failure — e.g. the remote lateral server crashed) degrades that
//! fetch to local service, so the awaiting pipeline slot always
//! resolves and the client still sees a complete, ordered response.
//!
//! Shutdown is cooperative: `ReactorHandle::shutdown` sets the stop
//! flag and wakes every shard's poller (a blocked `epoll_wait` would
//! otherwise sleep through it), and each loop drains every registered
//! connection before exiting — the reactor-mode half of
//! `Cluster::quiesce`'s teardown contract.

mod conn;
mod disk;
mod peer;

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::{LockClass, Mutex};
use phttp_core::{Assignment, ConnId, ForwardSemantics, NodeId};
use phttp_http::{Request, Response, Version};
use phttp_trace::TargetId;

use crate::control::FrameDecoder;
use crate::frontend::FrontEnd;
use crate::store::ContentStore;
use crate::tier::Vip;

use conn::{ClientConn, Entry, EntryState, StreamEntry, HIGH_WATER};
use disk::{DiskJob, DiskSched, Waiter};
use peer::{LateralJob, PeerSession, StreamIn};

/// Token of the cross-thread waker.
const WAKER: Token = Token(0);
/// First front-end listener token; listener `i` is
/// `Token(LISTENER_BASE + i)`. Peer-listener tokens follow the
/// front-end listeners (`Reactor::peer_base`), control-channel tokens
/// follow those (`Reactor::control_base`) and slab tokens follow those
/// (`Reactor::slab_base`); all bases are computed from the configured
/// counts, so the ranges can never collide however many listeners,
/// nodes, or control sessions a shard owns.
const LISTENER_BASE: usize = 1;

/// A slab slot reference that stays valid across slot reuse: the
/// generation must still match for a completion to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotRef {
    idx: usize,
    gen: u64,
}

/// What occupies a slab slot.
enum Slot {
    /// A client or peer-server connection (see [`ClientConn::peer_server`]).
    Client(ClientConn),
    /// An outbound lateral-fetch session to a peer node.
    Peer(PeerSession),
}

struct SlabSlot {
    gen: u64,
    val: Option<Slot>,
}

/// A scheduled reactor-internal event.
enum Timer {
    /// Node `n`'s busy disk read (on this shard's scheduler) completes.
    DiskDone(usize),
    /// A connection's emulated migration delay elapses; serve `target`
    /// on node `to` and resolve pipeline slot `seq`.
    MigrateDone {
        conn: SlotRef,
        seq: u64,
        to: usize,
        target: TargetId,
        version: Version,
    },
}

struct TimerEntry {
    at: Instant,
    id: u64,
    kind: Timer,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    /// Reversed so `BinaryHeap` (a max-heap) pops the earliest deadline.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.id).cmp(&(self.at, self.id))
    }
}

/// Reactor configuration subset of `ProtoConfig`.
pub(crate) struct ReactorConfig {
    pub migration_delay: Duration,
    pub read_timeout: Duration,
    /// Number of event-loop shards (validated ≥ 1 by `Cluster::start`).
    pub shards: usize,
    /// Idle lateral sessions retained per peer, per shard (mirrors the
    /// thread path's per-peer pool cap).
    pub peer_pool_cap: usize,
    /// Single-flight miss coalescing (`ProtoConfig::coalesce_misses`):
    /// concurrent misses on one `(node, target)` park on the existing
    /// disk flight, and concurrent lateral fetches of one
    /// `(remote, target)` park on the existing peer round-trip.
    pub coalesce: bool,
    /// Zero-copy staging (`ProtoConfig::zero_copy`): responses stage as
    /// head + shared body slice; `false` flattens each response into a
    /// contiguous buffer first (the copying baseline). Lateral splices
    /// are inherently zero-copy and ignore the knob.
    pub zero_copy: bool,
}

/// Live gauges of one shard, shared with the cluster for diagnostics.
#[derive(Debug, Default)]
struct ShardGauges {
    /// Registered slab sources (client conns + peer-server conns +
    /// lateral sessions).
    sources: AtomicUsize,
    /// Entries in the timer heap as of the last loop iteration.
    timers: AtomicUsize,
    /// Response bytes staged unsent across this shard's output queues,
    /// each queued slice charged once however many clones of its
    /// allocation exist elsewhere (mirrored by `conn::OutQueue`). In an
    /// `Arc` because every connection's queue holds a handle.
    pending_body_bytes: Arc<AtomicUsize>,
}

/// Aggregate live-source/timer gauges across every reactor shard —
/// the observability hook the soak test uses to prove the slab and
/// timer heap do not leak (zero registered sources, zero pending
/// timers once traffic drains).
#[derive(Debug)]
pub struct ReactorStats {
    shards: Vec<ShardGauges>,
}

impl ReactorStats {
    fn new(shards: usize) -> ReactorStats {
        ReactorStats {
            shards: (0..shards).map(|_| ShardGauges::default()).collect(),
        }
    }

    /// Total registered slab sources (connections of any kind plus
    /// lateral sessions) across all shards.
    pub fn sources(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.sources.load(Ordering::Relaxed))
            .sum()
    }

    /// Total pending timer-heap entries across all shards.
    pub fn timers(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.timers.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of reactor shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Response bytes staged in output queues but not yet accepted by
    /// any socket, across all shards. Shared body slices are charged
    /// once per queue entry, not per clone — with zero-copy staging the
    /// gauge measures genuine backlog, not allocation fan-out. Drains
    /// to zero with the sources once traffic stops.
    pub fn pending_body_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pending_body_bytes.load(Ordering::Relaxed))
            .sum()
    }
}

/// A fallback-handoff queue entry: the accepted stream, the
/// front-end it was admitted to, and its tier ticket.
type InjectedConn = (std::net::TcpStream, usize, Option<ConnId>);
/// Shared queue of fallback-handoff connections for one shard.
type InjectorQueue = Arc<Mutex<VecDeque<InjectedConn>>>;

/// Hands accepted connections to one shard (the round-robin fallback
/// when `SO_REUSEPORT` listener groups are unavailable): the stream is
/// queued and the shard's poller woken to register it.
#[derive(Clone)]
pub(crate) struct ConnInjector {
    q: InjectorQueue,
    waker: Arc<Waker>,
}

impl ConnInjector {
    /// Queues `stream` for the shard (tagged with the front-end the
    /// Vip admitted it to, plus the tier ticket) and wakes its poller.
    pub fn push(&self, stream: std::net::TcpStream, fe_idx: usize, vip_conn: Option<ConnId>) {
        self.q.lock().push_back((stream, fe_idx, vip_conn));
        let _ = self.waker.wake();
    }
}

/// Handle held by `Cluster` to stop the loops from outside.
pub(crate) struct ReactorHandle {
    wakers: Vec<Arc<Waker>>,
    joins: Vec<std::thread::JoinHandle<()>>,
    injectors: Vec<ConnInjector>,
    stats: Arc<ReactorStats>,
}

impl ReactorHandle {
    /// Wakes every shard's poller (the stop flag must already be set)
    /// and joins the loop threads after each has drained every
    /// registered connection.
    pub fn shutdown(mut self) {
        for w in &self.wakers {
            let _ = w.wake();
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }

    /// One injector per shard, for acceptor-handoff fallback mode.
    pub fn injectors(&self) -> Vec<ConnInjector> {
        self.injectors.clone()
    }

    /// The shared live-source gauges.
    pub fn stats(&self) -> Arc<ReactorStats> {
        self.stats.clone()
    }
}

/// Builds every shard on the caller's thread (so bind/registration
/// errors surface synchronously) and runs each loop on its own thread.
///
/// `fe_listeners[s]` is shard `s`'s own group of front-end accept
/// sockets (empty in acceptor-handoff fallback mode); `peer_listeners`
/// are the back-ends' lateral-server listeners in node order and
/// `controls` the front-end sides of the control sessions tagged with
/// their node — both are distributed across shards by `node % shards`.
#[allow(clippy::too_many_arguments)] // construction-time plumbing, one caller
pub(crate) fn spawn(
    cfg: ReactorConfig,
    fes: Vec<Arc<FrontEnd>>,
    vip: Option<Arc<Vip>>,
    store: Arc<ContentStore>,
    fe_listeners: Vec<Vec<mio::net::TcpListener>>,
    peer_listeners: Vec<std::net::TcpListener>,
    controls: Vec<(usize, std::net::TcpStream)>,
    stop: Arc<AtomicBool>,
) -> io::Result<ReactorHandle> {
    // `fes[0]` keeps the shared-node-access role everywhere the shard
    // does not act for a specific connection (nodes, semantics, and
    // peer addresses are identical across the tier's front-ends).
    let fe = fes[0].clone();
    let shards = cfg.shards;
    debug_assert_eq!(fe_listeners.len(), shards, "one listener group per shard");
    let stats = Arc::new(ReactorStats::new(shards));

    // Round-robin the per-node sources across shards.
    let mut peer_groups: Vec<Vec<(usize, std::net::TcpListener)>> =
        (0..shards).map(|_| Vec::new()).collect();
    for (node, l) in peer_listeners.into_iter().enumerate() {
        peer_groups[node % shards].push((node, l));
    }
    let mut control_groups: Vec<Vec<(usize, std::net::TcpStream)>> =
        (0..shards).map(|_| Vec::new()).collect();
    for (node, s) in controls {
        control_groups[node % shards].push((node, s));
    }

    let nodes = fe.nodes().len();
    let peer_addrs = fe.nodes()[0].peer_addrs.clone();
    let semantics = fe.semantics();

    let mut wakers = Vec::with_capacity(shards);
    let mut joins = Vec::with_capacity(shards);
    let mut injectors = Vec::with_capacity(shards);
    for (shard_idx, (fe_group, (peers, ctrls))) in fe_listeners
        .into_iter()
        .zip(peer_groups.into_iter().zip(control_groups))
        .enumerate()
    {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), WAKER)?);
        let inbox: InjectorQueue = Arc::new(Mutex::new_classed(
            LockClass::other("accept-inbox"),
            VecDeque::new(),
        ));
        injectors.push(ConnInjector {
            q: inbox.clone(),
            waker: waker.clone(),
        });
        wakers.push(waker);

        let mut listeners = Vec::with_capacity(fe_group.len());
        for (i, mut l) in fe_group.into_iter().enumerate() {
            poll.registry()
                .register(&mut l, Token(LISTENER_BASE + i), Interest::READABLE)?;
            listeners.push(l);
        }
        let peer_base = LISTENER_BASE + listeners.len();
        let mut peer_lns = Vec::with_capacity(peers.len());
        for (i, (node, l)) in peers.into_iter().enumerate() {
            let mut l = mio::net::TcpListener::from_std(l);
            poll.registry()
                .register(&mut l, Token(peer_base + i), Interest::READABLE)?;
            peer_lns.push((node, l));
        }
        // The control sessions are ordinary readiness sources on the
        // same poller: the loop decodes their frames exactly where the
        // thread model runs its per-node reader threads.
        let control_base = peer_base + peer_lns.len();
        let mut chans = Vec::with_capacity(ctrls.len());
        for (i, (node, s)) in ctrls.into_iter().enumerate() {
            let mut chan = ControlChan {
                node,
                stream: mio::net::TcpStream::from_std(s),
                decoder: FrameDecoder::new(),
                open: true,
            };
            poll.registry().register(
                &mut chan.stream,
                Token(control_base + i),
                Interest::READABLE,
            )?;
            chans.push(chan);
        }
        let slab_base = control_base + chans.len();
        let reactor = Reactor {
            shard: shard_idx,
            poll,
            fe: fe.clone(),
            fes: fes.clone(),
            vip: vip.clone(),
            store: store.clone(),
            stop: stop.clone(),
            listeners,
            peer_base,
            peer_listeners: peer_lns,
            control_base,
            controls: chans,
            slab_base,
            inbox,
            stats: stats.clone(),
            slots: Vec::new(),
            free: Vec::new(),
            timers: BinaryHeap::new(),
            next_timer_id: 0,
            disks: (0..nodes).map(|_| DiskSched::default()).collect(),
            coalesce: cfg.coalesce,
            zero_copy: cfg.zero_copy,
            lateral_flights: HashMap::new(),
            idle_peers: vec![Vec::new(); nodes],
            pending_pumps: Vec::new(),
            peer_addrs: peer_addrs.clone(),
            semantics,
            migration_delay: cfg.migration_delay,
            read_timeout: cfg.read_timeout,
            peer_pool_cap: cfg.peer_pool_cap,
            last_sweep: Instant::now(),
        };
        joins.push(
            std::thread::Builder::new()
                .name(format!("phttp-reactor-{shard_idx}"))
                .spawn(move || reactor.run())?,
        );
    }
    Ok(ReactorHandle {
        wakers,
        joins,
        injectors,
        stats,
    })
}

/// One registered control-session stream plus its frame decoder.
struct ControlChan {
    /// The back-end this session belongs to (sessions are created in
    /// node order; the index is needed for EOF-driven eviction).
    node: usize,
    stream: mio::net::TcpStream,
    decoder: FrameDecoder,
    /// Cleared on EOF or a framing error; the channel stays in the
    /// vector (token layout is positional) but is ignored thereafter.
    open: bool,
}

/// One event-loop shard: owns its poller, all its registered sources,
/// its timer heap, and its per-node disk schedulers.
struct Reactor {
    /// This shard's index (stable; used for gauge attribution).
    shard: usize,
    poll: Poll,
    /// `fes[0]` — shared node/semantics access (identical across the
    /// tier; per-connection dispatcher calls go through `fes` instead).
    fe: Arc<FrontEnd>,
    /// Every front-end instance; a connection's dispatcher calls go
    /// through `fes[c.fe_idx]` (the instance the Vip admitted it to).
    fes: Vec<Arc<FrontEnd>>,
    /// The tier router, for releasing admission tickets on close.
    vip: Option<Arc<Vip>>,
    store: Arc<ContentStore>,
    stop: Arc<AtomicBool>,
    /// This shard's own front-end accept sockets (reuseport group
    /// members, or empty in acceptor-handoff fallback mode).
    listeners: Vec<mio::net::TcpListener>,
    /// First peer-listener token: `LISTENER_BASE + listeners.len()`.
    peer_base: usize,
    /// This shard's share of the back-ends' lateral-server listeners
    /// (`(node, listener)`; node `i` lives on shard `i % shards`).
    peer_listeners: Vec<(usize, mio::net::TcpListener)>,
    /// First control-channel token: `peer_base + peer_listeners.len()`.
    control_base: usize,
    /// This shard's share of the registered control sessions (empty
    /// when cache feedback is disabled).
    controls: Vec<ControlChan>,
    /// First slab token: `control_base + controls.len()`.
    slab_base: usize,
    /// Accepted connections handed off by fallback acceptor threads,
    /// tagged with their admitted front-end and tier ticket.
    inbox: InjectorQueue,
    /// Shared live-source gauges (this shard writes `shards[shard]`).
    stats: Arc<ReactorStats>,
    slots: Vec<SlabSlot>,
    free: Vec<usize>,
    timers: BinaryHeap<TimerEntry>,
    next_timer_id: u64,
    disks: Vec<DiskSched>,
    /// Single-flight coalescing enabled (`ProtoConfig::coalesce_misses`).
    coalesce: bool,
    /// Zero-copy staging enabled (`ProtoConfig::zero_copy`).
    zero_copy: bool,
    /// In-flight coalesced lateral fetches this shard leads, keyed by
    /// `(remote node, target)`: the parked waiters resolve (or fail
    /// over) together with the flight leader. Flight scope is one
    /// shard, like the disk schedulers — cross-shard duplicate fetches
    /// remain possible and are the documented sharding approximation.
    lateral_flights: HashMap<(usize, TargetId), Vec<LateralJob>>,
    /// Idle lateral-session slab indices, per peer node.
    idle_peers: Vec<Vec<usize>>,
    /// Lateral sessions to drive after the current event finishes: a
    /// session that paused its reads (splice backpressure) cannot wake
    /// itself, and the client drain that frees the room may run while
    /// the client slot is checked out — driving the session inline
    /// there could re-enter that checkout, so it is queued instead and
    /// drained from the loop, where no slot is held.
    pending_pumps: Vec<usize>,
    peer_addrs: Vec<SocketAddr>,
    semantics: ForwardSemantics,
    migration_delay: Duration,
    read_timeout: Duration,
    peer_pool_cap: usize,
    last_sweep: Instant,
}

/// A complete `200 OK` staged for write-out. With `zero_copy` (the
/// default) the entry holds the serialized head plus the *shared* body
/// slice — the body is never copied into a contiguous wire buffer;
/// `writev` gathers the pair at send time. Without it the response is
/// flattened whole first (one body memcpy — the copying baseline the
/// zerocopy bench quantifies). The wire bytes are identical either way.
fn ok_state(version: Version, body: Bytes, zero_copy: bool) -> EntryState {
    let resp = Response::ok(version, body);
    if zero_copy {
        EntryState::Ready(resp.head_bytes(), resp.body)
    } else {
        EntryState::Ready(resp.to_bytes(), Bytes::new())
    }
}

/// A `404 Not Found` staging pair.
fn not_found_state(version: Version) -> EntryState {
    let resp = Response::not_found(version);
    EntryState::Ready(resp.head_bytes(), resp.body)
}

/// What a [`Reactor::pump_peer`] pass concluded about a session.
enum Pump {
    /// Buffered bytes exhausted; read more from the socket.
    More,
    /// The splice target is full: stop reading until the client drains.
    Paused,
    /// The session must close.
    Dead,
}

/// Capacity of a splice target (see [`Reactor::splice_room`]).
enum Room {
    /// Up to this many more bytes may be appended now.
    Available(usize),
    /// The entry's chunk buffer is at `HIGH_WATER`; pause the feed.
    Blocked,
    /// The client (or its streaming entry) is gone; discard the bytes.
    Gone,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let timeout = self.poll_timeout();
            if self.poll.poll(&mut events, Some(timeout)).is_err() {
                // EBADF etc. cannot happen while we own the fds; treat a
                // polling failure as fatal and drain.
                self.teardown();
                return;
            }
            if self.stop.load(Ordering::Relaxed) {
                self.teardown();
                return;
            }
            for ev in events.iter() {
                let Token(t) = ev.token();
                if t == WAKER.0 {
                    continue; // inbox drained below, stop checked above
                } else if t < self.peer_base {
                    self.accept_all(t - LISTENER_BASE);
                } else if t < self.control_base {
                    self.accept_peers(t - self.peer_base);
                } else if t < self.slab_base {
                    self.drain_control(t - self.control_base);
                } else {
                    self.handle_slot(t - self.slab_base);
                }
            }
            self.drain_inbox();
            self.fire_timers();
            self.drain_pumps();
            self.maybe_sweep_idle();
            self.stats.shards[self.shard]
                .timers
                .store(self.timers.len(), Ordering::Relaxed);
        }
    }

    /// Next poll timeout: the earliest timer deadline, capped by the
    /// idle-sweep tick.
    fn poll_timeout(&self) -> Duration {
        let tick = Duration::from_millis(200);
        match self.timers.peek() {
            Some(t) => t.at.saturating_duration_since(Instant::now()).min(tick),
            None => tick,
        }
    }

    fn schedule(&mut self, at: Instant, kind: Timer) {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.timers.push(TimerEntry { at, id, kind });
    }

    // ---- slab -----------------------------------------------------------

    fn insert_slot(&mut self, slot: Slot) -> usize {
        self.stats.shards[self.shard]
            .sources
            .fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = self.free.pop() {
            self.slots[idx].val = Some(slot);
            idx
        } else {
            self.slots.push(SlabSlot {
                gen: 0,
                val: Some(slot),
            });
            self.slots.len() - 1
        }
    }

    fn slot_ref(&self, idx: usize) -> SlotRef {
        SlotRef {
            idx,
            gen: self.slots[idx].gen,
        }
    }

    /// Frees a slot: bumps the generation (invalidating outstanding
    /// [`SlotRef`]s) and recycles the index.
    fn free_slot(&mut self, idx: usize) {
        self.stats.shards[self.shard]
            .sources
            .fetch_sub(1, Ordering::Relaxed);
        self.slots[idx].gen += 1;
        self.slots[idx].val = None;
        self.free.push(idx);
    }

    // ---- accept ---------------------------------------------------------

    /// The shard's `pending_body_bytes` handle a new connection's output
    /// queue mirrors itself into.
    fn body_gauge(&self) -> Arc<AtomicUsize> {
        self.stats.shards[self.shard].pending_body_bytes.clone()
    }

    fn accept_all(&mut self, listener: usize) {
        loop {
            match self.listeners[listener].accept() {
                Ok((stream, _)) => {
                    let gauge = self.body_gauge();
                    self.register_client(ClientConn::new(stream, gauge));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient accept failure; retry on next event
            }
        }
    }

    /// Accepts lateral-fetch connections on one of this shard's peer
    /// listeners; they serve on that listener's node, event-driven.
    fn accept_peers(&mut self, idx: usize) {
        loop {
            match self.peer_listeners[idx].1.accept() {
                Ok((stream, _)) => {
                    let node = self.peer_listeners[idx].0;
                    let gauge = self.body_gauge();
                    self.register_client(ClientConn::peer_server(stream, node, gauge));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Registers an accepted (client or peer-server) connection in the
    /// slab.
    fn register_client(&mut self, conn: ClientConn) {
        let _ = conn.stream.set_nodelay(true);
        let idx = self.insert_slot(Slot::Client(conn));
        let Some(Slot::Client(c)) = self.slots[idx].val.as_mut() else {
            unreachable!("just inserted")
        };
        if self
            .poll
            .registry()
            .register(
                &mut c.stream,
                Token(self.slab_base + idx),
                Interest::READABLE,
            )
            .is_err()
        {
            self.free_slot(idx);
        }
    }

    /// Registers connections handed off by fallback acceptor threads.
    fn drain_inbox(&mut self) {
        loop {
            let Some((stream, fe_idx, vip_conn)) = self.inbox.lock().pop_front() else {
                return;
            };
            let stream = mio::net::TcpStream::from_std(stream);
            let gauge = self.body_gauge();
            self.register_client(ClientConn::admitted(stream, fe_idx, vip_conn, gauge));
        }
    }

    // ---- control sessions -----------------------------------------------

    /// Drains one control session as far as readiness allows, applying
    /// every decoded frame to every front-end — the reactor-side
    /// analogue of the thread model's blocking per-node control reader
    /// (feedback describes the node's cache, which all the tier's
    /// dispatchers decide against). A session that dies while the
    /// cluster is not shutting down is a node-failure signal: the
    /// node's believed mappings are evicted from every front-end.
    fn drain_control(&mut self, idx: usize) {
        // Field-split the borrows: the channel is driven mutably while
        // frames are applied through `fes` and deregistration goes
        // through `poll` — disjoint fields of `self`.
        let Reactor {
            controls,
            fes,
            poll,
            stop,
            ..
        } = self;
        let Some(chan) = controls.get_mut(idx) else {
            return;
        };
        if !chan.open {
            return;
        }
        // Closes the channel; outside a clean shutdown this is a crash
        // EOF (or a poisoned stream) and the node's mappings go with it.
        let fail = |chan: &mut ControlChan| {
            chan.open = false;
            let _ = poll.registry().deregister(&mut chan.stream);
            if !stop.load(Ordering::Relaxed) {
                for fe in fes.iter() {
                    fe.evict_node(NodeId(chan.node));
                }
            }
        };
        let mut buf = [0u8; 16 * 1024];
        loop {
            match chan.stream.read(&mut buf) {
                Ok(0) => {
                    // Node side closed while the cluster is live: the
                    // node is gone (clean shutdown never reaches here —
                    // the loop exits on the stop flag first).
                    fail(chan);
                    return;
                }
                Ok(n) => {
                    chan.decoder.feed(&buf[..n]);
                    loop {
                        match chan.decoder.next() {
                            Ok(Some(msg)) => {
                                for fe in fes.iter() {
                                    fe.apply_control(msg.clone());
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Framing has no resync point; treat a
                                // poisoned session like a dead node.
                                fail(chan);
                                return;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fail(chan);
                    return;
                }
            }
        }
    }

    // ---- event dispatch -------------------------------------------------

    /// Checks a slot out of the slab, drives it, and puts it back or
    /// releases it. The checkout makes the borrow explicit: while a
    /// slot is driven, every other slot (and the schedulers) remain
    /// reachable through `&mut self` for deliveries and new sessions.
    fn handle_slot(&mut self, idx: usize) {
        let Some(slot) = self.slots.get_mut(idx).and_then(|s| s.val.take()) else {
            return; // stale event for a freed slot
        };
        match slot {
            Slot::Client(mut c) => {
                if self.drive_client(idx, &mut c) {
                    self.slots[idx].val = Some(Slot::Client(c));
                } else {
                    self.release_client(idx, c);
                }
            }
            Slot::Peer(mut p) => {
                if self.drive_peer(idx, &mut p) {
                    self.slots[idx].val = Some(Slot::Peer(p));
                } else {
                    self.release_peer(idx, p);
                }
            }
        }
    }

    // ---- client & peer-server connections -------------------------------

    /// Reads, parses, decides, serves, and writes one connection as far
    /// as readiness allows. Returns whether the slot stays alive.
    fn drive_client(&mut self, idx: usize, c: &mut ClientConn) -> bool {
        c.last_activity = Instant::now();
        loop {
            match c.read_into_parser() {
                Ok(true) => {
                    if self.process_available(idx, c).is_err() {
                        // Parse error: stop reading, serve what is already
                        // pipelined, then close.
                        c.eof = true;
                        c.close_after_drain = true;
                        break;
                    }
                    // Keep reading until WouldBlock/EOF/backpressure.
                }
                Ok(false) => break,
                Err(_) => return false, // connection reset
            }
        }
        self.advance_client(idx, c)
    }

    /// Drains complete requests from the parser and turns them into
    /// pipeline entries.
    fn process_available(
        &mut self,
        idx: usize,
        c: &mut ClientConn,
    ) -> Result<(), phttp_http::ParseError> {
        loop {
            if c.close_after_drain {
                // Mirrors the thread path: once a non-keep-alive request
                // (or EOF) ends the logical connection, later pipelined
                // requests are not served.
                return Ok(());
            }
            let batch = c.parser.drain()?;
            if batch.is_empty() {
                return Ok(());
            }
            if c.peer_server {
                self.process_peer_batch(idx, c, batch);
            } else {
                self.process_batch(idx, c, batch);
            }
        }
    }

    /// The inline analogue of the thread path's handler loop body: the
    /// first request drives the content-based handoff, every subsequent
    /// drained batch is decided in one `assign_batch` call.
    fn process_batch(&mut self, idx: usize, c: &mut ClientConn, mut batch: Vec<Request>) {
        let me = self.slot_ref(idx);
        if c.conn_id.is_none() {
            let first = batch.remove(0);
            let Some(target) = self.store.lookup(&first.uri) else {
                let seq = c.alloc_seq();
                c.push_entry(seq, not_found_state(first.version));
                c.close_after_drain = true;
                return;
            };
            let conn = self.fes[c.fe_idx].alloc_conn();
            let node = self.fes[c.fe_idx].open_connection(conn, target);
            c.conn_id = Some(conn);
            c.node = node.0;
            // Handoff complete: the first request is always served by the
            // chosen node.
            let seq = c.alloc_seq();
            let state = self.serve_on(me, seq, c.node, target, first.version);
            c.push_entry(seq, state);
            if !first.keep_alive() {
                c.close_after_drain = true;
                return;
            }
            if batch.is_empty() {
                return;
            }
        }
        let conn = c.conn_id.expect("handoff done above");

        // One dispatcher call for the whole pipelined batch — the same
        // single connection-shard visit and grouped mapping-shard locks
        // as the thread path, now running inline on the event loop.
        let targets: Vec<Option<TargetId>> =
            batch.iter().map(|r| self.store.lookup(&r.uri)).collect();
        let known: Vec<TargetId> = targets.iter().filter_map(|&t| t).collect();
        let assignments = self.fes[c.fe_idx].assign_batch(conn, &known);
        let mut next_assignment = assignments.into_iter();

        for (req, target) in batch.iter().zip(&targets) {
            let Some(target) = *target else {
                let seq = c.alloc_seq();
                c.push_entry(seq, not_found_state(req.version));
                continue;
            };
            let assignment = next_assignment.next().expect("one assignment per target");
            let seq = c.alloc_seq();
            let state = match assignment {
                Assignment::Local => self.serve_on(me, seq, c.node, target, req.version),
                Assignment::Remote(k) if self.semantics == ForwardSemantics::Migrate => {
                    // The dispatcher re-homed the connection: later
                    // requests in this batch serve on node k, and this
                    // request serves there too once the emulated handoff
                    // protocol delay elapses.
                    c.node = k.0;
                    self.schedule(
                        Instant::now() + self.migration_delay,
                        Timer::MigrateDone {
                            conn: me,
                            seq,
                            to: k.0,
                            target,
                            version: req.version,
                        },
                    );
                    EntryState::Migrating
                }
                Assignment::Remote(k) => self.issue_lateral(
                    LateralJob {
                        conn: me,
                        seq,
                        target,
                        version: req.version,
                        handler: c.node,
                    },
                    k,
                ),
            };
            c.push_entry(seq, state);
            if !req.keep_alive() {
                c.close_after_drain = true;
                break;
            }
        }
    }

    /// The peer-server analogue of [`process_batch`]: every request
    /// serves on the listener's node — no handoff, no dispatcher, same
    /// strict response ordering. Mirrors the thread model's
    /// `serve_peer_connection` loop body, including its per-request
    /// `lateral_in` accounting.
    fn process_peer_batch(&mut self, idx: usize, c: &mut ClientConn, batch: Vec<Request>) {
        let me = self.slot_ref(idx);
        let node_idx = c.node;
        for req in batch {
            let Some(target) = self.store.lookup(&req.uri) else {
                let seq = c.alloc_seq();
                c.push_entry(seq, not_found_state(req.version));
                continue;
            };
            if self.fe.nodes()[node_idx].take_lateral_fault() {
                // Injected fault: die like a crashed lateral server —
                // drop everything owed, respond to nothing. The fetcher
                // sees EOF mid-fetch and must degrade to local service.
                c.entries.clear();
                c.out.clear();
                c.eof = true;
                c.close_after_drain = true;
                return;
            }
            self.fe.nodes()[node_idx]
                .stats
                .lateral_in
                .fetch_add(1, Ordering::Relaxed);
            let seq = c.alloc_seq();
            let state = self.serve_on(me, seq, node_idx, target, req.version);
            c.push_entry(seq, state);
        }
    }

    /// Serves `target` on node `node_idx` without blocking: a cache hit
    /// produces the response now; a miss queues on the shard's disk
    /// scheduler for that node and resolves slot `seq` when the
    /// read-time deadline fires.
    fn serve_on(
        &mut self,
        conn: SlotRef,
        seq: u64,
        node_idx: usize,
        target: TargetId,
        version: Version,
    ) -> EntryState {
        // Single-flight: a read of this target already in flight (or
        // queued) on this shard's scheduler absorbs the request as a
        // delayed hit — no second disk read, no disk-queue depth. The
        // flight is checked before the cache probe: within a shard the
        // two never coexist (the completion inserts into the cache and
        // retires the flight in one handler), and in the cross-path
        // race (another shard or a lateral serve inserted meanwhile)
        // parking is still correct — same bytes, one timer later.
        if self.coalesce {
            if let Some(flight) = self.disks[node_idx].find_mut(target) {
                flight.waiters.push(Waiter { conn, seq, version });
                self.fe.nodes()[node_idx].note_coalesced_serve(target);
                return EntryState::Disk;
            }
        }
        // A hit serves the cache's own slice (a refcount bump, not a
        // copy); the store fallback inside `begin_serve_body` covers
        // the raced-eviction window.
        if let Some(body) = self.fe.nodes()[node_idx].begin_serve_body(target) {
            ok_state(version, body, self.zero_copy)
        } else {
            self.disk_enqueue(
                node_idx,
                DiskJob {
                    conn,
                    seq,
                    target,
                    version,
                    waiters: Vec::new(),
                },
            );
            EntryState::Disk
        }
    }

    /// Stages and writes ready responses, recomputes poll interests,
    /// and decides whether the connection closes. Returns liveness.
    fn advance_client(&mut self, idx: usize, c: &mut ClientConn) -> bool {
        loop {
            c.stage_ready();
            if c.out.is_empty() {
                break; // nothing (more) writable right now
            }
            if c.write_out().is_err() {
                return false;
            }
            if !c.out.is_empty() {
                break; // socket would block; WRITABLE interest below
            }
        }
        // If the front entry is a splice with room again, re-arm its
        // feeding session — it pauses its own reads on backpressure and
        // cannot wake itself when the client drains.
        let resume = match c.entries.front() {
            Some(Entry {
                state: EntryState::Streaming(s),
                ..
            }) if !s.finished_receiving()
                && s.buffered < HIGH_WATER
                && c.out.len() < HIGH_WATER =>
            {
                Some(s.peer)
            }
            _ => None,
        };
        if let Some(peer) = resume {
            self.queue_pump(peer);
        }
        if (c.close_after_drain || c.eof) && c.drained() {
            return false;
        }
        let mut want = Interest::NONE;
        if !c.eof && !c.close_after_drain && !c.backpressured() {
            want = want | Interest::READABLE;
        }
        if !c.out.is_empty() {
            want = want | Interest::WRITABLE;
        }
        if want != c.interest {
            if self
                .poll
                .registry()
                .reregister(&mut c.stream, Token(self.slab_base + idx), want)
                .is_err()
            {
                return false;
            }
            c.interest = want;
        }
        true
    }

    /// Closes a client (or peer-server) slot: unwinds the dispatcher
    /// connection exactly once and frees the slab entry. Outstanding
    /// disk/lateral completions for it die against the generation check.
    fn release_client(&mut self, idx: usize, mut c: ClientConn) {
        // Splices feeding this connection may have paused their reads
        // waiting for it to drain; wake them so they run their streams
        // dry (discarding against the bumped generation) and retire
        // their flights instead of idling disarmed forever.
        for e in c.entries.iter() {
            if let EntryState::Streaming(s) = &e.state {
                self.queue_pump(s.peer);
            }
        }
        if let Some(conn) = c.conn_id {
            self.fes[c.fe_idx].close_connection(conn);
        }
        // The connection has fully unwound on its front-end; hand the
        // admission ticket back so the tier's forwarding route goes too.
        if let (Some(vip), Some(ticket)) = (&self.vip, c.vip_conn) {
            vip.release(c.fe_idx, ticket);
        }
        let _ = self.poll.registry().deregister(&mut c.stream);
        self.free_slot(idx);
    }

    /// Resolves pipeline slot `seq` of a (possibly already gone)
    /// connection and pushes the pipeline forward.
    fn deliver(&mut self, conn: SlotRef, seq: u64, state: EntryState) {
        let Some(slab) = self.slots.get_mut(conn.idx) else {
            return;
        };
        if slab.gen != conn.gen {
            return; // the connection died; completion outlived it
        }
        let Some(slot) = slab.val.take() else {
            return; // being driven higher up the stack (cannot happen: single-threaded)
        };
        match slot {
            Slot::Client(mut c) => {
                c.resolve(seq, state);
                if self.advance_client(conn.idx, &mut c) {
                    self.slots[conn.idx].val = Some(Slot::Client(c));
                } else {
                    self.release_client(conn.idx, c);
                }
            }
            other => {
                self.slots[conn.idx].val = Some(other);
            }
        }
    }

    // ---- disks ----------------------------------------------------------

    fn disk_enqueue(&mut self, node_idx: usize, job: DiskJob) {
        if self.disks[node_idx].busy.is_none() {
            self.disk_start(node_idx, job);
        } else {
            self.disks[node_idx].queue.push_back(job);
        }
    }

    fn disk_start(&mut self, node_idx: usize, job: DiskJob) {
        let at = Instant::now() + self.fe.nodes()[node_idx].disk_read_time(job.target);
        self.disks[node_idx].busy = Some(job);
        self.schedule(at, Timer::DiskDone(node_idx));
    }

    fn disk_done(&mut self, node_idx: usize) {
        let Some(job) = self.disks[node_idx].busy.take() else {
            return;
        };
        // One cache insert for the whole flight; the MAD sample scales
        // with the waiters this single read unblocked. Leader and
        // waiters all serve clones of the slice that was just admitted
        // to the cache — one allocation for the entire flight.
        let body =
            self.fe.nodes()[node_idx].finish_disk_read_shared(job.target, job.waiters.len() as u64);
        self.deliver(
            job.conn,
            job.seq,
            ok_state(job.version, body.clone(), self.zero_copy),
        );
        // Waiters whose connection died meanwhile are dropped by
        // `deliver`'s generation check — the flight completes for the
        // survivors either way.
        for w in job.waiters {
            self.deliver(
                w.conn,
                w.seq,
                ok_state(w.version, body.clone(), self.zero_copy),
            );
        }
        if let Some(next) = self.disks[node_idx].queue.pop_front() {
            self.disk_start(node_idx, next);
        }
    }

    // ---- lateral fetches ------------------------------------------------

    /// Issues a lateral fetch for a remote assignment, preferring a
    /// pooled idle session; falls back to serving locally (like the
    /// thread path) if no peer session can be set up.
    fn issue_lateral(&mut self, job: LateralJob, remote: NodeId) -> EntryState {
        // Single-flight: an in-flight fetch of this target from this
        // remote absorbs the request — it parks with the flight and is
        // resolved (or failed over) with the leader. Only the leader
        // pays `lateral_out` and touches the wire.
        if self.coalesce {
            if let Some(waiters) = self.lateral_flights.get_mut(&(remote.0, job.target)) {
                waiters.push(job);
                self.fe.nodes()[job.handler].note_coalesced_lateral();
                return EntryState::Lateral;
            }
        }
        self.fe.nodes()[job.handler]
            .stats
            .lateral_out
            .fetch_add(1, Ordering::Relaxed);
        let target = job.target;
        let mut job = job;
        // Try pooled idle sessions first (newest first — most recently
        // proven alive).
        while let Some(pidx) = self.idle_peers[remote.0].pop() {
            match self.peer_send(pidx, job) {
                Ok(()) => return self.open_lateral_flight(remote.0, target),
                Err(j) => job = j, // stale session released; try the next
            }
        }
        // No pooled session: dial a fresh one. A dial failure is the
        // first of the mid-job peer failures that must degrade to local
        // service rather than strand the pipeline slot.
        match self.connect_peer(remote.0) {
            Ok(pidx) => match self.peer_send(pidx, job) {
                Ok(()) => self.open_lateral_flight(remote.0, target),
                Err(j) => self.lateral_fallback_state(j),
            },
            Err(_) => self.lateral_fallback_state(job),
        }
    }

    /// Registers a just-issued lateral fetch as a flight later misses
    /// can park on (no-op with coalescing off).
    fn open_lateral_flight(&mut self, remote: usize, target: TargetId) -> EntryState {
        if self.coalesce {
            self.lateral_flights.insert((remote, target), Vec::new());
        }
        EntryState::Lateral
    }

    /// The serve-locally degradation the thread path applies when the
    /// peer path fails, as an [`EntryState`] (used while the owning
    /// client is checked out, so it cannot go through [`deliver`]).
    fn lateral_fallback_state(&mut self, job: LateralJob) -> EntryState {
        self.serve_on(job.conn, job.seq, job.handler, job.target, job.version)
    }

    /// Async variant of the fallback, for failures observed on peer
    /// session events (the owning client is in the slab then).
    fn lateral_fallback(&mut self, job: LateralJob) {
        let state = self.lateral_fallback_state(job);
        self.deliver(job.conn, job.seq, state);
    }

    /// A flight leader's lateral fetch failed: every request parked on
    /// the flight fails over to local service along with the leader —
    /// none of them may strand (their fetch will never arrive) or
    /// re-dial the peer that just failed.
    fn fail_lateral_flight(&mut self, remote: usize, leader: LateralJob) {
        let waiters = self
            .lateral_flights
            .remove(&(remote, leader.target))
            .unwrap_or_default();
        self.lateral_fallback(leader);
        for w in waiters {
            self.lateral_fallback(w);
        }
    }

    fn connect_peer(&mut self, remote: usize) -> io::Result<usize> {
        let stream = mio::net::TcpStream::connect(self.peer_addrs[remote])?;
        stream.set_nodelay(true)?;
        let idx = self.insert_slot(Slot::Peer(PeerSession::new(stream, remote)));
        let Some(Slot::Peer(p)) = self.slots[idx].val.as_mut() else {
            unreachable!("just inserted")
        };
        if let Err(e) = self.poll.registry().register(
            &mut p.stream,
            Token(self.slab_base + idx),
            Interest::READABLE,
        ) {
            self.free_slot(idx);
            return Err(e);
        }
        Ok(idx)
    }

    /// Attaches `job` to session `pidx` and writes its request. On a
    /// hard failure the session is released and the job handed back.
    fn peer_send(&mut self, pidx: usize, job: LateralJob) -> Result<(), LateralJob> {
        // An idle-pool index must still hold an idle peer session;
        // anything else is stale and must NOT be checked out (the slot
        // may have been recycled for a live connection — taking it out
        // to pattern-match would silently drop that connection).
        match self.slots.get(pidx).and_then(|s| s.val.as_ref()) {
            Some(Slot::Peer(p)) if p.job.is_none() => {}
            _ => return Err(job),
        }
        let Some(Slot::Peer(mut p)) = self.slots[pidx].val.take() else {
            unreachable!("checked above")
        };
        p.last_activity = Instant::now();
        let req = Request::get(ContentStore::uri(job.target), Version::Http11);
        p.out.extend_from_slice(&req.to_bytes());
        p.job = Some(job);
        if self.flush_peer(pidx, &mut p).is_err() {
            // Write failure mid-job: hand the job back (the caller
            // degrades it to local service) and drop the session.
            let job = p.job.take().expect("just attached");
            let _ = self.poll.registry().deregister(&mut p.stream);
            self.free_slot(pidx);
            return Err(job);
        }
        self.slots[pidx].val = Some(Slot::Peer(p));
        Ok(())
    }

    /// Writes a session's pending request bytes and refreshes its
    /// interests. `Err` means the session is unusable.
    fn flush_peer(&mut self, pidx: usize, p: &mut PeerSession) -> io::Result<()> {
        loop {
            if p.out.is_empty() {
                break;
            }
            match p.stream.write(&p.out) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted no bytes",
                    ))
                }
                Ok(n) => bytes::Buf::advance(&mut p.out, n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let want = if p.out.is_empty() {
            Interest::READABLE
        } else {
            Interest::READABLE | Interest::WRITABLE
        };
        if want != p.interest {
            self.poll
                .registry()
                .reregister(&mut p.stream, Token(self.slab_base + pidx), want)?;
            p.interest = want;
        }
        Ok(())
    }

    /// Handles readiness on a lateral session: flushes pending request
    /// bytes, then alternates pumping buffered response bytes toward
    /// the client with socket reads. Returns liveness; a dead session's
    /// in-flight job falls back to local service in [`release_peer`].
    fn drive_peer(&mut self, idx: usize, p: &mut PeerSession) -> bool {
        p.last_activity = Instant::now();
        if self.flush_peer(idx, p).is_err() {
            return false;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.pump_peer(idx, p) {
                Pump::Dead => return false,
                Pump::Paused => return self.pause_peer(idx, p),
                Pump::More => {}
            }
            match p.stream.read(&mut buf) {
                Ok(0) => return false, // peer closed (idle timeout or death)
                Ok(n) => p.parser.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Consumes the session's parser-buffered response bytes: a `200`
    /// head opens a splice toward the flight leader (the client's
    /// response head goes out before any body byte has arrived), body
    /// bytes splice through as shared slices as they surface, and a
    /// completed stream retires the flight and maybe pools the session.
    fn pump_peer(&mut self, idx: usize, p: &mut PeerSession) -> Pump {
        loop {
            if let Some(st) = p.stream_in.as_mut() {
                if st.remaining > 0 {
                    if p.parser.buffered() == 0 {
                        return Pump::More;
                    }
                    let job = p.job.expect("stream implies job");
                    match self.splice_room(job.conn, job.seq) {
                        Room::Available(room) => {
                            let chunk = p.parser.take_body(st.remaining.min(room));
                            st.remaining -= chunk.len();
                            self.splice_chunk(job.conn, job.seq, chunk);
                        }
                        Room::Blocked => return Pump::Paused,
                        Room::Gone => {
                            // The client died mid-stream: keep draining
                            // the response (discarded) so the session
                            // itself stays usable and its flight retires.
                            let chunk = p.parser.take_body(st.remaining);
                            st.remaining -= chunk.len();
                        }
                    }
                    continue;
                }
                // Every body byte has arrived: the stream is done.
                let st = p.stream_in.take().expect("checked above");
                let job = p.job.take().expect("stream implies job");
                self.finish_stream(p.remote, job);
                // PR 2 anti-desync rule: only keep a stream whose
                // parser consumed exactly its response.
                if !st.keep || p.parser.buffered() != 0 {
                    return Pump::Dead;
                }
                if self.idle_peers[p.remote].len() >= self.peer_pool_cap {
                    return Pump::Dead;
                }
                self.idle_peers[p.remote].push(idx);
                continue;
            }
            if p.job.is_none() {
                // Pooled/idle: any unsolicited byte poisons the stream.
                return if p.parser.buffered() == 0 {
                    Pump::More
                } else {
                    Pump::Dead
                };
            }
            match p.parser.next_head() {
                Ok(Some(head)) => {
                    if head.status != 200 {
                        // Thread path: a non-200 is an error — serve
                        // locally (the whole flight) and do not pool.
                        let job = p.job.take().expect("checked above");
                        self.fail_lateral_flight(p.remote, job);
                        return Pump::Dead;
                    }
                    let job = *p.job.as_ref().expect("checked above");
                    p.stream_in = Some(StreamIn {
                        remaining: head.body_len,
                        keep: head.keep_alive(),
                    });
                    let me = self.slot_ref(idx);
                    self.begin_splice(me, job, head.body_len);
                }
                Ok(None) => return Pump::More,
                // Garbage from the peer; the flight fails over in
                // `release_peer` (`stream_in` is still `None`).
                Err(_) => return Pump::Dead,
            }
        }
    }

    /// Parks a session whose splice target is full: reads stay disarmed
    /// until the draining client queues a pump. Returns liveness.
    fn pause_peer(&mut self, idx: usize, p: &mut PeerSession) -> bool {
        let want = if p.out.is_empty() {
            Interest::NONE
        } else {
            Interest::WRITABLE
        };
        if want != p.interest {
            if self
                .poll
                .registry()
                .reregister(&mut p.stream, Token(self.slab_base + idx), want)
                .is_err()
            {
                return false;
            }
            p.interest = want;
        }
        true
    }

    /// Queues a lateral session for a drive pass once the current event
    /// finishes (driving it inline could re-enter a checked-out slot).
    fn queue_pump(&mut self, peer: SlotRef) {
        let Some(slab) = self.slots.get(peer.idx) else {
            return;
        };
        if slab.gen != peer.gen {
            return;
        }
        if !self.pending_pumps.contains(&peer.idx) {
            self.pending_pumps.push(peer.idx);
        }
    }

    /// Drives every queued session from the loop, where no slot is
    /// checked out. `flush_peer` at the head of the drive re-arms the
    /// paused reads; stale indices die against the slab checkout.
    fn drain_pumps(&mut self) {
        while let Some(idx) = self.pending_pumps.pop() {
            self.handle_slot(idx);
        }
    }

    /// Opens a splice: resolves the flight leader's pipeline slot to a
    /// streaming entry whose first staged chunk is the client's
    /// serialized response head — on the wire before the body exists on
    /// this node.
    fn begin_splice(&mut self, session: SlotRef, job: LateralJob, body_len: usize) {
        let head = Response::ok_head(job.version, body_len);
        self.deliver(
            job.conn,
            job.seq,
            EntryState::Streaming(StreamEntry::begin(head, body_len, session)),
        );
    }

    /// How many more spliced bytes the leader's entry can absorb.
    fn splice_room(&self, conn: SlotRef, seq: u64) -> Room {
        let Some(slab) = self.slots.get(conn.idx) else {
            return Room::Gone;
        };
        if slab.gen != conn.gen {
            return Room::Gone;
        }
        let Some(Slot::Client(c)) = slab.val.as_ref() else {
            return Room::Gone;
        };
        let Some(front_seq) = c.entries.front().map(|e| e.seq) else {
            return Room::Gone;
        };
        let Some(off) = seq.checked_sub(front_seq) else {
            return Room::Gone;
        };
        match c.entries.get(off as usize).map(|e| &e.state) {
            Some(EntryState::Streaming(s)) => {
                let room = HIGH_WATER.saturating_sub(s.buffered);
                if room == 0 {
                    Room::Blocked
                } else {
                    Room::Available(room)
                }
            }
            _ => Room::Gone,
        }
    }

    /// Appends a received body slice to the leader's streaming entry
    /// and pushes the connection forward (stage + write + interests).
    fn splice_chunk(&mut self, conn: SlotRef, seq: u64, chunk: Bytes) {
        let Some(slab) = self.slots.get_mut(conn.idx) else {
            return;
        };
        if slab.gen != conn.gen {
            return;
        }
        let Some(slot) = slab.val.take() else {
            return;
        };
        match slot {
            Slot::Client(mut c) => {
                if let Some(front_seq) = c.entries.front().map(|e| e.seq) {
                    if let Some(off) = seq.checked_sub(front_seq) {
                        if let Some(Entry {
                            state: EntryState::Streaming(s),
                            ..
                        }) = c.entries.get_mut(off as usize)
                        {
                            s.push_body(chunk);
                        }
                    }
                }
                if self.advance_client(conn.idx, &mut c) {
                    self.slots[conn.idx].val = Some(Slot::Client(c));
                } else {
                    self.release_client(conn.idx, c);
                }
            }
            other => {
                self.slots[conn.idx].val = Some(other);
            }
        }
    }

    /// A spliced response has fully arrived: retire the flight and
    /// resolve any parked waiters. Waiters never saw the stream, but
    /// bodies are pure functions of the target, so their copy is
    /// generated locally — one allocation shared across all of them —
    /// instead of being accumulated from the wire.
    fn finish_stream(&mut self, remote: usize, job: LateralJob) {
        let waiters = self
            .lateral_flights
            .remove(&(remote, job.target))
            .unwrap_or_default();
        if waiters.is_empty() {
            return;
        }
        let body = self.store.body(job.target);
        for w in waiters {
            self.deliver(
                w.conn,
                w.seq,
                ok_state(w.version, body.clone(), self.zero_copy),
            );
        }
    }

    /// Mid-stream peer death: the leader cannot fall back to a fresh
    /// local response — its head and a body prefix are already on the
    /// wire — so the remainder is synthesized from the local store
    /// (bodies are pure functions of the target: the spliced prefix
    /// plus the synthesized suffix is byte-identical to either source
    /// alone). Parked waiters saw nothing and fail over normally.
    fn abort_stream(&mut self, remote: usize, leader: LateralJob) {
        let waiters = self
            .lateral_flights
            .remove(&(remote, leader.target))
            .unwrap_or_default();
        self.complete_stream_locally(leader);
        for w in waiters {
            self.lateral_fallback(w);
        }
    }

    /// Completes a truncated splice from the store (see
    /// [`abort_stream`](Self::abort_stream)).
    fn complete_stream_locally(&mut self, job: LateralJob) {
        let Some(slab) = self.slots.get_mut(job.conn.idx) else {
            return;
        };
        if slab.gen != job.conn.gen {
            return;
        }
        let Some(slot) = slab.val.take() else {
            return;
        };
        match slot {
            Slot::Client(mut c) => {
                if let Some(front_seq) = c.entries.front().map(|e| e.seq) {
                    if let Some(off) = job.seq.checked_sub(front_seq) {
                        if let Some(Entry {
                            state: EntryState::Streaming(s),
                            ..
                        }) = c.entries.get_mut(off as usize)
                        {
                            if !s.finished_receiving() {
                                let rest = self.store.body(job.target).slice(s.pushed..);
                                s.push_body(rest);
                            }
                        }
                    }
                }
                if self.advance_client(job.conn.idx, &mut c) {
                    self.slots[job.conn.idx].val = Some(Slot::Client(c));
                } else {
                    self.release_client(job.conn.idx, c);
                }
            }
            other => {
                self.slots[job.conn.idx].val = Some(other);
            }
        }
    }

    /// Closes a lateral session; an in-flight fetch degrades to local
    /// service exactly as the thread path's error fallback does —
    /// together with every request parked on its flight. A fetch that
    /// died *mid-splice* instead completes the leader from the store
    /// ([`abort_stream`](Self::abort_stream)): its response prefix is
    /// already on the wire.
    fn release_peer(&mut self, idx: usize, mut p: PeerSession) {
        self.idle_peers[p.remote].retain(|&i| i != idx);
        let _ = self.poll.registry().deregister(&mut p.stream);
        self.free_slot(idx);
        if let Some(job) = p.job.take() {
            match p.stream_in.take() {
                Some(_) => self.abort_stream(p.remote, job),
                None => self.fail_lateral_flight(p.remote, job),
            }
        }
    }

    // ---- timers & sweep -------------------------------------------------

    fn fire_timers(&mut self) {
        loop {
            let now = Instant::now();
            match self.timers.peek() {
                Some(t) if t.at <= now => {}
                _ => return,
            }
            let entry = self.timers.pop().expect("peeked above");
            match entry.kind {
                Timer::DiskDone(n) => self.disk_done(n),
                Timer::MigrateDone {
                    conn,
                    seq,
                    to,
                    target,
                    version,
                } => {
                    // The emulated handoff exchange has been paid; the
                    // connection now serves from node `to`.
                    let node = &self.fe.nodes()[to];
                    node.stats.migrations_in.fetch_add(1, Ordering::Relaxed);
                    let state = self.serve_on(conn, seq, to, target, version);
                    self.deliver(conn, seq, state);
                }
            }
        }
    }

    /// Applies the idle-close rule the thread path gets from its socket
    /// read timeouts: a client/peer-server connection with nothing
    /// pending, or a pooled lateral session with no in-flight fetch,
    /// that has seen no activity for `read_timeout` is closed. This is
    /// also what guarantees the slab drains to zero sources after
    /// traffic stops (the soak-test invariant): pooled lateral sessions
    /// and idle peer-server connections do not linger forever.
    fn maybe_sweep_idle(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < self.read_timeout.min(Duration::from_secs(1)) {
            return;
        }
        self.last_sweep = now;
        for idx in 0..self.slots.len() {
            let timed_out = match &self.slots[idx].val {
                Some(Slot::Client(c)) => {
                    c.drained() && now.duration_since(c.last_activity) > self.read_timeout
                }
                Some(Slot::Peer(p)) => {
                    p.job.is_none() && now.duration_since(p.last_activity) > self.read_timeout
                }
                None => false,
            };
            if !timed_out {
                continue;
            }
            match self.slots[idx].val.take() {
                Some(Slot::Client(c)) => self.release_client(idx, c),
                Some(Slot::Peer(p)) => self.release_peer(idx, p),
                None => unreachable!("matched above"),
            }
        }
    }

    /// Drains every registered connection on shutdown: dispatcher state
    /// unwinds (via `release_client`) before the loop thread exits, so
    /// `Cluster::shutdown` never leaves `active_connections` dangling.
    fn teardown(&mut self) {
        // Parked lateral waiters die with their connections below; do
        // not resurrect them as local serves during teardown.
        self.lateral_flights.clear();
        for idx in 0..self.slots.len() {
            match self.slots[idx].val.take() {
                Some(Slot::Client(c)) => self.release_client(idx, c),
                Some(Slot::Peer(p)) => {
                    // Jobs die with the cluster; do not resurrect them as
                    // local serves during teardown.
                    let mut p = p;
                    p.job = None;
                    self.release_peer(idx, p);
                }
                None => {}
            }
        }
        self.timers.clear();
        self.stats.shards[self.shard]
            .timers
            .store(0, Ordering::Relaxed);
    }
}
