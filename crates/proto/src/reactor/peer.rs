//! Pooled non-blocking lateral-fetch sessions.
//!
//! The thread path keeps per-node pools of *blocking* persistent peer
//! connections ([`crate::node::NodeState::lateral_fetch`]). The reactor
//! replaces them with [`PeerSession`]s driven by the same event loop as
//! the client connections: a session carries at most one in-flight
//! fetch ([`LateralJob`]), writes its request under the loop's
//! backpressure rules, parses the response incrementally, and returns
//! to its peer's idle pool only if the stream is provably clean —
//! keep-alive response and an empty parser, the PR 2 anti-desync rule.

use std::time::Instant;

use bytes::BytesMut;
use mio::Interest;
use phttp_http::{ResponseParser, Version};
use phttp_trace::TargetId;

use super::SlotRef;

/// One lateral fetch in flight on a peer session.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LateralJob {
    /// The client connection (slab index + generation) awaiting the body.
    pub conn: SlotRef,
    /// The pipeline slot awaiting the body.
    pub seq: u64,
    /// The document being fetched.
    pub target: TargetId,
    /// HTTP version of the *client's* request — the response to the
    /// client is built with it, regardless of the HTTP/1.1 peer wire.
    pub version: Version,
    /// Node index of the connection handler (for stats and for the
    /// serve-locally fallback when the peer path fails).
    pub handler: usize,
}

/// Streaming-receive state of an in-flight fetch: set once the 200
/// head has been parsed and splicing toward the client has begun.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamIn {
    /// Body bytes still expected from the peer.
    pub remaining: usize,
    /// Whether the peer's response allows keeping the session
    /// (pool eligibility at completion).
    pub keep: bool,
}

/// A non-blocking persistent connection to one peer's lateral server.
pub(crate) struct PeerSession {
    pub stream: mio::net::TcpStream,
    pub parser: ResponseParser,
    /// Request bytes not yet accepted by the socket.
    pub out: BytesMut,
    /// Peer node index this session dials.
    pub remote: usize,
    /// The single in-flight fetch, if any.
    pub job: Option<LateralJob>,
    /// Set while the in-flight fetch's body is being spliced through
    /// to the client as it arrives.
    pub stream_in: Option<StreamIn>,
    /// Interests currently registered with the poller.
    pub interest: Interest,
    /// Last time the session carried a fetch, for the idle sweep: a
    /// pooled session idle past the read timeout is closed, mirroring
    /// the thread model's peer-side socket timeout reaping its idle
    /// pooled streams.
    pub last_activity: Instant,
}

impl PeerSession {
    pub fn new(stream: mio::net::TcpStream, remote: usize) -> PeerSession {
        PeerSession {
            stream,
            parser: ResponseParser::new(),
            out: BytesMut::new(),
            remote,
            job: None,
            stream_in: None,
            interest: Interest::READABLE,
            last_activity: Instant::now(),
        }
    }
}
