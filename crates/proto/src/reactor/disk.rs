//! Event-driven emulation of each node's single disk spindle.
//!
//! The thread path models a disk as a mutex-serialized `sleep`: one
//! spindle, FIFO-ish service, and a depth counter the extended-LARD
//! policy reads over the control session. Sleeping would stall the
//! reactor's event loop, so here the same model is a deadline: at most
//! one [`DiskJob`] is *busy* per node (its completion scheduled as a
//! reactor timer at `now + read_time`), later misses queue behind it,
//! and the shared [`crate::node::NodeState`] depth counter moves at the
//! same points as the blocking version (incremented when the miss is
//! queued, decremented when the read completes).
//!
//! With N reactor shards each shard owns its own scheduler per node,
//! so a node's spindle can admit up to N concurrent reads — a
//! deliberate approximation (see ARCHITECTURE.md "Reactor sharding"):
//! the depth counter and response bytes stay exact; only emulated
//! latency under cross-shard contention is slightly optimistic.

use std::collections::VecDeque;

use phttp_http::Version;
use phttp_trace::TargetId;

use super::SlotRef;

/// A request parked on another request's in-flight (or queued) read of
/// the same target — a *delayed hit*. It is resolved with its own
/// response when the leader's read completes; a waiter whose connection
/// died in the meantime is dropped by the delivery generation check.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    /// The client connection (slab index + generation) awaiting the body.
    pub conn: SlotRef,
    /// The pipeline slot awaiting the body.
    pub seq: u64,
    /// HTTP version for the eventual response.
    pub version: Version,
}

/// One queued or in-service emulated disk read.
#[derive(Debug, Clone)]
pub(crate) struct DiskJob {
    /// The client connection (slab index + generation) awaiting the body.
    pub conn: SlotRef,
    /// The pipeline slot awaiting the body.
    pub seq: u64,
    /// The document being read.
    pub target: TargetId,
    /// HTTP version for the eventual response.
    pub version: Version,
    /// Requests coalesced onto this read (single-flight mode only;
    /// always empty with coalescing off).
    pub waiters: Vec<Waiter>,
}

/// Per-node FIFO disk scheduler.
#[derive(Debug, Default)]
pub(crate) struct DiskSched {
    /// The read currently holding the spindle; its completion timer is
    /// in the reactor's timer heap.
    pub busy: Option<DiskJob>,
    /// Reads waiting for the spindle.
    pub queue: VecDeque<DiskJob>,
}

impl DiskSched {
    /// The in-flight or queued read of `target`, if any — the flight a
    /// coalesced miss parks on. Linear scan: the queue is bounded by
    /// concurrent missers on one node/shard, and the busy slot is
    /// checked first because it is by far the likeliest match.
    pub fn find_mut(&mut self, target: TargetId) -> Option<&mut DiskJob> {
        if let Some(job) = self.busy.as_mut() {
            if job.target == target {
                return Some(job);
            }
        }
        self.queue.iter_mut().find(|j| j.target == target)
    }
}
