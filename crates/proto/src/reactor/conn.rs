//! Per-connection state machine of the reactor's served connections.
//!
//! A connection is a [`RequestParser`] feeding an in-order pipeline of
//! [`Entry`]s (one per request), plus an output buffer with write
//! backpressure. Entries resolve out of order (disk reads, lateral
//! fetches, and migrations complete whenever their events fire), but
//! response *bytes* leave strictly in request order: only `Ready`
//! entries at the **front** of the pipeline are staged into the output
//! buffer — HTTP/1.1 pipelining's ordering rule.
//!
//! The same machine serves two kinds of inbound connection: **client**
//! connections (requests go through the dispatcher — handoff, batched
//! policy decisions, possible laterals/migrations) and **peer-server**
//! connections (lateral fetches from other nodes' handlers; every
//! request serves on this listener's node, no dispatcher involvement —
//! the event-driven replacement for the thread-per-peer-connection
//! `serve_peer_connection` loop). The roles differ only in how a
//! drained batch turns into pipeline entries; reading, ordering,
//! backpressure, and write-out are shared.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

use bytes::{Buf, Bytes, BytesMut};
use mio::Interest;
use phttp_core::ConnId;
use phttp_http::RequestParser;

/// What a pipeline slot is waiting on (or holding).
#[derive(Debug)]
pub(crate) enum EntryState {
    /// Response wire bytes, ready to be staged for writing.
    Ready(Bytes),
    /// Waiting for this connection's node to finish an emulated disk read.
    Disk,
    /// Waiting for a lateral fetch from a peer node.
    Lateral,
    /// Waiting for the emulated connection-migration delay to elapse.
    Migrating,
}

/// One in-order response pipeline slot.
#[derive(Debug)]
pub(crate) struct Entry {
    /// Identifies the slot across async completions (unique per conn).
    pub seq: u64,
    pub state: EntryState,
}

/// Stop reading new requests while this many response bytes are queued
/// unsent — the reactor's write backpressure bound.
pub(crate) const HIGH_WATER: usize = 256 * 1024;

/// Stop reading new requests while this many pipeline entries are
/// unanswered. `HIGH_WATER` alone only bounds *staged* bytes; a client
/// that pipelines continuously without ever reading responses would
/// otherwise grow the entry queue (each `Ready` slot holding a full
/// serialized response) without bound. The thread path is naturally
/// bounded by its blocking per-response `write_all`; this is the
/// event-loop equivalent.
pub(crate) const MAX_PIPELINE: usize = 256;

/// An inbound connection registered with the reactor: a client
/// connection, or (with [`peer_server`](Self::peer_server) set) a
/// peer-server connection serving lateral fetches.
pub(crate) struct ClientConn {
    pub stream: mio::net::TcpStream,
    pub parser: RequestParser,
    /// `true` for peer-server connections: every request serves on
    /// [`node`](Self::node) (the accepting listener's node) and the
    /// dispatcher is never involved (`conn_id` stays `None`).
    pub peer_server: bool,
    /// Dispatcher connection id; `None` until the first request has
    /// driven the content-based handoff (always `None` for peer-server
    /// connections).
    pub conn_id: Option<ConnId>,
    /// Index of the node currently handling this connection (valid once
    /// `conn_id` is set; re-homed eagerly on migrate decisions). For
    /// peer-server connections, the serving node — fixed at accept.
    pub node: usize,
    /// Which front-end instance dispatches this connection (always 0
    /// without a tier; assigned by the Vip admission otherwise).
    pub fe_idx: usize,
    /// The tier-level admission ticket, released to the Vip when the
    /// connection closes (`None` without a tier, or when the admission
    /// handshake failed and the connection fell through untracked).
    pub vip_conn: Option<ConnId>,
    next_seq: u64,
    /// In-order response pipeline.
    pub entries: VecDeque<Entry>,
    /// Staged wire bytes not yet accepted by the socket.
    pub out: BytesMut,
    /// Interests currently registered with the poller.
    pub interest: Interest,
    /// The client sent EOF: stop reading, serve what was already
    /// received, then close.
    pub eof: bool,
    /// The *logical* connection has ended (non-keep-alive request or
    /// parse error): stop reading, refuse later pipelined requests,
    /// serve what is already in the pipeline, then close. Distinct from
    /// [`eof`](Self::eof), which must not suppress serving.
    pub close_after_drain: bool,
    /// Last socket activity, for the idle-timeout sweep.
    pub last_activity: Instant,
}

impl ClientConn {
    pub fn new(stream: mio::net::TcpStream) -> ClientConn {
        ClientConn {
            stream,
            parser: RequestParser::new(),
            peer_server: false,
            conn_id: None,
            node: 0,
            fe_idx: 0,
            vip_conn: None,
            next_seq: 0,
            entries: VecDeque::new(),
            out: BytesMut::new(),
            interest: Interest::READABLE,
            eof: false,
            close_after_drain: false,
            last_activity: Instant::now(),
        }
    }

    /// An accepted peer-server connection: serves lateral fetches
    /// against `node`'s cache/disk, bypassing the dispatcher.
    pub fn peer_server(stream: mio::net::TcpStream, node: usize) -> ClientConn {
        ClientConn {
            peer_server: true,
            node,
            ..ClientConn::new(stream)
        }
    }

    /// A client connection admitted through the front-end tier: it
    /// dispatches on front-end `fe_idx` and (when the admission
    /// handshake succeeded) carries the Vip ticket to release on close.
    pub fn admitted(
        stream: mio::net::TcpStream,
        fe_idx: usize,
        vip_conn: Option<ConnId>,
    ) -> ClientConn {
        ClientConn {
            fe_idx,
            vip_conn,
            ..ClientConn::new(stream)
        }
    }

    /// Allocates the sequence number for the next pipeline slot.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Appends a pipeline slot.
    pub fn push_entry(&mut self, seq: u64, state: EntryState) {
        self.entries.push_back(Entry { seq, state });
    }

    /// Resolves slot `seq` with `state` (no-op if the slot is gone,
    /// e.g. a completion racing a teardown). O(1): entries hold
    /// consecutive sequence numbers (every `alloc_seq` is paired with
    /// exactly one `push_entry`) and only pop from the front, so the
    /// slot's position is its offset from the front's seq.
    pub fn resolve(&mut self, seq: u64, state: EntryState) {
        let Some(front_seq) = self.entries.front().map(|e| e.seq) else {
            return;
        };
        let Some(off) = seq.checked_sub(front_seq) else {
            return; // already staged and popped
        };
        if let Some(e) = self.entries.get_mut(off as usize) {
            debug_assert_eq!(e.seq, seq, "pipeline seqs must be consecutive");
            e.state = state;
        }
    }

    /// Moves `Ready` entries from the pipeline front into the output
    /// buffer, stopping at the first pending entry (response ordering)
    /// or at the backpressure bound.
    pub fn stage_ready(&mut self) {
        while self.out.len() < HIGH_WATER {
            match self.entries.front() {
                Some(Entry {
                    state: EntryState::Ready(_),
                    ..
                }) => {
                    let Some(Entry {
                        state: EntryState::Ready(bytes),
                        ..
                    }) = self.entries.pop_front()
                    else {
                        unreachable!("front checked above")
                    };
                    self.out.extend_from_slice(&bytes);
                }
                _ => break,
            }
        }
    }

    /// Writes staged bytes until the socket would block or the buffer
    /// drains. `Err` means the connection is dead.
    pub fn write_out(&mut self) -> io::Result<()> {
        loop {
            if self.out.is_empty() {
                return Ok(());
            }
            match self.stream.write(&self.out) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "client socket accepted no bytes",
                    ))
                }
                Ok(n) => self.out.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads available bytes into the parser. Returns `Ok(true)` if any
    /// bytes arrived, `Ok(false)` on `WouldBlock` with nothing new;
    /// `Err` means the connection is dead. EOF only sets `eof` — NOT
    /// `close_after_drain` — because requests already received must
    /// still be served: a client may legitimately half-close right
    /// after its last pipelined request, and its FIN can arrive in the
    /// same readiness window as the request bytes. The thread path gets
    /// this for free (`read_batch` drains the parser before it can
    /// observe the EOF); skipping them here would break the
    /// byte-identical-responses contract between the io models.
    pub fn read_into_parser(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; 16 * 1024];
        let mut any = false;
        loop {
            if self.eof || self.backpressured() {
                return Ok(any);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(any);
                }
                Ok(n) => {
                    self.parser.feed(&buf[..n]);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(any),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether everything owed to the client has been sent.
    pub fn drained(&self) -> bool {
        self.entries.is_empty() && self.out.is_empty()
    }

    /// Whether reading must pause until the client drains responses
    /// (either bound; see [`HIGH_WATER`] and [`MAX_PIPELINE`]).
    pub fn backpressured(&self) -> bool {
        self.out.len() >= HIGH_WATER || self.entries.len() >= MAX_PIPELINE
    }
}
