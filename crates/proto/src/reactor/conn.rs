//! Per-connection state machine of the reactor's served connections.
//!
//! A connection is a [`RequestParser`] feeding an in-order pipeline of
//! [`Entry`]s (one per request), plus an output buffer with write
//! backpressure. Entries resolve out of order (disk reads, lateral
//! fetches, and migrations complete whenever their events fire), but
//! response *bytes* leave strictly in request order: only `Ready`
//! entries at the **front** of the pipeline are staged into the output
//! buffer — HTTP/1.1 pipelining's ordering rule.
//!
//! The same machine serves two kinds of inbound connection: **client**
//! connections (requests go through the dispatcher — handoff, batched
//! policy decisions, possible laterals/migrations) and **peer-server**
//! connections (lateral fetches from other nodes' handlers; every
//! request serves on this listener's node, no dispatcher involvement —
//! the event-driven replacement for the thread-per-peer-connection
//! `serve_peer_connection` loop). The roles differ only in how a
//! drained batch turns into pipeline entries; reading, ordering,
//! backpressure, and write-out are shared.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use mio::net::IOV_MAX;
use mio::Interest;
use phttp_core::ConnId;
use phttp_http::RequestParser;

use super::SlotRef;

/// What a pipeline slot is waiting on (or holding).
#[derive(Debug)]
pub(crate) enum EntryState {
    /// A complete response: serialized head plus shared body slice, the
    /// pair `writev` sends in one call with zero body copies.
    Ready(Bytes, Bytes),
    /// A response streamed through from a lateral peer: chunks splice
    /// toward the client as they arrive instead of store-and-forward.
    Streaming(StreamEntry),
    /// Waiting for this connection's node to finish an emulated disk read.
    Disk,
    /// Waiting for a lateral fetch from a peer node.
    Lateral,
    /// Waiting for the emulated connection-migration delay to elapse.
    Migrating,
}

/// In-flight state of a response spliced from a peer session
/// ([`EntryState::Streaming`]). The head chunk is queued at creation;
/// body slices append as the peer's bytes arrive, bounded by
/// [`HIGH_WATER`] on both the connection's output queue and this
/// entry's own chunk buffer (the feeding session pauses its reads
/// otherwise and is re-armed when the client drains).
#[derive(Debug)]
pub(crate) struct StreamEntry {
    /// Wire chunks (client head first, then body slices) not yet staged.
    pub chunks: VecDeque<Bytes>,
    /// Bytes currently buffered in `chunks`.
    pub buffered: usize,
    /// Body bytes received (or synthesized by a fault fallback) so far.
    pub pushed: usize,
    /// Total body bytes the response carries.
    pub total: usize,
    /// The lateral session feeding this entry, re-armed for reading
    /// when backpressure lifts.
    pub peer: SlotRef,
}

impl StreamEntry {
    /// Starts a stream: the serialized client head is the first chunk.
    pub fn begin(head: Bytes, total: usize, peer: SlotRef) -> StreamEntry {
        let mut s = StreamEntry {
            chunks: VecDeque::new(),
            buffered: 0,
            pushed: 0,
            total,
            peer,
        };
        s.push_head(head);
        s
    }

    fn push_head(&mut self, head: Bytes) {
        self.buffered += head.len();
        self.chunks.push_back(head);
    }

    /// Appends a body slice as received from (or synthesized for) the
    /// peer stream.
    pub fn push_body(&mut self, chunk: Bytes) {
        self.pushed += chunk.len();
        self.buffered += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Every body byte has been received; nothing more will arrive.
    pub fn finished_receiving(&self) -> bool {
        self.pushed >= self.total
    }

    /// Fully received *and* fully staged: the entry can retire.
    pub fn complete(&self) -> bool {
        self.finished_receiving() && self.chunks.is_empty()
    }
}

/// One in-order response pipeline slot.
#[derive(Debug)]
pub(crate) struct Entry {
    /// Identifies the slot across async completions (unique per conn).
    pub seq: u64,
    pub state: EntryState,
}

/// Stop reading new requests while this many response bytes are queued
/// unsent — the reactor's write backpressure bound.
pub(crate) const HIGH_WATER: usize = 256 * 1024;

/// Stop reading new requests while this many pipeline entries are
/// unanswered. `HIGH_WATER` alone only bounds *staged* bytes; a client
/// that pipelines continuously without ever reading responses would
/// otherwise grow the entry queue (each `Ready` slot holding a full
/// serialized response) without bound. The thread path is naturally
/// bounded by its blocking per-response `write_all`; this is the
/// event-loop equivalent.
pub(crate) const MAX_PIPELINE: usize = 256;

/// The staged-response output queue: ordered shared byte slices
/// awaiting the socket, written with `writev` so a queued body slice is
/// never copied into a contiguous buffer. [`len`](Self::len) charges
/// each queued segment's length exactly once — other clones of the same
/// allocation (the cache's, a coalesced waiter's) cost nothing here —
/// and is mirrored into the owning shard's `pending_body_bytes` gauge.
#[derive(Debug)]
pub(crate) struct OutQueue {
    segs: VecDeque<Bytes>,
    /// Bytes of `segs[0]` already accepted by the socket.
    front_off: usize,
    /// Unsent bytes across all segments.
    queued: usize,
    /// Shard gauge mirroring `queued`
    /// (see `ReactorStats::pending_body_bytes`).
    gauge: Arc<AtomicUsize>,
}

impl OutQueue {
    pub fn new(gauge: Arc<AtomicUsize>) -> OutQueue {
        OutQueue {
            segs: VecDeque::new(),
            front_off: 0,
            queued: 0,
            gauge,
        }
    }

    /// Unsent bytes queued (each segment charged once).
    pub fn len(&self) -> usize {
        self.queued
    }

    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Queues a segment — shared, never copied. Empty segments are
    /// skipped (a zero-length body contributes no iovec).
    pub fn push(&mut self, seg: Bytes) {
        if seg.is_empty() {
            return;
        }
        self.queued += seg.len();
        self.gauge.fetch_add(seg.len(), Ordering::Relaxed);
        self.segs.push_back(seg);
    }

    /// Fills `bufs` with iovec views of the unsent bytes, at most
    /// `IOV_MAX` of them (the rest wait for the next call, exactly like
    /// a kernel short write).
    pub fn fill_slices<'a>(&'a self, bufs: &mut Vec<io::IoSlice<'a>>) {
        for (i, seg) in self.segs.iter().take(IOV_MAX).enumerate() {
            let s = if i == 0 {
                &seg[self.front_off..]
            } else {
                &seg[..]
            };
            bufs.push(io::IoSlice::new(s));
        }
    }

    /// Consumes `n` accepted bytes, possibly landing mid-segment: the
    /// partial-write resumption point for the next `writev`.
    pub fn advance(&mut self, mut n: usize) {
        assert!(n <= self.queued, "advance past queued bytes");
        self.queued -= n;
        self.gauge.fetch_sub(n, Ordering::Relaxed);
        while n > 0 {
            let left = self.segs[0].len() - self.front_off;
            if n < left {
                self.front_off += n;
                return;
            }
            n -= left;
            self.front_off = 0;
            self.segs.pop_front();
        }
    }

    /// Drops everything queued.
    pub fn clear(&mut self) {
        self.gauge.fetch_sub(self.queued, Ordering::Relaxed);
        self.queued = 0;
        self.front_off = 0;
        self.segs.clear();
    }
}

impl Drop for OutQueue {
    /// A connection can die with bytes still queued; the gauge must not
    /// keep counting them.
    fn drop(&mut self) {
        self.gauge.fetch_sub(self.queued, Ordering::Relaxed);
    }
}

/// The vectored-write surface [`write_queue`] drives. Real sockets
/// implement it with `writev`; tests substitute a fault-injected stream
/// that scripts arbitrary kernel short-write/`EAGAIN` sequences.
pub(crate) trait VectoredWrite {
    fn writev(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize>;
}

impl VectoredWrite for mio::net::TcpStream {
    fn writev(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        mio::net::TcpStream::write_vectored(self, bufs)
    }
}

/// Writes queued segments with gathered `writev` calls until the queue
/// drains or the socket would block. Partial writes resume mid-iovec on
/// the next call; `Err` means the connection is dead.
pub(crate) fn write_queue<W: VectoredWrite>(stream: &mut W, out: &mut OutQueue) -> io::Result<()> {
    loop {
        if out.is_empty() {
            return Ok(());
        }
        let mut bufs: Vec<io::IoSlice<'_>> = Vec::new();
        out.fill_slices(&mut bufs);
        match stream.writev(&bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted no bytes",
                ))
            }
            Ok(n) => out.advance(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// An inbound connection registered with the reactor: a client
/// connection, or (with [`peer_server`](Self::peer_server) set) a
/// peer-server connection serving lateral fetches.
pub(crate) struct ClientConn {
    pub stream: mio::net::TcpStream,
    pub parser: RequestParser,
    /// `true` for peer-server connections: every request serves on
    /// [`node`](Self::node) (the accepting listener's node) and the
    /// dispatcher is never involved (`conn_id` stays `None`).
    pub peer_server: bool,
    /// Dispatcher connection id; `None` until the first request has
    /// driven the content-based handoff (always `None` for peer-server
    /// connections).
    pub conn_id: Option<ConnId>,
    /// Index of the node currently handling this connection (valid once
    /// `conn_id` is set; re-homed eagerly on migrate decisions). For
    /// peer-server connections, the serving node — fixed at accept.
    pub node: usize,
    /// Which front-end instance dispatches this connection (always 0
    /// without a tier; assigned by the Vip admission otherwise).
    pub fe_idx: usize,
    /// The tier-level admission ticket, released to the Vip when the
    /// connection closes (`None` without a tier, or when the admission
    /// handshake failed and the connection fell through untracked).
    pub vip_conn: Option<ConnId>,
    next_seq: u64,
    /// In-order response pipeline.
    pub entries: VecDeque<Entry>,
    /// Staged response segments not yet accepted by the socket.
    pub out: OutQueue,
    /// Interests currently registered with the poller.
    pub interest: Interest,
    /// The client sent EOF: stop reading, serve what was already
    /// received, then close.
    pub eof: bool,
    /// The *logical* connection has ended (non-keep-alive request or
    /// parse error): stop reading, refuse later pipelined requests,
    /// serve what is already in the pipeline, then close. Distinct from
    /// [`eof`](Self::eof), which must not suppress serving.
    pub close_after_drain: bool,
    /// Last socket activity, for the idle-timeout sweep.
    pub last_activity: Instant,
}

impl ClientConn {
    /// `gauge` is the owning shard's `pending_body_bytes` counter the
    /// connection's output queue mirrors itself into.
    pub fn new(stream: mio::net::TcpStream, gauge: Arc<AtomicUsize>) -> ClientConn {
        ClientConn {
            stream,
            parser: RequestParser::new(),
            peer_server: false,
            conn_id: None,
            node: 0,
            fe_idx: 0,
            vip_conn: None,
            next_seq: 0,
            entries: VecDeque::new(),
            out: OutQueue::new(gauge),
            interest: Interest::READABLE,
            eof: false,
            close_after_drain: false,
            last_activity: Instant::now(),
        }
    }

    /// An accepted peer-server connection: serves lateral fetches
    /// against `node`'s cache/disk, bypassing the dispatcher.
    pub fn peer_server(
        stream: mio::net::TcpStream,
        node: usize,
        gauge: Arc<AtomicUsize>,
    ) -> ClientConn {
        ClientConn {
            peer_server: true,
            node,
            ..ClientConn::new(stream, gauge)
        }
    }

    /// A client connection admitted through the front-end tier: it
    /// dispatches on front-end `fe_idx` and (when the admission
    /// handshake succeeded) carries the Vip ticket to release on close.
    pub fn admitted(
        stream: mio::net::TcpStream,
        fe_idx: usize,
        vip_conn: Option<ConnId>,
        gauge: Arc<AtomicUsize>,
    ) -> ClientConn {
        ClientConn {
            fe_idx,
            vip_conn,
            ..ClientConn::new(stream, gauge)
        }
    }

    /// Allocates the sequence number for the next pipeline slot.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Appends a pipeline slot.
    pub fn push_entry(&mut self, seq: u64, state: EntryState) {
        self.entries.push_back(Entry { seq, state });
    }

    /// Resolves slot `seq` with `state` (no-op if the slot is gone,
    /// e.g. a completion racing a teardown). O(1): entries hold
    /// consecutive sequence numbers (every `alloc_seq` is paired with
    /// exactly one `push_entry`) and only pop from the front, so the
    /// slot's position is its offset from the front's seq.
    pub fn resolve(&mut self, seq: u64, state: EntryState) {
        let Some(front_seq) = self.entries.front().map(|e| e.seq) else {
            return;
        };
        let Some(off) = seq.checked_sub(front_seq) else {
            return; // already staged and popped
        };
        if let Some(e) = self.entries.get_mut(off as usize) {
            debug_assert_eq!(e.seq, seq, "pipeline seqs must be consecutive");
            e.state = state;
        }
    }

    /// Moves `Ready` entries (and available `Streaming` chunks) from
    /// the pipeline front into the output queue, stopping at the first
    /// pending entry (response ordering) or at the backpressure bound.
    /// Segments are queued as shared slices — staging never copies.
    pub fn stage_ready(&mut self) {
        while self.out.len() < HIGH_WATER {
            match self.entries.front_mut() {
                Some(Entry {
                    state: EntryState::Ready(..),
                    ..
                }) => {
                    let Some(Entry {
                        state: EntryState::Ready(head, body),
                        ..
                    }) = self.entries.pop_front()
                    else {
                        unreachable!("front checked above")
                    };
                    self.out.push(head);
                    self.out.push(body);
                }
                Some(Entry {
                    state: EntryState::Streaming(s),
                    ..
                }) => {
                    while self.out.len() < HIGH_WATER {
                        let Some(chunk) = s.chunks.pop_front() else {
                            break;
                        };
                        s.buffered -= chunk.len();
                        self.out.push(chunk);
                    }
                    if s.complete() {
                        self.entries.pop_front();
                        continue; // the next response may already be ready
                    }
                    // Stream still in flight (or the bound was hit):
                    // later entries stay behind it — response ordering.
                    break;
                }
                _ => break,
            }
        }
    }

    /// Writes staged segments — gathered `writev`, zero copies — until
    /// the socket would block or the queue drains. `Err` means the
    /// connection is dead.
    pub fn write_out(&mut self) -> io::Result<()> {
        write_queue(&mut self.stream, &mut self.out)
    }

    /// Reads available bytes into the parser. Returns `Ok(true)` if any
    /// bytes arrived, `Ok(false)` on `WouldBlock` with nothing new;
    /// `Err` means the connection is dead. EOF only sets `eof` — NOT
    /// `close_after_drain` — because requests already received must
    /// still be served: a client may legitimately half-close right
    /// after its last pipelined request, and its FIN can arrive in the
    /// same readiness window as the request bytes. The thread path gets
    /// this for free (`read_batch` drains the parser before it can
    /// observe the EOF); skipping them here would break the
    /// byte-identical-responses contract between the io models.
    pub fn read_into_parser(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; 16 * 1024];
        let mut any = false;
        loop {
            if self.eof || self.backpressured() {
                return Ok(any);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(any);
                }
                Ok(n) => {
                    self.parser.feed(&buf[..n]);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(any),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether everything owed to the client has been sent.
    pub fn drained(&self) -> bool {
        self.entries.is_empty() && self.out.is_empty()
    }

    /// Whether reading must pause until the client drains responses
    /// (either bound; see [`HIGH_WATER`] and [`MAX_PIPELINE`]).
    pub fn backpressured(&self) -> bool {
        self.out.len() >= HIGH_WATER || self.entries.len() >= MAX_PIPELINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gauge() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    /// One scripted kernel reaction to a `writev` call.
    #[derive(Clone, Copy, Debug)]
    enum Ev {
        /// Accept at most this many bytes (a short write).
        Accept(usize),
        /// `EAGAIN`: accept nothing, socket not writable.
        Eagain,
        /// `EINTR`: the call was interrupted; the caller must retry.
        Eintr,
    }

    /// A fault-injectable stream: each `writev` consumes the next
    /// scripted event and appends whatever it accepts to `sink`. An
    /// exhausted script accepts everything offered, so a drain loop
    /// always terminates.
    struct ScriptedStream {
        script: Vec<Ev>,
        next: usize,
        sink: Vec<u8>,
        max_bufs_seen: usize,
    }

    impl ScriptedStream {
        fn new(script: Vec<Ev>) -> ScriptedStream {
            ScriptedStream {
                script,
                next: 0,
                sink: Vec::new(),
                max_bufs_seen: 0,
            }
        }
    }

    impl VectoredWrite for ScriptedStream {
        fn writev(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            assert!(!bufs.is_empty(), "writev with no iovecs");
            assert!(bufs.len() <= IOV_MAX, "iovec batch exceeds IOV_MAX");
            self.max_bufs_seen = self.max_bufs_seen.max(bufs.len());
            let offered: usize = bufs.iter().map(|b| b.len()).sum();
            let ev = self
                .script
                .get(self.next)
                .copied()
                .unwrap_or(Ev::Accept(usize::MAX));
            self.next += 1;
            let n = match ev {
                Ev::Eagain => return Err(io::ErrorKind::WouldBlock.into()),
                Ev::Eintr => return Err(io::ErrorKind::Interrupted.into()),
                // A kernel write never accepts 0 bytes of a non-empty
                // iovec without an error; clamp the script likewise.
                Ev::Accept(n) => n.min(offered).max(1),
            };
            let mut left = n;
            for b in bufs {
                if left == 0 {
                    break;
                }
                let take = left.min(b.len());
                self.sink.extend_from_slice(&b[..take]);
                left -= take;
            }
            Ok(n)
        }
    }

    #[test]
    fn gauge_counts_queue_entries_once_not_clones() {
        let g = gauge();
        let mut out = OutQueue::new(g.clone());
        let body = Bytes::from(vec![7u8; 100]);
        let _cache_copy = body.clone(); // a clone elsewhere costs nothing
        out.push(body.clone());
        assert_eq!(g.load(Ordering::Relaxed), 100);
        out.push(body.clone()); // a second *queue entry* is charged
        assert_eq!(g.load(Ordering::Relaxed), 200);
        out.advance(150);
        assert_eq!(g.load(Ordering::Relaxed), 50);
        out.clear();
        assert_eq!(g.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dropping_a_loaded_queue_releases_the_gauge() {
        let g = gauge();
        let mut out = OutQueue::new(g.clone());
        out.push(Bytes::from(vec![1u8; 64]));
        assert_eq!(g.load(Ordering::Relaxed), 64);
        drop(out);
        assert_eq!(g.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_segments_contribute_no_iovec() {
        let mut out = OutQueue::new(gauge());
        out.push(Bytes::new());
        out.push(Bytes::from_static(b"x"));
        out.push(Bytes::new());
        let mut bufs = Vec::new();
        out.fill_slices(&mut bufs);
        assert_eq!(bufs.len(), 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn batches_beyond_iov_max_drain_in_order() {
        let g = gauge();
        let mut out = OutQueue::new(g.clone());
        let n = IOV_MAX + 10;
        let mut expect = Vec::with_capacity(n);
        for i in 0..n {
            let b = (i % 251) as u8;
            expect.push(b);
            out.push(Bytes::from(vec![b]));
        }
        let mut bufs = Vec::new();
        out.fill_slices(&mut bufs);
        assert_eq!(bufs.len(), IOV_MAX, "one call offers at most IOV_MAX");
        let mut stream = ScriptedStream::new(Vec::new());
        write_queue(&mut stream, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(stream.sink, expect);
        assert_eq!(stream.max_bufs_seen, IOV_MAX);
        assert_eq!(g.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn eagain_mid_iovec_resumes_exactly() {
        let g = gauge();
        let mut out = OutQueue::new(g.clone());
        out.push(Bytes::from_static(b"hello"));
        out.push(Bytes::from_static(b"world"));
        // Accept 3 bytes (mid-first-iovec), then EAGAIN.
        let mut stream = ScriptedStream::new(vec![Ev::Accept(3), Ev::Eagain]);
        write_queue(&mut stream, &mut out).unwrap();
        assert_eq!(&stream.sink, b"hel");
        assert_eq!(out.len(), 7);
        assert_eq!(g.load(Ordering::Relaxed), 7);
        // The retry resumes at the right offset within "hello".
        write_queue(&mut stream, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(&stream.sink, b"helloworld");
    }

    fn arb_segs() -> impl Strategy<Value = Vec<Vec<u8>>> {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..12)
    }

    fn arb_script() -> impl Strategy<Value = Vec<Ev>> {
        proptest::collection::vec(
            prop_oneof![
                (1usize..300).prop_map(Ev::Accept),
                Just(Ev::Eagain),
                Just(Ev::Eintr),
            ],
            0..40,
        )
    }

    proptest! {
        /// Arbitrary kernel short-write/`EAGAIN`/`EINTR` sequences —
        /// with fresh segments pushed mid-drain — never drop, duplicate,
        /// or reorder bytes: the sink is exactly the concatenation of
        /// everything pushed, and the shard gauge returns to zero.
        #[test]
        fn writev_resumption_preserves_the_stream(
            groups in proptest::collection::vec(arb_segs(), 1..4),
            script in arb_script(),
        ) {
            let g = gauge();
            let mut out = OutQueue::new(g.clone());
            let mut stream = ScriptedStream::new(script);
            let mut expect: Vec<u8> = Vec::new();
            for segs in groups {
                for s in segs {
                    expect.extend_from_slice(&s);
                    out.push(Bytes::from(s));
                }
                write_queue(&mut stream, &mut out).unwrap();
            }
            while !out.is_empty() {
                write_queue(&mut stream, &mut out).unwrap();
            }
            prop_assert_eq!(&stream.sink, &expect);
            prop_assert_eq!(g.load(Ordering::Relaxed), 0);
        }
    }
}
