//! Deterministic content store: the prototype's stand-in for the document
//! tree served by the paper's Apache back-ends.
//!
//! Bodies are generated on the fly from the target id, so a multi-hundred-
//! megabyte corpus costs no RAM beyond its size table, while clients can
//! still verify every response byte-exactly. URIs use the `/t/<id>` scheme;
//! the paper's `/be_<k>/...` *tagging* prefix composes on top of it.

use bytes::Bytes;
use phttp_trace::{TargetId, Trace};

/// An immutable corpus of generated documents.
#[derive(Debug, Clone)]
pub struct ContentStore {
    sizes: Vec<u64>,
}

impl ContentStore {
    /// Builds a store over the trace's corpus (same target ids and sizes).
    pub fn from_trace(trace: &Trace) -> Self {
        ContentStore {
            sizes: (0..trace.num_targets() as u32)
                .map(|i| trace.size_of(TargetId(i)))
                .collect(),
        }
    }

    /// Builds a store from explicit sizes (tests).
    pub fn from_sizes(sizes: Vec<u64>) -> Self {
        ContentStore { sizes }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Returns `true` if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The canonical URI of a target.
    pub fn uri(target: TargetId) -> String {
        format!("/t/{}", target.0)
    }

    /// Resolves a `/t/<id>` path back to its target.
    pub fn lookup(&self, path: &str) -> Option<TargetId> {
        let id: u32 = path.strip_prefix("/t/")?.parse().ok()?;
        ((id as usize) < self.sizes.len()).then_some(TargetId(id))
    }

    /// Size of a target in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the target is out of range.
    pub fn size(&self, target: TargetId) -> u64 {
        self.sizes[target.0 as usize]
    }

    /// Generates the target's body: a cheap keyed byte pattern.
    pub fn body(&self, target: TargetId) -> Bytes {
        let n = self.size(target) as usize;
        let mut v = Vec::with_capacity(n);
        let seed = target.0.wrapping_mul(2654435761);
        for i in 0..n {
            v.push((seed.wrapping_add(i as u32).wrapping_mul(40503) >> 8) as u8);
        }
        Bytes::from(v)
    }

    /// Verifies that `body` is exactly the target's generated content.
    pub fn verify(&self, target: TargetId, body: &[u8]) -> bool {
        if body.len() as u64 != self.size(target) {
            return false;
        }
        // Spot-check a prefix and suffix instead of the full body: the
        // pattern is position-dependent, so truncation/corruption at either
        // end is caught, and verification stays O(1) per response.
        let seed = target.0.wrapping_mul(2654435761);
        let expect = |i: usize| (seed.wrapping_add(i as u32).wrapping_mul(40503) >> 8) as u8;
        let n = body.len();
        let head = n.min(64);
        if (0..head).any(|i| body[i] != expect(i)) {
            return false;
        }
        (n.saturating_sub(64)..n).all(|i| body[i] == expect(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ContentStore {
        ContentStore::from_sizes(vec![0, 100, 5000])
    }

    #[test]
    fn uri_lookup_roundtrip() {
        let s = store();
        for i in 0..3u32 {
            let uri = ContentStore::uri(TargetId(i));
            assert_eq!(s.lookup(&uri), Some(TargetId(i)));
        }
        assert_eq!(s.lookup("/t/99"), None);
        assert_eq!(s.lookup("/x/1"), None);
        assert_eq!(s.lookup("/t/abc"), None);
    }

    #[test]
    fn body_matches_size_and_verifies() {
        let s = store();
        for i in 0..3u32 {
            let t = TargetId(i);
            let b = s.body(t);
            assert_eq!(b.len() as u64, s.size(t));
            assert!(s.verify(t, &b));
        }
    }

    #[test]
    fn verify_rejects_corruption() {
        let s = store();
        let t = TargetId(2);
        let mut b = s.body(t).to_vec();
        assert!(s.verify(t, &b));
        b[0] ^= 0xff;
        assert!(!s.verify(t, &b));
        let b2 = s.body(t);
        assert!(!s.verify(t, &b2[..b2.len() - 1]));
        // Tail corruption is caught too.
        let mut b3 = s.body(t).to_vec();
        let n = b3.len();
        b3[n - 1] ^= 0xff;
        assert!(!s.verify(t, &b3));
    }

    #[test]
    fn bodies_differ_across_targets() {
        let s = ContentStore::from_sizes(vec![256, 256]);
        assert_ne!(s.body(TargetId(0)), s.body(TargetId(1)));
    }
}
