//! Cluster assembly: peer servers, the front-end acceptor, and the
//! connection handlers — the runnable analogue of the paper's §7 testbed.
//!
//! ## Data path
//!
//! 1. A client connects to the front-end address; the acceptor spawns a
//!    handler thread which reads the first request (content-based
//!    distribution requires it) and asks the policy for a node — the
//!    *handoff*. From then on the thread acts as that back-end's connection
//!    handler: client bytes flow to it directly, responses flow back
//!    directly, and the front-end only sees per-request control traffic —
//!    the same division of labour as the paper's kernel handoff
//!    (DESIGN.md §6.2/§6.4).
//! 2. Subsequent pipelined batches are read off the socket; each request is
//!    reported to the dispatcher, which answers `Local` or `Remote(k)`. A
//!    remote assignment is realized by *tagging* the request URI
//!    (`/be_<k>/t/<id>`, §7.3 verbatim) and fetching laterally from node
//!    `k`'s peer server over a persistent connection (the NFS stand-in).
//! 3. Peer servers serve `/t/<id>` from their own cache/disk, so a lateral
//!    fetch exercises the remote node's cache exactly as NFS reads hit the
//!    remote buffer cache in the paper.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{LockClass, Mutex};
use phttp_core::{Assignment, ConnId, LardParams, Mechanism, NodeId, PolicyKind};
use phttp_http::{Request, RequestParser, Response};
use phttp_simcore::EvictPolicy;
use phttp_trace::{TargetId, Trace};

use crate::control::FrameDecoder;
use crate::frontend::{ConfigError, ConnGuard, FrontEnd, DEFAULT_DISK_REPORT_INTERVAL};
use crate::node::{DiskEmu, FeedbackConfig, NodeState, NodeStatsSnapshot};
use crate::reactor::{self, ReactorConfig, ReactorHandle, ReactorStats};
use crate::store::ContentStore;
use crate::tier::{client_key, Vip, DEFAULT_GOSSIP_INTERVAL};

/// Which I/O model the front-end runs client connections on.
///
/// Both models share everything above the socket layer — the
/// [`FrontEnd`], the batched dispatcher path, the content store, the
/// peer lateral servers — and produce byte-identical responses, so
/// [`IoModel::Threads`] doubles as a differential-testing oracle for
/// [`IoModel::Reactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// A pre-spawned worker pool with one blocking thread per in-flight
    /// client connection. Simple and the historical default, but
    /// concurrency is capped by `ProtoConfig::workers` and every idle
    /// persistent connection pins a thread.
    #[default]
    Threads,
    /// [`ProtoConfig::reactor_shards`] event-loop threads drive every
    /// client connection, lateral fetch, lateral **server** connection,
    /// and emulated disk through epoll-style readiness (see the
    /// [`crate::reactor`] module docs). Concurrency is bounded by file
    /// descriptors, not threads — the P-HTTP many-connection regime —
    /// and the cluster runs zero per-client and zero per-peer-connection
    /// threads.
    Reactor,
}

/// Prototype cluster configuration.
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Number of back-end nodes.
    pub nodes: usize,
    /// Request-distribution policy.
    pub policy: PolicyKind,
    /// Request-distribution mechanism: back-end forwarding (the paper's §7
    /// implementation) or multiple handoff (our extension — the paper
    /// sketches the design in §7.2; in-process stream transfer makes the
    /// migration trivial to realize).
    pub mechanism: Mechanism,
    /// Emulated cost of one connection migration (the kernel handoff
    /// protocol exchange the in-process transfer does not pay).
    pub migration_delay: Duration,
    /// Per-node cache budget, bytes.
    pub cache_bytes: u64,
    /// Disk emulation parameters.
    pub disk: DiskEmu,
    /// LARD parameters.
    pub lard: LardParams,
    /// Minimum wall-clock spacing between disk-queue refreshes pushed
    /// into the dispatcher (`Duration::ZERO` = refresh on every
    /// decision). See [`FrontEnd::with_disk_report_interval`].
    pub disk_report_interval: Duration,
    /// Cache-coherent mapping feedback: when `true`, every back-end gets
    /// a real control session (a loopback stream to the front-end) over
    /// which it reports its cache admission/eviction deltas, and the
    /// dispatcher prunes believed mappings whose targets were evicted.
    /// When `false`, the mapping belief only grows — the paper's
    /// open-loop behaviour.
    pub cache_feedback: bool,
    /// Minimum spacing between a node's feedback reports (the
    /// control-session cadence; the staleness/traffic trade-off knob).
    pub feedback_interval: Duration,
    /// A node flushes a report early once this many events are pending,
    /// bounding report size under heavy eviction churn.
    pub feedback_batch: usize,
    /// Socket read timeout (bounds handler lifetime after client death).
    pub read_timeout: Duration,
    /// Size of the pre-spawned client-connection worker pool. Must exceed
    /// the expected number of concurrent client connections; excess
    /// connections wait in the accept queue. Pre-spawning avoids paying a
    /// thread spawn per HTTP/1.0 connection, which would otherwise dominate
    /// the very overhead P-HTTP is being compared against.
    pub workers: usize,
    /// Front-end I/O model: blocking worker threads (the oracle) or the
    /// event-driven reactor. See [`IoModel`].
    pub io_model: IoModel,
    /// Number of reactor event-loop shards under [`IoModel::Reactor`]
    /// (one per core on a real host). Each shard owns its own poller,
    /// accept socket(s) (an `SO_REUSEPORT` group per front-end address,
    /// falling back to a round-robin acceptor handoff where the group
    /// bind is unavailable), connection slab, timer heap, lateral
    /// session pools, and its share of the peer listeners and control
    /// sessions; shards share only the lock-sharded dispatcher. Must be
    /// 1 (the default) under [`IoModel::Threads`] — requesting shards
    /// without a reactor is a [`ConfigError`], as is 0.
    pub reactor_shards: usize,
    /// Idle persistent lateral connections retained per peer pool (per
    /// handler node in the thread model; per shard in the reactor).
    /// Zero is a [`ConfigError`]: it would silently turn every lateral
    /// fetch into a fresh dial, defeating the persistent peer sessions
    /// the paper's NFS stand-in depends on.
    pub peer_pool_cap: usize,
    /// Forces the reactor's round-robin acceptor-handoff accept path
    /// even where `SO_REUSEPORT` listener groups are available
    /// (diagnostics/tests; normally the handoff is auto-selected only
    /// when the group bind fails). No effect under [`IoModel::Threads`].
    pub force_accept_handoff: bool,
    /// Single-flight miss coalescing: when `true`, concurrent misses on
    /// the same `(node, target)` share one emulated disk read (and
    /// concurrent lateral fetches of one target from one handler share
    /// one peer round-trip) — the extra missers park as *delayed hits*
    /// instead of issuing redundant fetches. Response bytes are a pure
    /// function of `(target, HTTP version)`, so transcripts are
    /// byte-identical either way; only timing and fetch counts change.
    pub coalesce_misses: bool,
    /// Per-node cache eviction policy. [`EvictPolicy::Lru`] is the
    /// paper's policy; [`EvictPolicy::LruMad`] ranks victims by
    /// estimated aggregate miss delay per byte (delayed-hits-aware).
    pub cache_policy: EvictPolicy,
    /// Number of front-end instances behind the VIP. With the default
    /// of 1 the cluster is the paper's single-front-end prototype,
    /// byte-for-byte. With more, the [`crate::tier::Vip`] routes each
    /// new client connection to one of `front_ends` independent
    /// [`FrontEnd`] dispatchers over real handoff control sessions,
    /// mapping/coherence authority is partitioned across them by a
    /// consistent-hash ring, and the instances gossip dispatcher state
    /// peer-to-peer every [`gossip_interval`](Self::gossip_interval).
    /// Zero is a [`ConfigError`].
    pub front_ends: usize,
    /// Spacing between front-end tier gossip rounds (ignored when
    /// `front_ends == 1`). Smaller means fresher non-owner views and
    /// more control traffic — the tier analogue of
    /// [`feedback_interval`](Self::feedback_interval).
    pub gossip_interval: Duration,
    /// Extra back-end slots allocated — listeners bound, peer addresses
    /// known to every node, dispatcher slots reserved — but **not**
    /// serving at start: their circuit breakers begin `Open` on every
    /// front-end (absent equals unhealthy) and no mapping ever refers
    /// to them. [`Cluster::join_node`] brings one into the serving set
    /// at runtime via the control-plane `Join` handshake.
    pub standby_nodes: usize,
    /// Relative per-node serving capacities, indexed by node slot over
    /// `nodes + standby_nodes`. Policies normalize load by weight, so a
    /// weight-2 node carries roughly twice a weight-1 node's share.
    /// Empty means homogeneous (all 1). Non-empty but wrong length or
    /// containing a zero is a [`ConfigError`].
    pub node_weights: Vec<u32>,
    /// Circuit-breaker parameters for the per-node health gates on
    /// every front-end (trip threshold, cooldown, probation quota).
    pub health: phttp_core::HealthConfig,
    /// Spacing between breaker cooldown ticks: every interval, each
    /// front-end's `Open` breakers advance one tick toward `HalfOpen`
    /// probation. `Duration::ZERO` disables the timer — breakers then
    /// only relax through an explicit [`Cluster::join_node`] handshake
    /// or a test's own [`FrontEnd::health_tick`] calls.
    pub health_tick_interval: Duration,
    /// Zero-copy response write-out (default `true`): responses go to
    /// the socket as a serialized head plus the *shared* body slice —
    /// the cache's own allocation, refcount-bumped, never copied —
    /// gathered in one vectored write. When `false`, every response is
    /// flattened into a fresh contiguous wire buffer first (one body
    /// memcpy per response): the historical behaviour, kept as the
    /// copying baseline `BENCH_zerocopy.json` quantifies against.
    /// Response bytes are identical either way, in both I/O models.
    pub zero_copy: bool,
    /// Number of loopback addresses the front-end listens on
    /// (`127.0.0.1..127.0.0.k`). HTTP/1.0 load opens one TCP connection per
    /// request; on a single loopback address pair the 4-tuple space (and
    /// TIME_WAIT) throttles connection rates far below what the paper's
    /// multi-machine testbed sustained. Multiple destination addresses
    /// multiply the tuple space — the single-host stand-in for multiple
    /// client machines. All listeners feed the same dispatcher.
    pub fe_listeners: usize,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            nodes: 2,
            policy: PolicyKind::ExtLard,
            mechanism: Mechanism::BackendForwarding,
            migration_delay: Duration::from_micros(300),
            cache_bytes: 2 * 1024 * 1024,
            disk: DiskEmu::default(),
            lard: LardParams::default(),
            disk_report_interval: DEFAULT_DISK_REPORT_INTERVAL,
            cache_feedback: true,
            feedback_interval: Duration::from_millis(5),
            feedback_batch: 64,
            read_timeout: Duration::from_secs(10),
            workers: 128,
            io_model: IoModel::default(),
            reactor_shards: 1,
            peer_pool_cap: 8,
            force_accept_handoff: false,
            coalesce_misses: false,
            cache_policy: EvictPolicy::Lru,
            front_ends: 1,
            gossip_interval: DEFAULT_GOSSIP_INTERVAL,
            standby_nodes: 0,
            node_weights: Vec::new(),
            health: phttp_core::HealthConfig::default(),
            health_tick_interval: Duration::from_millis(25),
            zero_copy: true,
            fe_listeners: 4,
        }
    }
}

/// A running cluster.
pub struct Cluster {
    fe_addrs: Vec<SocketAddr>,
    frontend: Arc<FrontEnd>,
    /// Every front-end instance (`fes[0]` is [`Cluster::frontend`]).
    fes: Vec<Arc<FrontEnd>>,
    /// The tier router; `None` when `front_ends == 1` — the
    /// single-front-end cluster constructs no tier machinery at all.
    vip: Option<Arc<Vip>>,
    store: Arc<ContentStore>,
    stop: Arc<AtomicBool>,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    /// Per-node control-session readers ([`IoModel::Threads`] only; the
    /// reactor drains control streams on its own poller).
    control_threads: Vec<std::thread::JoinHandle<()>>,
    /// Feeds accepted client connections (with their admitted front-end
    /// index and tier ticket) to the worker pool. `None` after shutdown
    /// begins (or always, under [`IoModel::Reactor`]) so workers see a
    /// closed channel and exit.
    work_tx: Option<crossbeam::channel::Sender<(TcpStream, usize, Option<ConnId>)>>,
    /// The event-loop shards, under [`IoModel::Reactor`].
    reactor: Option<ReactorHandle>,
    /// Live reactor gauges (outlive `reactor` queries during shutdown).
    reactor_stats: Option<Arc<ReactorStats>>,
    /// Whether the reactor fell back to acceptor handoff (`None` under
    /// [`IoModel::Threads`]).
    accept_handoff: Option<bool>,
    peer_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    listeners: Vec<SocketAddr>,
    /// Whether the control plane exists (`ProtoConfig::cache_feedback`):
    /// with it, joins travel the wire; without, they apply in-process.
    cache_feedback: bool,
    /// Resolved per-slot capacity weights (all 1 when homogeneous).
    weights: Vec<u32>,
    /// Control-session readers installed by [`join_node`](Self::join_node)
    /// after start (both I/O models use a blocking reader thread for
    /// dynamically joined nodes — see ARCHITECTURE.md), joined at
    /// shutdown.
    dynamic_control_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The periodic breaker cooldown ticker, if enabled.
    health_thread: Option<std::thread::JoinHandle<()>>,
}

impl Cluster {
    /// Builds and starts a cluster serving the trace's corpus.
    ///
    /// Returns a [`ConfigError`] when the configured mechanism is one the
    /// prototype does not implement (relaying front-end and the zero-cost
    /// ideal are simulator-only).
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes == 0` or sockets cannot be bound on loopback.
    pub fn start(config: ProtoConfig, trace: &Trace) -> Result<Cluster, ConfigError> {
        assert!(config.nodes > 0, "cluster needs at least one back-end");
        assert!(config.workers > 0, "worker pool must not be empty");
        if config.reactor_shards == 0 {
            return Err(ConfigError::ZeroReactorShards);
        }
        if config.io_model == IoModel::Threads && config.reactor_shards > 1 {
            return Err(ConfigError::ReactorShardsWithoutReactor {
                shards: config.reactor_shards,
            });
        }
        if config.peer_pool_cap == 0 {
            return Err(ConfigError::ZeroPeerPoolCap);
        }
        if config.front_ends == 0 {
            return Err(ConfigError::ZeroFrontEnds);
        }
        let total_nodes = config.nodes + config.standby_nodes;
        if !config.node_weights.is_empty() && config.node_weights.len() != total_nodes {
            return Err(ConfigError::NodeWeightsMismatch {
                expected: total_nodes,
                got: config.node_weights.len(),
            });
        }
        if let Some(node) = config.node_weights.iter().position(|&w| w == 0) {
            return Err(ConfigError::ZeroNodeWeight { node });
        }
        if config.health.validate().is_err() {
            return Err(ConfigError::InvalidHealthConfig);
        }
        let weights = if config.node_weights.is_empty() {
            vec![1; total_nodes]
        } else {
            config.node_weights.clone()
        };
        let store = Arc::new(ContentStore::from_trace(trace));
        // Catch corpora the data path cannot round-trip at construction
        // time: a document past the parsers' MAX_BODY bound would be
        // served fine but rejected by the cluster's own client and
        // lateral-fetch response parsers on every fetch.
        if let Some(size) = (0..store.len() as u32)
            .map(|t| store.size(phttp_trace::TargetId(t)))
            .find(|&s| s > phttp_http::MAX_BODY as u64)
        {
            return Err(ConfigError::TargetExceedsBodyLimit { size });
        }
        let stop = Arc::new(AtomicBool::new(false));
        let peer_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(
            Mutex::new_classed(LockClass::other("peer-threads"), Vec::new()),
        );

        // Bind every peer listener first so all addresses are known —
        // standby slots included, so a later join changes no node's view
        // of its peers.
        let peer_listeners: Vec<TcpListener> = (0..total_nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind peer listener"))
            .collect();
        let peer_addrs: Vec<SocketAddr> = peer_listeners
            .iter()
            .map(|l| l.local_addr().expect("peer addr"))
            .collect();

        let nodes: Vec<Arc<NodeState>> = (0..total_nodes)
            .map(|i| {
                Arc::new(
                    NodeState::new(
                        NodeId(i),
                        config.cache_bytes,
                        config.disk,
                        store.clone(),
                        peer_addrs.clone(),
                    )
                    .with_peer_pool_cap(config.peer_pool_cap)
                    .with_coalescing(config.coalesce_misses)
                    .with_cache_policy(config.cache_policy)
                    .with_feedback(FeedbackConfig {
                        enabled: config.cache_feedback,
                        batch: config.feedback_batch,
                        min_interval: config.feedback_interval,
                    }),
                )
            })
            .collect();

        // The front-end tier: `front_ends` independent dispatchers over
        // the same back-end nodes. `fes[0]` keeps the historical
        // `frontend` role; with more than one, the Vip routes new
        // connections across them and they gossip state peer-to-peer.
        let fes: Vec<Arc<FrontEnd>> = (0..config.front_ends)
            .map(|_| {
                Ok(Arc::new(
                    FrontEnd::with_health(
                        config.policy,
                        config.mechanism,
                        config.lard,
                        config.health,
                        nodes.clone(),
                    )?
                    .with_disk_report_interval(config.disk_report_interval),
                ))
            })
            .collect::<Result<_, ConfigError>>()?;
        let frontend = fes[0].clone();
        // Capacity weights and standby gating: a standby slot is part of
        // nobody's serving set until its Join handshake — its breaker
        // starts Open on every front-end, so no policy decision can
        // route there (absent equals unhealthy).
        for fe in &fes {
            for (i, &w) in weights.iter().enumerate() {
                fe.set_node_weight(NodeId(i), w);
            }
            for i in config.nodes..total_nodes {
                fe.health().force_open(NodeId(i));
            }
        }
        let vip = (config.front_ends > 1).then(|| Vip::start(fes.clone(), config.gossip_interval));

        // Control sessions (§7.1): one loopback stream per back-end over
        // which the node pushes framed disk-queue and cache-feedback
        // reports. The node side attaches to the NodeState; the front-end
        // side is drained by per-node reader threads (thread model) or by
        // the reactor shards' pollers as registered readiness sources
        // (reactor model). Frames carry the node id; the receive side is
        // additionally tagged with it so an unexpected EOF can name the
        // failed node.
        let mut control_rx: Vec<(usize, TcpStream)> = Vec::new();
        if config.cache_feedback {
            let ctl_listener = TcpListener::bind("127.0.0.1:0").expect("bind control listener");
            let ctl_addr = ctl_listener.local_addr().expect("control addr");
            // Serving nodes only: a standby slot gets its session from
            // its Join handshake.
            for (i, node) in nodes.iter().enumerate().take(config.nodes) {
                let tx = TcpStream::connect(ctl_addr).expect("connect control session");
                let (rx, _) = ctl_listener.accept().expect("accept control session");
                node.attach_control(tx);
                control_rx.push((i, rx));
            }
        }

        let mut accept_threads = Vec::new();
        // Addresses whose *blocking* accept loops need a wake-up connect
        // at shutdown (none of the reactor-owned listeners do).
        let mut listeners = Vec::new();

        let mut worker_threads = Vec::new();
        let mut control_threads = Vec::new();
        let mut work_tx = None;
        let mut reactor_handle = None;
        let mut reactor_stats = None;
        let mut accept_handoff = None;
        let mut fe_addrs = Vec::new();
        match config.io_model {
            IoModel::Threads => {
                listeners.extend(peer_addrs.iter().copied());
                // Peer servers: serve lateral fetches against their node's
                // state. Under the thread model peer connections are few
                // (bounded by the pooled lateral links) and long-lived, so
                // a thread per connection is fine here. (The reactor model
                // instead registers the peer listeners on its shards.)
                for (listener, node) in peer_listeners.into_iter().zip(nodes.iter()) {
                    let node = node.clone();
                    let stop = stop.clone();
                    let threads = peer_threads.clone();
                    let timeout = config.read_timeout;
                    let zero_copy = config.zero_copy;
                    accept_threads.push(std::thread::spawn(move || {
                        for incoming in listener.incoming() {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let Ok(stream) = incoming else { break };
                            let node = node.clone();
                            let handle = std::thread::spawn(move || {
                                let _ = serve_peer_connection(stream, &node, timeout, zero_copy);
                            });
                            threads.lock().push(handle);
                        }
                    }));
                }
                // Control-session readers: one blocking thread per node,
                // decoding frames and applying them to the dispatcher.
                // They exit on EOF — the clean quiescent-flush EOF
                // `Cluster::shutdown` produces after setting the stop
                // flag, or a crash EOF, which evicts the node's mappings.
                for (node_idx, rx) in control_rx.drain(..) {
                    let fes = fes.clone();
                    let stop = stop.clone();
                    control_threads.push(std::thread::spawn(move || {
                        run_control_reader(rx, &fes, NodeId(node_idx), &stop);
                    }));
                }
                // Client-connection worker pool: pre-spawned handlers pull
                // accepted streams off a channel, so accepting a connection
                // costs a channel send rather than a thread spawn. Each
                // entry carries the front-end the Vip admitted it to (index
                // 0 and no tier ticket when there is no tier).
                let (tx, work_rx) =
                    crossbeam::channel::unbounded::<(TcpStream, usize, Option<ConnId>)>();
                worker_threads.reserve(config.workers);
                for _ in 0..config.workers {
                    let rx = work_rx.clone();
                    let fes = fes.clone();
                    let vip = vip.clone();
                    let store = store.clone();
                    let timeout = config.read_timeout;
                    let migration_delay = config.migration_delay;
                    let zero_copy = config.zero_copy;
                    worker_threads.push(std::thread::spawn(move || {
                        while let Ok((stream, fe_idx, ticket)) = rx.recv() {
                            let _ = handle_client_connection(
                                stream,
                                &fes[fe_idx],
                                &store,
                                timeout,
                                migration_delay,
                                zero_copy,
                            );
                            // The connection has fully unwound: tell the
                            // tier so its forwarding route is removed.
                            if let (Some(vip), Some(conn)) = (&vip, ticket) {
                                vip.release(fe_idx, conn);
                            }
                        }
                    }));
                }
                // Front-end acceptors, all feeding the shared worker pool.
                // With a tier, the acceptor runs the Vip admission
                // handshake before queueing the stream (the analogue of
                // the paper's front-end handing the TCP state to a node).
                for fe_listener in bind_std_frontends(config.fe_listeners) {
                    let addr = fe_listener.local_addr().expect("front-end addr");
                    fe_addrs.push(addr);
                    listeners.push(addr);
                    let stop = stop.clone();
                    let tx = tx.clone();
                    let vip = vip.clone();
                    accept_threads.push(std::thread::spawn(move || {
                        for incoming in fe_listener.incoming() {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let Ok(stream) = incoming else { break };
                            let (fe_idx, ticket) = admit_stream(vip.as_deref(), &stream);
                            if tx.send((stream, fe_idx, ticket)).is_err() {
                                break;
                            }
                        }
                    }));
                }
                work_tx = Some(tx);
            }
            IoModel::Reactor => {
                // The event-loop shards own every listener outright: the
                // front-end accept sockets, the peer lateral servers, and
                // the control sessions are all registered readiness
                // sources — no acceptor threads, no worker pool, no
                // per-peer-connection threads. Shutdown goes through the
                // shard wakers instead of wake-up connects.
                let shards = config.reactor_shards;
                // Per-shard front-end accept sockets. With one shard the
                // plain listeners suffice; with several, each address is
                // an SO_REUSEPORT group with one member per shard, so the
                // kernel spreads accepts with no cross-shard traffic.
                let mut groups: Vec<Vec<mio::net::TcpListener>> =
                    (0..shards).map(|_| Vec::new()).collect();
                // A front-end tier always accepts via handoff: the Vip
                // admission handshake blocks on a control round-trip,
                // which belongs on the acceptor threads, never inside an
                // event loop.
                let mut handoff = config.force_accept_handoff || vip.is_some();
                let mut std_fe_listeners = Vec::new();
                if shards == 1 && !handoff {
                    for l in bind_std_frontends(config.fe_listeners) {
                        fe_addrs.push(l.local_addr().expect("front-end addr"));
                        groups[0].push(mio::net::TcpListener::from_std(l));
                    }
                } else if !handoff {
                    'bind: for i in 0..config.fe_listeners.max(1) {
                        match bind_reuseport_group(i, shards) {
                            Ok((addr, group)) => {
                                fe_addrs.push(addr);
                                for (s, l) in group.into_iter().enumerate() {
                                    groups[s].push(l);
                                }
                            }
                            Err(_) => {
                                // The shim can't express the group here:
                                // fall back to acceptor handoff for every
                                // address (mixed modes would complicate
                                // shutdown for no benefit).
                                handoff = true;
                                break 'bind;
                            }
                        }
                    }
                }
                if handoff {
                    fe_addrs.clear();
                    groups = (0..shards).map(|_| Vec::new()).collect();
                    for l in bind_std_frontends(config.fe_listeners) {
                        let addr = l.local_addr().expect("front-end addr");
                        fe_addrs.push(addr);
                        listeners.push(addr);
                        std_fe_listeners.push(l);
                    }
                }
                let handle = reactor::spawn(
                    ReactorConfig {
                        migration_delay: config.migration_delay,
                        read_timeout: config.read_timeout,
                        shards,
                        peer_pool_cap: config.peer_pool_cap,
                        coalesce: config.coalesce_misses,
                        zero_copy: config.zero_copy,
                    },
                    fes.clone(),
                    vip.clone(),
                    store.clone(),
                    groups,
                    peer_listeners,
                    std::mem::take(&mut control_rx),
                    stop.clone(),
                )
                .expect("start reactor event loops");
                // Acceptor-handoff fallback: blocking acceptors hand each
                // accepted stream to the next shard round-robin (staggered
                // per listener so one hot address still spreads). Under a
                // tier this path is mandatory and the acceptor also runs
                // the Vip admission handshake.
                if handoff {
                    let injectors = handle.injectors();
                    for (i, fe_listener) in std_fe_listeners.into_iter().enumerate() {
                        let stop = stop.clone();
                        let injectors = injectors.clone();
                        let vip = vip.clone();
                        accept_threads.push(std::thread::spawn(move || {
                            for (n, incoming) in fe_listener.incoming().enumerate() {
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                                let Ok(stream) = incoming else { break };
                                let (fe_idx, ticket) = admit_stream(vip.as_deref(), &stream);
                                injectors[(i + n) % injectors.len()].push(stream, fe_idx, ticket);
                            }
                        }));
                    }
                }
                reactor_stats = Some(handle.stats());
                reactor_handle = Some(handle);
                accept_handoff = Some(handoff);
            }
        }

        // Breaker cooldown timer: Open breakers advance toward HalfOpen
        // probation once per interval, on every front-end.
        let health_thread = (config.health_tick_interval > Duration::ZERO).then(|| {
            let fes = fes.clone();
            let stop = stop.clone();
            let interval = config.health_tick_interval;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval.min(Duration::from_millis(5)));
                    // Accumulate short sleeps up to the interval so
                    // shutdown never waits out a long tick.
                    let mut slept = interval.min(Duration::from_millis(5));
                    while slept < interval && !stop.load(Ordering::Relaxed) {
                        let step = (interval - slept).min(Duration::from_millis(5));
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    for fe in &fes {
                        fe.health_tick();
                    }
                }
            })
        });

        Ok(Cluster {
            fe_addrs,
            frontend,
            fes,
            vip,
            store,
            stop,
            accept_threads,
            worker_threads,
            control_threads,
            work_tx,
            reactor: reactor_handle,
            reactor_stats,
            accept_handoff,
            peer_threads,
            listeners,
            cache_feedback: config.cache_feedback,
            weights,
            dynamic_control_threads: Mutex::new_classed(
                LockClass::other("dynamic-control-threads"),
                Vec::new(),
            ),
            health_thread,
        })
    }

    /// The primary address clients connect to.
    pub fn frontend_addr(&self) -> SocketAddr {
        self.fe_addrs[0]
    }

    /// Every front-end address (one per loopback alias); spread high
    /// connection-rate load across all of them.
    pub fn frontend_addrs(&self) -> &[SocketAddr] {
        &self.fe_addrs
    }

    /// The shared front-end (diagnostics).
    pub fn frontend(&self) -> &FrontEnd {
        &self.frontend
    }

    /// A shared handle to the front-end that outlives the cluster —
    /// lets tests assert on policy state after [`Cluster::shutdown`]
    /// (which consumes the cluster).
    pub fn frontend_shared(&self) -> Arc<FrontEnd> {
        self.frontend.clone()
    }

    /// Every front-end instance in the tier (`[0]` is
    /// [`frontend`](Self::frontend); length is
    /// [`ProtoConfig::front_ends`]).
    pub fn front_ends(&self) -> &[Arc<FrontEnd>] {
        &self.fes
    }

    /// The tier router, when `front_ends > 1`.
    pub fn vip(&self) -> Option<&Arc<Vip>> {
        self.vip.as_ref()
    }

    /// Decommissions front-end `f` (tier clusters only): new
    /// connections stop routing to it, its ring share is re-owned by
    /// the survivors, and its gossiped state is dropped — while its
    /// in-flight connections drain to completion. Returns `false` with
    /// no tier, for a dead `f`, or for the last live front-end.
    pub fn kill_frontend(&self, f: usize) -> bool {
        self.vip.as_ref().is_some_and(|vip| vip.kill_frontend(f))
    }

    /// The content store (for building verifying clients).
    pub fn store(&self) -> &Arc<ContentStore> {
        &self.store
    }

    /// Brings back-end slot `i` into the serving set via the
    /// control-plane `Join` handshake: a fresh control session is
    /// installed whose **first frame** is the node's Join announcement —
    /// slot, capacity weight, and its warm-cache journal — so every
    /// front-end warms its mapping belief from the journal, installs
    /// the weight, and closes the node's breaker *before* any feedback
    /// traffic follows on the same stream. With the control plane
    /// disabled ([`ProtoConfig::cache_feedback`] off) the handshake is
    /// applied in-process instead.
    ///
    /// Works for standby slots (first join) and for killed nodes
    /// (rejoin; see [`rejoin_node_warm`](Self::rejoin_node_warm) and
    /// [`rejoin_node_cold`](Self::rejoin_node_cold)). The node's
    /// listeners run from cluster start either way — joining is a
    /// control-plane admission, not a process launch.
    ///
    /// Dynamically installed sessions are drained by a dedicated
    /// blocking reader thread under **both** I/O models (the reactor's
    /// registered control sources are fixed at spawn; see
    /// ARCHITECTURE.md). Returns `false` for an out-of-range slot.
    pub fn join_node(&self, i: usize) -> bool {
        let nodes = self.frontend.nodes();
        if i >= nodes.len() {
            return false;
        }
        let node = nodes[i].clone();
        if !self.cache_feedback {
            let msg = node.join_msg(self.weights[i]);
            for fe in &self.fes {
                fe.apply_control(msg.clone());
            }
            return true;
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind join control listener");
        let addr = listener.local_addr().expect("join control addr");
        let tx = TcpStream::connect(addr).expect("connect join control session");
        let (rx, _) = listener.accept().expect("accept join control session");
        // Snapshot, announce, and install the session atomically: the
        // node keeps serving in-flight connections throughout its down
        // window, and an admission slipping between a detached snapshot
        // and the session install would be dropped by the session-less
        // flush path — cached content invisible to every mirror.
        node.attach_control_with_join(tx, self.weights[i])
            .expect("write join announcement");
        let fes = self.fes.clone();
        let stop = self.stop.clone();
        let handle = std::thread::spawn(move || run_control_reader(rx, &fes, NodeId(i), &stop));
        self.dynamic_control_threads.lock().push(handle);
        true
    }

    /// Kills back-end slot `i` as the failure detector sees it: the
    /// node side of its control session closes, every front-end's
    /// reader observes the EOF, evicts the node's mappings, and trips
    /// its breaker. Blocks until the breaker is `Open` on every
    /// front-end (so a subsequent rejoin cannot race the eviction);
    /// returns `false` if that does not happen within two seconds —
    /// e.g. the slot never had a session and was never serving. The
    /// node's listeners keep running; with the control plane disabled
    /// the eviction is applied in-process instead.
    pub fn kill_node(&self, i: usize) -> bool {
        let nodes = self.frontend.nodes();
        if i >= nodes.len() {
            return false;
        }
        if !self.cache_feedback {
            for fe in &self.fes {
                fe.evict_node(NodeId(i));
            }
            return true;
        }
        nodes[i].close_control();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let all_open = self
                .fes
                .iter()
                .all(|fe| fe.health().state(NodeId(i)) == phttp_core::HealthState::Open);
            if all_open {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Rejoins a killed node **warm**: its cache survived (the process
    /// restarted, memory did not), so the Join handshake replays the
    /// cache contents and front-ends route at it with beliefs already
    /// hot. Returns `false` for an out-of-range slot.
    pub fn rejoin_node_warm(&self, i: usize) -> bool {
        self.join_node(i)
    }

    /// Rejoins a killed node **cold**: the machine rebooted, so the
    /// cache is wiped first and the Join handshake carries an empty
    /// journal — front-ends re-learn its contents from feedback as it
    /// refills. Returns `false` for an out-of-range slot.
    pub fn rejoin_node_cold(&self, i: usize) -> bool {
        let nodes = self.frontend.nodes();
        if i >= nodes.len() {
            return false;
        }
        nodes[i].reset_cache();
        self.join_node(i)
    }

    /// Advances every front-end's Open breakers one cooldown tick (the
    /// periodic timer does this automatically unless
    /// [`ProtoConfig::health_tick_interval`] is zero).
    pub fn health_tick(&self) {
        for fe in &self.fes {
            fe.health_tick();
        }
    }

    /// Waits (up to `timeout`) for every client connection's policy state
    /// to unwind. Load generators return as soon as the last response
    /// arrives, which can be a beat before the handler thread observes
    /// the client's EOF and closes the connection — call this before
    /// asserting on post-traffic accounting.
    pub fn quiesce(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        for fe in &self.fes {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if !fe.quiesce(left) {
                return false;
            }
        }
        // Tier clusters additionally wait for every admitted
        // connection's close notification and settle the gossiped
        // views, so post-traffic assertions see converged state.
        match &self.vip {
            Some(vip) => {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                vip.quiesce(left)
            }
            None => true,
        }
    }

    /// Live reactor gauges — registered sources and pending timers
    /// across every shard — or `None` under [`IoModel::Threads`]. The
    /// soak test uses this to prove the slab and timer heap drain to
    /// zero once traffic stops.
    pub fn reactor_stats(&self) -> Option<&ReactorStats> {
        self.reactor_stats.as_deref()
    }

    /// Whether the reactor accepted via round-robin handoff rather than
    /// `SO_REUSEPORT` listener groups (`None` under
    /// [`IoModel::Threads`]). Diagnostics: lets tests assert the accept
    /// path they meant to exercise is the one that actually ran.
    pub fn used_accept_handoff(&self) -> Option<bool> {
        self.accept_handoff
    }

    /// Per-node statistics snapshot.
    pub fn node_stats(&self) -> Vec<NodeStatsSnapshot> {
        self.frontend
            .nodes()
            .iter()
            .map(|n| n.stats.snapshot())
            .collect()
    }

    /// Forces every node to flush its pending cache-feedback report over
    /// the control session *now*, regardless of batch/interval. The
    /// application is still asynchronous (the reader/poller has to drain
    /// the frames) — callers that need the dispatcher's belief settled
    /// poll [`FrontEnd::coherence`] after this. No-op when
    /// [`ProtoConfig::cache_feedback`] is off.
    pub fn flush_feedback(&self) {
        for node in self.frontend.nodes() {
            node.flush_feedback();
        }
    }

    /// Stops the cluster: closes the listeners and joins all threads.
    /// Under [`IoModel::Reactor`] this wakes the poller and waits for
    /// the event loop to drain every registered connection — a blocked
    /// `epoll_wait` cannot observe the stop flag on its own, and open
    /// client connections must unwind their dispatcher state rather
    /// than being abandoned to the kernel.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        // Wake every blocked accept with a throwaway connection.
        for addr in &self.listeners {
            let _ = TcpStream::connect(addr);
        }
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Closing the channel drains the pool: workers finish their current
        // connection and exit on the closed channel.
        drop(self.work_tx.take());
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // With every connection handler gone, pooled idle lateral streams
        // can only keep peer handler threads blocked in `read` until the
        // socket timeout; drop them so the peer joins below are prompt.
        for node in self.frontend.nodes() {
            node.drain_peer_pools();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.peer_threads.lock());
        for t in handles {
            let _ = t.join();
        }
        // Control sessions last: traffic has stopped, so flush whatever
        // feedback is still pending (the quiescent flush), then close the
        // node-side streams — the blocking readers see EOF after draining
        // the final frames and exit without any timeout.
        for node in self.frontend.nodes() {
            node.flush_feedback();
            node.close_control();
        }
        for t in self.control_threads.drain(..) {
            let _ = t.join();
        }
        // Dynamically joined nodes' readers exit on the same quiescent
        // EOF (their node-side streams closed above with the rest).
        let dynamic: Vec<_> = std::mem::take(&mut *self.dynamic_control_threads.lock());
        for t in dynamic {
            let _ = t.join();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
        // The tier last: every serving path has drained, so no more
        // admissions or releases are coming.
        if let Some(vip) = self.vip.take() {
            vip.shutdown();
        }
    }
}

/// Runs the Vip admission handshake for a freshly accepted client
/// stream, returning the front-end to serve it on plus the tier ticket
/// to release afterwards. Without a tier — or if every handshake fails
/// — the connection falls through to an untracked front-end: serving
/// beats strict bookkeeping, matching the paper's front-end which also
/// degrades rather than refusing clients.
fn admit_stream(vip: Option<&Vip>, stream: &TcpStream) -> (usize, Option<ConnId>) {
    let Some(vip) = vip else {
        return (0, None);
    };
    match stream.peer_addr() {
        Ok(peer) => match vip.admit(client_key(peer)) {
            Some((f, conn)) => (f, Some(conn)),
            None => (vip.any_alive(), None),
        },
        Err(_) => (vip.any_alive(), None),
    }
}

/// Accept-queue depth for the reuseport groups: shards drain accepts
/// promptly, but soak-scale connect bursts need room to queue.
const REUSEPORT_BACKLOG: u32 = 4096;

/// Binds the front-end listeners: one per loopback alias
/// (127.0.0.(1+i): the whole 127/8 block is local on Linux), falling
/// back to 127.0.0.1 where aliases are unavailable.
fn bind_std_frontends(count: usize) -> Vec<TcpListener> {
    (0..count.max(1))
        .map(|i| {
            let host = format!("127.0.0.{}:0", 1 + i as u8);
            TcpListener::bind(&host)
                .or_else(|_| TcpListener::bind("127.0.0.1:0"))
                .expect("bind front-end listener")
        })
        .collect()
}

/// Binds front-end alias `alias` as an `SO_REUSEPORT` group with
/// `shards` members: the first bind picks the port, the rest join it.
/// Any error means the shim cannot express the group here; the caller
/// falls back to acceptor handoff.
fn bind_reuseport_group(
    alias: usize,
    shards: usize,
) -> std::io::Result<(SocketAddr, Vec<mio::net::TcpListener>)> {
    let host: SocketAddr = format!("127.0.0.{}:0", 1 + alias as u8)
        .parse()
        .expect("loopback alias literal");
    let localhost: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
    let first = mio::net::TcpListener::bind_reuseport(host, REUSEPORT_BACKLOG)
        .or_else(|_| mio::net::TcpListener::bind_reuseport(localhost, REUSEPORT_BACKLOG))?;
    let addr = first.local_addr()?;
    let mut group = vec![first];
    for _ in 1..shards {
        group.push(mio::net::TcpListener::bind_reuseport(
            addr,
            REUSEPORT_BACKLOG,
        )?);
    }
    Ok((addr, group))
}

/// Drains one node's control session: decodes frames and applies them
/// to every front-end until EOF or a framing error ends the stream —
/// feedback describes the *node's* cache, which all front-ends in a
/// tier dispatch against, so each keeps its own belief current. An
/// EOF (or poisoned stream) while the cluster is **not** shutting down
/// is a node failure: the node's believed mappings are evicted. The
/// quiescent-flush EOF of a clean `Cluster::shutdown` never evicts —
/// the stop flag is set before the node-side streams close.
fn run_control_reader(
    mut stream: TcpStream,
    fes: &[Arc<FrontEnd>],
    node: NodeId,
    stop: &AtomicBool,
) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let fail = |fes: &[Arc<FrontEnd>]| {
        if !stop.load(Ordering::Relaxed) {
            for fe in fes {
                fe.evict_node(node);
            }
        }
    };
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                // EOF: the node side closed. Crash unless shutting down.
                fail(fes);
                return;
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                fail(fes);
                return;
            }
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next() {
                Ok(Some(msg)) => {
                    for fe in fes {
                        fe.apply_control(msg.clone());
                    }
                }
                Ok(None) => break,
                // Framing has no resync point; treat a poisoned session
                // like a dead node.
                Err(_) => {
                    fail(fes);
                    return;
                }
            }
        }
    }
}

/// Writes one response to a blocking socket. With `zero_copy`, the
/// serialized head and the shared body slice are gathered into a single
/// `writev` — the body is written straight out of the cache's (or the
/// store's) allocation, resuming mid-iovec on partial writes. Without
/// it, the response is flattened into one contiguous buffer first and
/// written whole — the copying baseline.
fn write_response(stream: &mut TcpStream, resp: &Response, zero_copy: bool) -> std::io::Result<()> {
    if !zero_copy {
        return stream.write_all(&resp.to_bytes());
    }
    let head = resp.head_bytes();
    let mut segs: [&[u8]; 2] = [&head, &resp.body];
    let mut idx = 0;
    while idx < segs.len() {
        if segs[idx].is_empty() {
            idx += 1;
            continue;
        }
        let bufs: Vec<std::io::IoSlice<'_>> = segs[idx..]
            .iter()
            .map(|s| std::io::IoSlice::new(s))
            .collect();
        match stream.write_vectored(&bufs) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted no bytes",
                ))
            }
            Ok(mut n) => {
                // Partial write: advance through the segments, possibly
                // landing mid-segment; the next call resumes there.
                while n > 0 {
                    let take = n.min(segs[idx].len());
                    segs[idx] = &segs[idx][take..];
                    n -= take;
                    if segs[idx].is_empty() {
                        idx += 1;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads at least one request (blocking), then drains whatever else has
/// already arrived — the handler's estimate of a pipelined batch, matching
/// the front-end's packet-arrival batch estimate in the paper.
fn read_batch(stream: &mut TcpStream, parser: &mut RequestParser) -> std::io::Result<Vec<Request>> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let batch = parser
            .drain()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if !batch.is_empty() {
            return Ok(batch);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(Vec::new()); // clean EOF
        }
        parser.feed(&buf[..n]);
    }
}

/// Serves one client connection end to end. See the module docs for the
/// protocol walk-through.
fn handle_client_connection(
    mut stream: TcpStream,
    fe: &FrontEnd,
    store: &ContentStore,
    timeout: Duration,
    migration_delay: Duration,
    zero_copy: bool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut parser = RequestParser::new();

    // First request: required before the policy can choose a node.
    let mut first_batch = read_batch(&mut stream, &mut parser)?;
    if first_batch.is_empty() {
        return Ok(());
    }
    let first = first_batch.remove(0);
    let Some(first_target) = store.lookup(&first.uri) else {
        write_response(&mut stream, &Response::not_found(first.version), zero_copy)?;
        return Ok(());
    };

    let conn = fe.alloc_conn();
    let node_id = fe.open_connection(conn, first_target);
    let _guard = ConnGuard::new(fe, conn);
    let mut node = fe.nodes()[node_id.0].clone();

    // Handoff complete: this thread is now the back-end connection handler.
    let keep = serve_one(&mut stream, &node, &first, Assignment::Local, zero_copy)?;
    if !keep {
        return Ok(());
    }
    // Any pipelined requests that arrived with the first one form the rest
    // of batch 0 in trace terms; treat them as a batch of their own.
    let mut pending = first_batch;
    loop {
        let batch = if pending.is_empty() {
            match read_batch(&mut stream, &mut parser) {
                Ok(b) => b,
                // A read timeout is the idle-close path.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
        } else {
            std::mem::take(&mut pending)
        };
        if batch.is_empty() {
            break; // client closed
        }
        // One dispatcher call for the whole pipelined batch: the parser
        // already drained it, so the policy can decide it under a single
        // connection-shard visit and grouped mapping-shard acquisitions
        // instead of per-request lock traffic. Unknown URIs get their 404
        // in sequence but take no part in the policy batch.
        let targets: Vec<Option<TargetId>> = batch.iter().map(|r| store.lookup(&r.uri)).collect();
        let known: Vec<TargetId> = targets.iter().filter_map(|&t| t).collect();
        let assignments = fe.assign_batch(conn, &known);
        let mut next_assignment = assignments.into_iter();
        for (req, target) in batch.iter().zip(&targets) {
            if target.is_none() {
                write_response(&mut stream, &Response::not_found(req.version), zero_copy)?;
                continue;
            }
            let mut assignment = next_assignment.next().expect("one assignment per target");
            if let Assignment::Remote(k) = assignment {
                // Under migrate semantics the dispatcher has re-homed the
                // connection: this thread now acts as back-end `k` (the
                // in-process analogue of handing the TCP state over), after
                // paying the emulated protocol cost. Checked against the
                // configured semantics, not `connection_node`: with batched
                // decisions a later request's migration may already have
                // re-homed the connection past `k`, but each hop still has
                // to be walked in order.
                if fe.semantics() == phttp_core::ForwardSemantics::Migrate {
                    std::thread::sleep(migration_delay);
                    node = fe.nodes()[k.0].clone();
                    node.stats.migrations_in.fetch_add(1, Ordering::Relaxed);
                    assignment = Assignment::Local;
                }
            }
            let keep = serve_one(&mut stream, &node, req, assignment, zero_copy)?;
            if !keep {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Serves a single request on the connection-handling node per the
/// assignment; returns whether the connection persists.
fn serve_one(
    stream: &mut TcpStream,
    node: &NodeState,
    req: &Request,
    assignment: Assignment,
    zero_copy: bool,
) -> std::io::Result<bool> {
    let body = match assignment {
        Assignment::Local => {
            let target = node
                .store
                .lookup(&req.uri)
                .expect("caller verified the target");
            node.serve_local(target)
        }
        Assignment::Remote(k) => {
            // Tag the request the way the paper's dispatcher does, then act
            // on the tag: fetch laterally from node k.
            let mut tagged = req.clone();
            tagged.tag(&format!("be_{}", k.0));
            let (_seg, rest) = Request::untag(&tagged.uri).expect("just tagged");
            let target = node.store.lookup(rest).expect("caller verified the target");
            match node.lateral_fetch_coalesced(k, target) {
                Ok(body) => body,
                // Fall back to local disk if the peer path fails: the
                // paper's prototype would surface an NFS error; degrading
                // to local service keeps the cluster available.
                Err(_) => node.serve_local(target),
            }
        }
    };
    // `body` is a clone of the cache's slice (or the store's fresh
    // allocation); the zero-copy write sends it without flattening.
    write_response(stream, &Response::ok(req.version, body), zero_copy)?;
    Ok(req.keep_alive())
}

/// Serves lateral fetches on a peer connection until EOF.
fn serve_peer_connection(
    mut stream: TcpStream,
    node: &NodeState,
    timeout: Duration,
    zero_copy: bool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut parser = RequestParser::new();
    loop {
        let batch = match read_batch(&mut stream, &mut parser) {
            Ok(b) => b,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if batch.is_empty() {
            return Ok(());
        }
        for req in batch {
            let resp = match node.store.lookup(&req.uri) {
                // Serving for a peer exercises THIS node's cache and disk.
                Some(target) => {
                    if node.take_lateral_fault() {
                        // Injected fault: die like a crashed lateral
                        // server — close without responding. The fetcher
                        // sees EOF mid-fetch and degrades to local
                        // service.
                        return Ok(());
                    }
                    node.stats.lateral_in.fetch_add(1, Ordering::Relaxed);
                    Response::ok(req.version, node.serve_local(target))
                }
                None => Response::not_found(req.version),
            };
            write_response(&mut stream, &resp, zero_copy)?;
        }
    }
}
