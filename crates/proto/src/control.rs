//! The control-plane session: framed messages from the back-ends to the
//! front-end.
//!
//! The paper's §7.1 gives every back-end a persistent *control session*
//! to the front-end, carrying the cluster state the dispatcher decides
//! on (disk queue lengths). This module is that wire: a length-framed
//! binary protocol over the per-node loopback control connection, with
//! two message types —
//!
//! * [`ControlMsg::DiskQueue`] — the paper's original payload, a node's
//!   current disk-queue depth;
//! * [`ControlMsg::CacheFeedback`] — the coherence extension: the node's
//!   ordered cache admission/eviction delta since its previous report,
//!   which the front-end folds into its mapping belief via
//!   [`phttp_core::ConcurrentDispatcher::apply_cache_feedback`].
//!
//! The front-end *tier* (multiple front-ends behind one VIP) reuses the
//! same framing for its peer-to-peer traffic:
//!
//! * [`ControlMsg::Handoff`] — one `phttp-handoff` control message
//!   ([`phttp_handoff::CtrlMsg`], carried in its own versioned wire
//!   encoding) — the VIP↔front-end admission/close protocol;
//! * [`ControlMsg::StateDelta`] — one front-end's gossiped share of
//!   dispatcher state ([`phttp_core::StateDelta`]), merged into the
//!   receiver's [`phttp_core::TierView`].
//!
//! Cluster elasticity adds one more back-end→front-end message:
//!
//! * [`ControlMsg::Join`] — a node announcing itself (or rejoining after
//!   a restart), carrying its relative capacity weight and a replay of
//!   its cache-admission journal so the dispatcher can warm its mapping
//!   beliefs before routing traffic at the newcomer.
//!
//! Framing is `[tag: u8][len: u32 LE][payload]`, with `len` bounded by
//! [`MAX_FRAME`] so a corrupt peer cannot make the receiver buffer
//! unboundedly. The [`FrameDecoder`] is incremental: feed it whatever
//! bytes arrived, pop complete messages — the same parser shape as the
//! HTTP side, so it works identically on a blocking reader thread
//! ([`IoModel::Threads`](crate::IoModel)) and as a registered readiness
//! source on the reactor's poller ([`IoModel::Reactor`](crate::IoModel)).

use phttp_core::{CacheEvent, NodeId, StateDelta};
use phttp_trace::TargetId;

/// Largest accepted frame payload. A feedback event costs 5 bytes, so
/// this bounds one report to ~200k events — far beyond any real batch,
/// while keeping a garbage length prefix from looking like a request to
/// buffer gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

const TAG_DISK_QUEUE: u8 = 1;
const TAG_CACHE_FEEDBACK: u8 = 2;
const TAG_HANDOFF: u8 = 3;
const TAG_STATE_DELTA: u8 = 4;
const TAG_JOIN: u8 = 5;
const EV_ADMIT: u8 = 0;
const EV_EVICT: u8 = 1;
/// Frame header: tag byte plus little-endian payload length.
const HEADER: usize = 5;

/// One control-session message from a back-end to the front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// Current disk-queue depth of `node` (the paper's §7.1 payload).
    DiskQueue {
        /// Reporting node.
        node: NodeId,
        /// Requests queued on or holding the node's disk.
        depth: u32,
    },
    /// Ordered cache admission/eviction delta of `node` since its
    /// previous report.
    CacheFeedback {
        /// Reporting node.
        node: NodeId,
        /// The delta, in the order it happened.
        events: Vec<CacheEvent>,
    },
    /// One `phttp-handoff` control message, carried in its own versioned
    /// wire encoding as the payload. Spoken on the VIP↔front-end
    /// admission sessions of a front-end tier.
    Handoff(phttp_handoff::CtrlMsg),
    /// One front-end's gossiped dispatcher-state share, merged into the
    /// receiving peer's [`phttp_core::TierView`].
    StateDelta(StateDelta),
    /// A node announcing itself on a fresh control session: its slot,
    /// capacity weight, and a journal replay of its current cache
    /// contents (oldest first) for dispatcher warm-up.
    Join {
        /// Joining node.
        node: NodeId,
        /// Relative serving capacity (≥ 1; 1 = baseline).
        weight: u32,
        /// Cache journal to warm the mapping belief from. Empty for a
        /// cold (freshly wiped) join.
        events: Vec<CacheEvent>,
    },
}

/// Appends `[count: u32 LE]` followed by 5 bytes per event — the shared
/// journal encoding of [`ControlMsg::CacheFeedback`] and
/// [`ControlMsg::Join`].
fn encode_events(events: &[CacheEvent], payload: &mut Vec<u8>) {
    payload.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for ev in events {
        let (t, target) = match ev {
            CacheEvent::Admit(t) => (EV_ADMIT, t),
            CacheEvent::Evict(t) => (EV_EVICT, t),
        };
        payload.push(t);
        payload.extend_from_slice(&target.0.to_le_bytes());
    }
}

/// Serializes one message into its wire frame.
pub fn encode(msg: &ControlMsg) -> Vec<u8> {
    let mut payload = Vec::new();
    let tag = match msg {
        ControlMsg::DiskQueue { node, depth } => {
            payload.extend_from_slice(&(node.0 as u32).to_le_bytes());
            payload.extend_from_slice(&depth.to_le_bytes());
            TAG_DISK_QUEUE
        }
        ControlMsg::CacheFeedback { node, events } => {
            payload.extend_from_slice(&(node.0 as u32).to_le_bytes());
            encode_events(events, &mut payload);
            TAG_CACHE_FEEDBACK
        }
        ControlMsg::Join {
            node,
            weight,
            events,
        } => {
            payload.extend_from_slice(&(node.0 as u32).to_le_bytes());
            payload.extend_from_slice(&weight.to_le_bytes());
            encode_events(events, &mut payload);
            TAG_JOIN
        }
        ControlMsg::Handoff(msg) => {
            phttp_handoff::wire::encode(msg, &mut payload);
            TAG_HANDOFF
        }
        ControlMsg::StateDelta(delta) => {
            payload = delta.encode();
            TAG_STATE_DELTA
        }
    };
    debug_assert!(payload.len() <= MAX_FRAME, "control frame over MAX_FRAME");
    let mut wire = Vec::with_capacity(HEADER + payload.len());
    wire.push(tag);
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    wire
}

/// Why a control stream's bytes could not be decoded. Any error poisons
/// the stream: framing has no resynchronization point, so the session
/// must be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown frame tag.
    BadTag(u8),
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// Payload shorter or longer than its message requires.
    Malformed,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadTag(t) => write!(f, "unknown control frame tag {t}"),
            DecodeError::Oversize(n) => write!(f, "control frame of {n} bytes exceeds MAX_FRAME"),
            DecodeError::Malformed => write!(f, "malformed control frame payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental frame parser for one control stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are
    /// needed, or an error that poisons the stream.
    #[allow(clippy::should_implement_trait)] // same shape as the HTTP parsers
    pub fn next(&mut self) -> Result<Option<ControlMsg>, DecodeError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER {
            return Ok(None);
        }
        let tag = avail[0];
        let len = u32::from_le_bytes([avail[1], avail[2], avail[3], avail[4]]);
        if len as usize > MAX_FRAME {
            return Err(DecodeError::Oversize(len));
        }
        if avail.len() < HEADER + len as usize {
            return Ok(None);
        }
        let payload = &avail[HEADER..HEADER + len as usize];
        let msg = Self::decode_payload(tag, payload)?;
        self.pos += HEADER + len as usize;
        Ok(Some(msg))
    }

    fn decode_payload(tag: u8, p: &[u8]) -> Result<ControlMsg, DecodeError> {
        let u32_at = |i: usize| -> Result<u32, DecodeError> {
            p.get(i..i + 4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .ok_or(DecodeError::Malformed)
        };
        match tag {
            TAG_DISK_QUEUE => {
                if p.len() != 8 {
                    return Err(DecodeError::Malformed);
                }
                Ok(ControlMsg::DiskQueue {
                    node: NodeId(u32_at(0)? as usize),
                    depth: u32_at(4)?,
                })
            }
            TAG_CACHE_FEEDBACK => {
                let node = NodeId(u32_at(0)? as usize);
                let events = Self::decode_events(p, 4)?;
                Ok(ControlMsg::CacheFeedback { node, events })
            }
            TAG_JOIN => {
                let node = NodeId(u32_at(0)? as usize);
                let weight = u32_at(4)?;
                if weight == 0 {
                    return Err(DecodeError::Malformed);
                }
                let events = Self::decode_events(p, 8)?;
                Ok(ControlMsg::Join {
                    node,
                    weight,
                    events,
                })
            }
            TAG_HANDOFF => match phttp_handoff::wire::decode(p) {
                Ok((msg, used)) if used == p.len() => Ok(ControlMsg::Handoff(msg)),
                _ => Err(DecodeError::Malformed),
            },
            TAG_STATE_DELTA => StateDelta::decode(p)
                .map(ControlMsg::StateDelta)
                .map_err(|_| DecodeError::Malformed),
            other => Err(DecodeError::BadTag(other)),
        }
    }

    /// Parses the shared `[count][5 bytes per event]` journal encoding
    /// starting at byte `off`, requiring it to consume the payload
    /// exactly.
    fn decode_events(p: &[u8], off: usize) -> Result<Vec<CacheEvent>, DecodeError> {
        let count_bytes = p.get(off..off + 4).ok_or(DecodeError::Malformed)?;
        let count = u32::from_le_bytes([
            count_bytes[0],
            count_bytes[1],
            count_bytes[2],
            count_bytes[3],
        ]) as usize;
        if p.len() != off + 4 + count * 5 {
            return Err(DecodeError::Malformed);
        }
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let at = off + 4 + i * 5;
            let t = p.get(at + 1..at + 5).ok_or(DecodeError::Malformed)?;
            let target = TargetId(u32::from_le_bytes([t[0], t[1], t[2], t[3]]));
            events.push(match p[at] {
                EV_ADMIT => CacheEvent::Admit(target),
                EV_EVICT => CacheEvent::Evict(target),
                _ => return Err(DecodeError::Malformed),
            });
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TargetId {
        TargetId(i)
    }

    #[test]
    fn roundtrip_disk_queue() {
        let msg = ControlMsg::DiskQueue {
            node: NodeId(3),
            depth: 17,
        };
        let mut dec = FrameDecoder::new();
        dec.feed(&encode(&msg));
        assert_eq!(dec.next().unwrap(), Some(msg));
        assert_eq!(dec.next().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn roundtrip_cache_feedback() {
        let msg = ControlMsg::CacheFeedback {
            node: NodeId(1),
            events: vec![
                CacheEvent::Admit(t(5)),
                CacheEvent::Evict(t(5)),
                CacheEvent::Admit(t(9)),
            ],
        };
        let mut dec = FrameDecoder::new();
        dec.feed(&encode(&msg));
        assert_eq!(dec.next().unwrap(), Some(msg));
    }

    #[test]
    fn roundtrip_join() {
        let msg = ControlMsg::Join {
            node: NodeId(2),
            weight: 4,
            events: vec![CacheEvent::Admit(t(3)), CacheEvent::Admit(t(8))],
        };
        let cold = ControlMsg::Join {
            node: NodeId(0),
            weight: 1,
            events: vec![],
        };
        let mut dec = FrameDecoder::new();
        dec.feed(&encode(&msg));
        dec.feed(&encode(&cold));
        assert_eq!(dec.next().unwrap(), Some(msg));
        assert_eq!(dec.next().unwrap(), Some(cold));
        assert_eq!(dec.next().unwrap(), None);

        // A zero weight is meaningless (division by capacity) and
        // poisons the stream.
        let mut dec = FrameDecoder::new();
        let mut wire = vec![TAG_JOIN, 12, 0, 0, 0];
        wire.extend_from_slice(&1u32.to_le_bytes()); // node
        wire.extend_from_slice(&0u32.to_le_bytes()); // weight 0
        wire.extend_from_slice(&0u32.to_le_bytes()); // no events
        dec.feed(&wire);
        assert_eq!(dec.next(), Err(DecodeError::Malformed));
    }

    #[test]
    fn roundtrip_handoff_and_state_delta() {
        use phttp_core::{FeId, StateDelta};
        let handoff = ControlMsg::Handoff(phttp_handoff::CtrlMsg::ConnClosed {
            conn: phttp_core::ConnId(42),
        });
        let delta = ControlMsg::StateDelta(StateDelta {
            origin: FeId(1),
            seq: 7,
            loads: vec![3, -1],
            mapping: vec![(t(9), vec![NodeId(0), NodeId(1)])],
        });
        let mut dec = FrameDecoder::new();
        dec.feed(&encode(&handoff));
        dec.feed(&encode(&delta));
        assert_eq!(dec.next().unwrap(), Some(handoff));
        assert_eq!(dec.next().unwrap(), Some(delta));
        assert_eq!(dec.next().unwrap(), None);

        // Truncated inner payloads poison the stream, same as any
        // other malformed frame.
        for tag in [TAG_HANDOFF, TAG_STATE_DELTA] {
            let mut dec = FrameDecoder::new();
            let mut wire = vec![tag];
            wire.extend_from_slice(&2u32.to_le_bytes());
            wire.extend_from_slice(&[0, 0]);
            dec.feed(&wire);
            assert_eq!(dec.next(), Err(DecodeError::Malformed));
        }
    }

    #[test]
    fn incremental_and_pipelined_frames() {
        let a = ControlMsg::DiskQueue {
            node: NodeId(0),
            depth: 1,
        };
        let b = ControlMsg::CacheFeedback {
            node: NodeId(2),
            events: vec![CacheEvent::Evict(t(7))],
        };
        let mut wire = encode(&a);
        wire.extend_from_slice(&encode(&b));
        let mut dec = FrameDecoder::new();
        // Byte-at-a-time delivery must produce the same messages.
        let mut got = Vec::new();
        for byte in wire {
            dec.feed(&[byte]);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn garbage_is_rejected_not_buffered() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[99, 1, 0, 0, 0, 0]);
        assert_eq!(dec.next(), Err(DecodeError::BadTag(99)));

        let mut dec = FrameDecoder::new();
        let mut wire = vec![TAG_CACHE_FEEDBACK];
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        dec.feed(&wire);
        assert_eq!(dec.next(), Err(DecodeError::Oversize(u32::MAX)));

        // Truncated payload length vs event count.
        let mut dec = FrameDecoder::new();
        let mut wire = vec![TAG_CACHE_FEEDBACK, 9, 0, 0, 0];
        wire.extend_from_slice(&1u32.to_le_bytes()); // node
        wire.extend_from_slice(&7u32.to_le_bytes()); // claims 7 events
        wire.push(0); // but one byte of payload follows
        dec.feed(&wire);
        assert_eq!(dec.next(), Err(DecodeError::Malformed));
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let msg = ControlMsg::DiskQueue {
            node: NodeId(0),
            depth: 0,
        };
        let wire = encode(&msg);
        let mut dec = FrameDecoder::new();
        for _ in 0..2000 {
            dec.feed(&wire);
            assert!(dec.next().unwrap().is_some());
        }
        assert!(
            dec.buf.len() < 3 * 4096,
            "decoder buffer leaked: {}",
            dec.buf.len()
        );
    }
}
