//! The front-end: policy decisions plus connection lifecycle, shared by the
//! acceptor and every connection-handler thread.
//!
//! This wraps [`phttp_core::ConcurrentDispatcher`] — the same layered
//! policy engine the simulator runs single-threaded — with **no lock of
//! its own**. Every handler thread calls straight into the dispatcher,
//! whose hot path takes only the mapping shard and connection shard for
//! the request in hand; the old `Mutex<Dispatcher>` that serialized all
//! policy decisions across handler threads is gone. The front-end also
//! feeds the dispatcher the back-ends' disk-queue depths (the control
//! session traffic of the paper's §7.1) and makes the lifecycle calls
//! idempotent so connection handlers can use plain drop-guards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phttp_core::{
    Assignment, ConcurrentDispatcher, ConnId, DispatcherConfig, ForwardSemantics, LardParams,
    Mechanism, NodeId, PolicyKind,
};
use phttp_trace::TargetId;

use crate::node::NodeState;

/// The shared front-end.
pub struct FrontEnd {
    dispatcher: ConcurrentDispatcher,
    nodes: Vec<Arc<NodeState>>,
    next_conn: AtomicU64,
}

impl FrontEnd {
    /// Creates a front-end over the given back-ends.
    ///
    /// # Panics
    ///
    /// Panics unless the mechanism is back-end forwarding (the paper's §7
    /// implementation choice) or multiple handoff (our extension, natural
    /// with in-process stream transfer).
    pub fn new(
        policy: PolicyKind,
        mechanism: Mechanism,
        params: LardParams,
        nodes: Vec<Arc<NodeState>>,
    ) -> Self {
        let semantics = match mechanism {
            Mechanism::BackendForwarding | Mechanism::SingleHandoff => {
                ForwardSemantics::LateralFetch
            }
            Mechanism::MultipleHandoff => ForwardSemantics::Migrate,
            other => panic!("prototype does not implement the {other} mechanism"),
        };
        let dispatcher = ConcurrentDispatcher::from_config(DispatcherConfig::new(
            policy,
            semantics,
            nodes.len(),
            params,
        ));
        FrontEnd {
            dispatcher,
            nodes,
            next_conn: AtomicU64::new(0),
        }
    }

    /// The back-end nodes.
    pub fn nodes(&self) -> &[Arc<NodeState>] {
        &self.nodes
    }

    /// Allocates a fresh connection id.
    pub fn alloc_conn(&self) -> ConnId {
        ConnId(self.next_conn.fetch_add(1, Ordering::Relaxed))
    }

    /// Policy decision for a new connection's first request.
    pub fn open_connection(&self, conn: ConnId, first: TargetId) -> NodeId {
        self.report_disks();
        self.dispatcher.open_connection(conn, first)
    }

    /// Marks the start of a pipelined batch of `n` requests.
    pub fn begin_batch(&self, conn: ConnId, n: usize) {
        self.dispatcher.begin_batch(conn, n.max(1));
    }

    /// Policy decision for a subsequent request on a persistent connection.
    pub fn assign(&self, conn: ConnId, target: TargetId) -> Assignment {
        self.report_disks();
        self.dispatcher.assign_request(conn, target)
    }

    /// The node currently handling `conn` (changes under multiple handoff).
    pub fn connection_node(&self, conn: ConnId) -> Option<NodeId> {
        self.dispatcher.connection_node(conn)
    }

    /// Closes a connection; safe to call more than once (the check and
    /// the removal are one atomic operation on the connection shard).
    pub fn close_connection(&self, conn: ConnId) {
        self.dispatcher.try_close_connection(conn);
    }

    /// Current load estimates (diagnostics).
    pub fn loads(&self) -> Vec<f64> {
        self.dispatcher.loads()
    }

    /// Number of currently tracked connections.
    pub fn active_connections(&self) -> usize {
        self.dispatcher.active_connections()
    }

    /// Mapping replication factor (diagnostics).
    pub fn replication_factor(&self) -> f64 {
        self.dispatcher.mapping().replication_factor()
    }

    /// Waits until every tracked connection has closed, up to `timeout`.
    /// Returns whether the front-end reached quiescence. Handler threads
    /// observe client EOFs asynchronously, so callers that need exact
    /// post-traffic accounting (tests, orderly shutdown) wait here
    /// instead of racing the teardown.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.active_connections() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Pushes every back-end's current disk-queue depth into the
    /// dispatcher (atomic stores; no locks).
    fn report_disks(&self) {
        for node in &self.nodes {
            self.dispatcher
                .report_disk_queue(node.id, node.disk_queue_len());
        }
    }
}

/// Drop-guard ensuring a connection is closed exactly once even if the
/// handler thread unwinds.
pub struct ConnGuard<'a> {
    fe: &'a FrontEnd,
    conn: ConnId,
}

impl<'a> ConnGuard<'a> {
    /// Registers the guard.
    pub fn new(fe: &'a FrontEnd, conn: ConnId) -> Self {
        ConnGuard { fe, conn }
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.fe.close_connection(self.conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DiskEmu;
    use crate::store::ContentStore;

    fn fe(policy: PolicyKind, n: usize) -> FrontEnd {
        let store = Arc::new(ContentStore::from_sizes(vec![1024; 16]));
        let nodes = (0..n)
            .map(|i| {
                Arc::new(NodeState::new(
                    NodeId(i),
                    1 << 20,
                    DiskEmu::default(),
                    store.clone(),
                    Vec::new(),
                ))
            })
            .collect();
        FrontEnd::new(
            policy,
            Mechanism::BackendForwarding,
            LardParams::default(),
            nodes,
        )
    }

    #[test]
    fn conn_ids_are_unique() {
        let fe = fe(PolicyKind::Wrr, 2);
        let a = fe.alloc_conn();
        let b = fe.alloc_conn();
        assert_ne!(a, b);
    }

    #[test]
    fn lifecycle_is_idempotent() {
        let fe = fe(PolicyKind::Lard, 2);
        let c = fe.alloc_conn();
        fe.open_connection(c, TargetId(1));
        assert_eq!(fe.active_connections(), 1);
        fe.close_connection(c);
        fe.close_connection(c); // second close is a no-op
        assert_eq!(fe.active_connections(), 0);
        assert!(fe.loads().iter().all(|&l| l.abs() < 1e-9));
    }

    #[test]
    fn guard_closes_on_drop() {
        let fe = fe(PolicyKind::ExtLard, 2);
        let c = fe.alloc_conn();
        fe.open_connection(c, TargetId(0));
        {
            let _g = ConnGuard::new(&fe, c);
        }
        assert_eq!(fe.active_connections(), 0);
    }

    #[test]
    fn lard_sticks_to_mapped_node() {
        let fe = fe(PolicyKind::Lard, 4);
        let c1 = fe.alloc_conn();
        let n1 = fe.open_connection(c1, TargetId(3));
        fe.close_connection(c1);
        let c2 = fe.alloc_conn();
        let n2 = fe.open_connection(c2, TargetId(3));
        assert_eq!(n1, n2);
    }

    #[test]
    fn handlers_share_the_frontend_without_a_global_lock() {
        let fe = Arc::new(fe(PolicyKind::ExtLard, 4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let fe = fe.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let c = fe.alloc_conn();
                        fe.open_connection(c, TargetId(i % 64));
                        fe.begin_batch(c, 2);
                        let _ = fe.assign(c, TargetId((i + 1) % 64));
                        let _ = fe.assign(c, TargetId((i + 7) % 64));
                        fe.close_connection(c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fe.active_connections(), 0);
        assert!(fe.loads().iter().all(|&l| l.abs() < 1e-9));
        assert!(fe.quiesce(Duration::from_secs(1)));
    }
}
