//! The front-end: policy decisions plus connection lifecycle, shared by the
//! acceptor and every connection-handler thread.
//!
//! This wraps [`phttp_core::ConcurrentDispatcher`] — the same layered
//! policy engine the simulator runs single-threaded — with **no lock of
//! its own**. Every handler thread calls straight into the dispatcher,
//! whose hot path takes only the mapping shard and connection shard for
//! the request in hand; the old `Mutex<Dispatcher>` that serialized all
//! policy decisions across handler threads is gone. The front-end also
//! feeds the dispatcher the back-ends' disk-queue depths (the control
//! session traffic of the paper's §7.1) — throttled to a configurable
//! reporting interval, mirroring the paper's periodic control-session
//! updates, so the per-decision hot path is not dominated by O(nodes)
//! bookkeeping — and makes the lifecycle calls idempotent so connection
//! handlers can use plain drop-guards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phttp_core::{
    Assignment, CoherenceSnapshot, ConcurrentDispatcher, ConnId, DispatcherConfig,
    ForwardSemantics, LardParams, Mechanism, NodeId, PolicyKind,
};
use phttp_trace::TargetId;

use crate::control::ControlMsg;
use crate::node::NodeState;

/// Why a front-end (and hence a cluster) could not be configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The prototype implements back-end forwarding, single handoff, and
    /// multiple handoff; the requested mechanism is simulator-only.
    UnsupportedMechanism(Mechanism),
    /// A corpus document is larger than the HTTP parsers'
    /// [`phttp_http::MAX_BODY`] bound: the cluster would serve responses
    /// its own clients and lateral fetches reject at runtime.
    TargetExceedsBodyLimit {
        /// The offending document size, bytes.
        size: u64,
    },
    /// `ProtoConfig::reactor_shards` is zero — a reactor front-end
    /// needs at least one event loop.
    ZeroReactorShards,
    /// `ProtoConfig::reactor_shards` asks for more than one shard under
    /// [`crate::IoModel::Threads`], which has no event loops to shard.
    ReactorShardsWithoutReactor {
        /// The requested shard count.
        shards: usize,
    },
    /// `ProtoConfig::peer_pool_cap` is zero: every lateral fetch would
    /// silently dial a fresh peer connection, defeating the persistent
    /// lateral sessions the paper's NFS stand-in depends on.
    ZeroPeerPoolCap,
    /// `ProtoConfig::front_ends` is zero — the cluster needs at least
    /// one front-end instance behind the VIP.
    ZeroFrontEnds,
    /// `ProtoConfig::node_weights` is non-empty but its length does not
    /// cover every back-end slot (serving plus standby).
    NodeWeightsMismatch {
        /// Slots the cluster allocates.
        expected: usize,
        /// Weights the config supplied.
        got: usize,
    },
    /// A `ProtoConfig::node_weights` entry is zero — a node with no
    /// capacity cannot be normalized against.
    ZeroNodeWeight {
        /// The offending slot.
        node: usize,
    },
    /// `ProtoConfig::health` has a zero threshold, cooldown, or
    /// probation quota (each must be at least 1).
    InvalidHealthConfig,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnsupportedMechanism(m) => {
                write!(f, "prototype does not implement the {m} mechanism")
            }
            ConfigError::TargetExceedsBodyLimit { size } => write!(
                f,
                "corpus document of {size} bytes exceeds the {} byte HTTP body limit",
                phttp_http::MAX_BODY
            ),
            ConfigError::ZeroReactorShards => {
                write!(f, "reactor_shards must be at least 1")
            }
            ConfigError::ReactorShardsWithoutReactor { shards } => write!(
                f,
                "reactor_shards = {shards} requires IoModel::Reactor (the thread model has no event loops to shard)"
            ),
            ConfigError::ZeroFrontEnds => {
                write!(f, "front_ends must be at least 1")
            }
            ConfigError::ZeroPeerPoolCap => {
                write!(f, "peer_pool_cap must be at least 1")
            }
            ConfigError::NodeWeightsMismatch { expected, got } => write!(
                f,
                "node_weights has {got} entries but the cluster allocates {expected} back-end slots"
            ),
            ConfigError::ZeroNodeWeight { node } => {
                write!(f, "node_weights[{node}] is zero; weights must be at least 1")
            }
            ConfigError::InvalidHealthConfig => {
                write!(
                    f,
                    "health config fields (fail_threshold, cooldown_ticks, probation) must all be at least 1"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Sentinel for "no disk report has been made yet": the first decision
/// always reports, regardless of the interval.
const NEVER: u64 = u64::MAX;

/// Default disk-queue reporting interval. The simulator's control
/// sessions report every 100 ms of simulated time; the prototype runs
/// wall-clock with much faster emulated disks, so it refreshes more
/// often — still thousands of decisions apart under load.
pub const DEFAULT_DISK_REPORT_INTERVAL: Duration = Duration::from_millis(2);

/// The shared front-end.
pub struct FrontEnd {
    dispatcher: ConcurrentDispatcher,
    nodes: Vec<Arc<NodeState>>,
    next_conn: AtomicU64,
    /// Disk-queue reporting throttle (µs between reports; 0 = every call).
    disk_report_interval_us: u64,
    /// Time base for the throttle timestamps.
    started: Instant,
    /// Microseconds (since `started`) of the last disk report, or
    /// [`NEVER`]. CAS-guarded so exactly one thread per interval pays the
    /// O(nodes) stores.
    last_disk_report: AtomicU64,
    /// Nodes evicted by the control-plane failure detector (see
    /// [`evict_node`](Self::evict_node)).
    node_evictions: AtomicU64,
    /// Nodes admitted (or re-admitted) through the control-plane
    /// [`ControlMsg::Join`] handshake.
    node_joins: AtomicU64,
}

impl FrontEnd {
    /// Creates a front-end over the given back-ends.
    ///
    /// Returns [`ConfigError::UnsupportedMechanism`] unless the mechanism
    /// is back-end forwarding (the paper's §7 implementation choice),
    /// single handoff, or multiple handoff (our extension, natural with
    /// in-process stream transfer).
    pub fn new(
        policy: PolicyKind,
        mechanism: Mechanism,
        params: LardParams,
        nodes: Vec<Arc<NodeState>>,
    ) -> Result<Self, ConfigError> {
        Self::with_health(
            policy,
            mechanism,
            params,
            phttp_core::HealthConfig::default(),
            nodes,
        )
    }

    /// [`new`](Self::new) with explicit circuit-breaker parameters for
    /// the per-node health gates.
    ///
    /// # Panics
    ///
    /// Panics if `health` is invalid (`Cluster::start` validates it
    /// first and reports a [`ConfigError`] instead).
    pub fn with_health(
        policy: PolicyKind,
        mechanism: Mechanism,
        params: LardParams,
        health: phttp_core::HealthConfig,
        nodes: Vec<Arc<NodeState>>,
    ) -> Result<Self, ConfigError> {
        let semantics = match mechanism {
            Mechanism::BackendForwarding | Mechanism::SingleHandoff => {
                ForwardSemantics::LateralFetch
            }
            Mechanism::MultipleHandoff => ForwardSemantics::Migrate,
            other => return Err(ConfigError::UnsupportedMechanism(other)),
        };
        let dispatcher = ConcurrentDispatcher::from_config(
            DispatcherConfig::new(policy, semantics, nodes.len(), params).with_health(health),
        );
        Ok(FrontEnd {
            dispatcher,
            nodes,
            next_conn: AtomicU64::new(0),
            disk_report_interval_us: DEFAULT_DISK_REPORT_INTERVAL.as_micros() as u64,
            started: Instant::now(),
            last_disk_report: AtomicU64::new(NEVER),
            node_evictions: AtomicU64::new(0),
            node_joins: AtomicU64::new(0),
        })
    }

    /// Overrides the disk-queue reporting interval (builder style, before
    /// the front-end is shared). `Duration::ZERO` reports on every
    /// decision — the pre-throttle behaviour, useful in tests.
    pub fn with_disk_report_interval(mut self, interval: Duration) -> Self {
        self.disk_report_interval_us = interval.as_micros() as u64;
        self
    }

    /// The back-end nodes.
    pub fn nodes(&self) -> &[Arc<NodeState>] {
        &self.nodes
    }

    /// Allocates a fresh connection id.
    pub fn alloc_conn(&self) -> ConnId {
        ConnId(self.next_conn.fetch_add(1, Ordering::Relaxed))
    }

    /// Policy decision for a new connection's first request.
    pub fn open_connection(&self, conn: ConnId, first: TargetId) -> NodeId {
        self.maybe_report_disks();
        self.dispatcher.open_connection(conn, first)
    }

    /// Marks the start of a pipelined batch of `n` requests.
    pub fn begin_batch(&self, conn: ConnId, n: usize) {
        self.dispatcher.begin_batch(conn, n.max(1));
    }

    /// Policy decision for a subsequent request on a persistent connection.
    pub fn assign(&self, conn: ConnId, target: TargetId) -> Assignment {
        self.maybe_report_disks();
        self.dispatcher.assign_request(conn, target)
    }

    /// Policy decisions for a whole pipelined batch: one dispatcher call,
    /// one connection-shard visit, grouped mapping-shard acquisitions —
    /// and at most one disk-report refresh for the entire batch.
    /// Equivalent to [`begin_batch`](Self::begin_batch) followed by
    /// [`assign`](Self::assign) per target, in order.
    pub fn assign_batch(&self, conn: ConnId, targets: &[TargetId]) -> Vec<Assignment> {
        self.maybe_report_disks();
        self.dispatcher.assign_batch(conn, targets)
    }

    /// The node currently handling `conn` (changes under multiple handoff).
    pub fn connection_node(&self, conn: ConnId) -> Option<NodeId> {
        self.dispatcher.connection_node(conn)
    }

    /// What a remote assignment means mechanically for this front-end
    /// (lateral fetch vs. connection migration).
    pub fn semantics(&self) -> ForwardSemantics {
        self.dispatcher.semantics()
    }

    /// Closes a connection; safe to call more than once (the check and
    /// the removal are one atomic operation on the connection shard).
    pub fn close_connection(&self, conn: ConnId) {
        self.dispatcher.try_close_connection(conn);
    }

    /// Current load estimates (diagnostics).
    pub fn loads(&self) -> Vec<f64> {
        self.dispatcher.loads()
    }

    /// Number of currently tracked connections.
    pub fn active_connections(&self) -> usize {
        self.dispatcher.active_connections()
    }

    /// Mapping replication factor (diagnostics).
    pub fn replication_factor(&self) -> f64 {
        self.dispatcher.mapping().replication_factor()
    }

    /// The dispatcher's sharded mapping table (diagnostics/tests — e.g.
    /// auditing the belief against the nodes' actual cache contents).
    pub fn mapping(&self) -> &phttp_core::ShardedMappingTable {
        self.dispatcher.mapping()
    }

    /// Applies one decoded control-session message to the dispatcher.
    /// Both I/O models funnel their control streams here: the blocking
    /// per-node reader threads under `IoModel::Threads`, and the
    /// registered control-channel readiness sources under
    /// `IoModel::Reactor`.
    pub fn apply_control(&self, msg: ControlMsg) {
        match msg {
            ControlMsg::DiskQueue { node, depth } => {
                if node.0 < self.nodes.len() {
                    self.dispatcher.report_disk_queue(node, depth as usize);
                }
            }
            ControlMsg::CacheFeedback { node, events } => {
                if node.0 < self.nodes.len() {
                    self.dispatcher.apply_cache_feedback(node, &events);
                }
            }
            ControlMsg::Join {
                node,
                weight,
                events,
            } => {
                if node.0 < self.nodes.len() && weight > 0 {
                    self.node_joins.fetch_add(1, Ordering::Relaxed);
                    self.dispatcher.set_node_weight(node, weight);
                    // Warm-up installs the journal's net cache contents
                    // as mapping beliefs and closes the node's breaker,
                    // so the first real decision can already route at
                    // the newcomer's warm cache.
                    self.dispatcher.warm_up(node, &events);
                }
            }
            // Tier traffic (VIP admission, peer gossip) travels on its
            // own sessions and never reaches the per-node control path.
            ControlMsg::Handoff(_) | ControlMsg::StateDelta(_) => {}
        }
    }

    /// Serializable projection of this front-end's dispatcher state —
    /// what it gossips to tier peers (its own loads, its full believed
    /// mapping).
    pub fn snapshot(&self) -> phttp_core::DispatcherSnapshot {
        self.dispatcher.snapshot()
    }

    /// Folds a merged peer-state diff ([`phttp_core::TierView::merge`])
    /// into the mapping belief.
    pub fn adopt_merge(&self, outcome: &phttp_core::MergeOutcome) {
        self.dispatcher.adopt_merge(outcome)
    }

    /// Installs the tier-gossiped remote load biases (aggregate peer
    /// load per back-end, fixed-point).
    pub fn set_remote_loads(&self, loads: &[i64]) {
        self.dispatcher.set_remote_loads(loads)
    }

    /// Decommissions `node` for mapping purposes: drops every believed
    /// mapping that references it and forgets its mirrored cache
    /// contents. This is the control-plane failure-handling hook — both
    /// I/O models call it when a node's control session hits an
    /// **unexpected** EOF (the node died); the quiescent-flush EOF of a
    /// clean `Cluster::shutdown` never does (distinguished by the stop
    /// flag, set before the node-side streams close). The node's
    /// listeners keep running — eviction is a mapping decommission, not
    /// a teardown — so the remaining traffic re-maps organically.
    pub fn evict_node(&self, node: NodeId) {
        if node.0 >= self.nodes.len() {
            return;
        }
        self.node_evictions.fetch_add(1, Ordering::Relaxed);
        self.dispatcher.evict_node(node);
    }

    /// How many times the failure detector evicted a node's mappings
    /// (0 across any clean cluster lifetime).
    pub fn node_evictions(&self) -> u64 {
        self.node_evictions.load(Ordering::Relaxed)
    }

    /// How many [`ControlMsg::Join`] handshakes this front-end has
    /// admitted (initial joins and post-restart rejoins alike).
    pub fn node_joins(&self) -> u64 {
        self.node_joins.load(Ordering::Relaxed)
    }

    /// The per-node circuit breakers gating this front-end's routing.
    pub fn health(&self) -> &phttp_core::HealthGate {
        self.dispatcher.health()
    }

    /// Advances every Open breaker's cooldown by one tick (the cluster's
    /// periodic health timer calls this; Open nodes relax to HalfOpen
    /// probation once their cooldown elapses).
    pub fn health_tick(&self) {
        self.dispatcher.health().tick_all();
    }

    /// Overrides one back-end's relative capacity weight.
    pub fn set_node_weight(&self, node: NodeId, weight: u32) {
        if node.0 < self.nodes.len() && weight > 0 {
            self.dispatcher.set_node_weight(node, weight);
        }
    }

    /// Coherence counters plus the divergence/believed-pair gauges
    /// (diagnostics; O(mapping size), not for the per-decision path).
    pub fn coherence(&self) -> CoherenceSnapshot {
        self.dispatcher.coherence()
    }

    /// Believed `(target, node)` pairs the feedback mirror says are not
    /// actually cached. See
    /// [`ConcurrentDispatcher::mapping_divergence`].
    pub fn mapping_divergence(&self) -> u64 {
        self.dispatcher.mapping_divergence()
    }

    /// Waits until every tracked connection has closed, up to `timeout`.
    /// Returns whether the front-end reached quiescence. Handler threads
    /// observe client EOFs asynchronously, so callers that need exact
    /// post-traffic accounting (tests, orderly shutdown) wait here
    /// instead of racing the teardown.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.active_connections() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Pushes every back-end's current disk-queue depth into the
    /// dispatcher, at most once per reporting interval across all handler
    /// threads. A decision used to pay O(nodes) atomic stores *every*
    /// time — pure control-session bookkeeping dominating the batched hot
    /// path. Now one CAS winner per interval refreshes the depths; every
    /// other caller pays a single relaxed load and moves on. Losing the
    /// CAS means somebody else just reported — equally fresh data.
    fn maybe_report_disks(&self) {
        let last = self.last_disk_report.load(Ordering::Relaxed);
        let now = self.started.elapsed().as_micros() as u64;
        if last != NEVER && now.saturating_sub(last) < self.disk_report_interval_us {
            return;
        }
        if self
            .last_disk_report
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            for node in &self.nodes {
                self.dispatcher
                    .report_disk_queue(node.id, node.disk_queue_len());
                // Same tick, other direction: sweep out any feedback a
                // now-idle node has buffered past its own interval (a
                // node only flushes at serve time; without this, the
                // last partial batch before an idle spell would sit
                // unreported). Honours the node's own reporting cadence;
                // no-op when feedback is disabled.
                node.flush_feedback_if_due();
            }
        }
    }
}

/// Drop-guard ensuring a connection is closed exactly once even if the
/// handler thread unwinds.
pub struct ConnGuard<'a> {
    fe: &'a FrontEnd,
    conn: ConnId,
}

impl<'a> ConnGuard<'a> {
    /// Registers the guard.
    pub fn new(fe: &'a FrontEnd, conn: ConnId) -> Self {
        ConnGuard { fe, conn }
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.fe.close_connection(self.conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DiskEmu;
    use crate::store::ContentStore;

    fn fe(policy: PolicyKind, n: usize) -> FrontEnd {
        let store = Arc::new(ContentStore::from_sizes(vec![1024; 16]));
        let nodes = (0..n)
            .map(|i| {
                Arc::new(NodeState::new(
                    NodeId(i),
                    1 << 20,
                    DiskEmu::default(),
                    store.clone(),
                    Vec::new(),
                ))
            })
            .collect();
        FrontEnd::new(
            policy,
            Mechanism::BackendForwarding,
            LardParams::default(),
            nodes,
        )
        .expect("back-end forwarding is supported")
    }

    #[test]
    fn simulator_only_mechanisms_are_config_errors() {
        let store = Arc::new(ContentStore::from_sizes(vec![1024; 4]));
        for mech in [Mechanism::RelayingFrontend, Mechanism::ZeroCost] {
            let nodes = vec![Arc::new(NodeState::new(
                NodeId(0),
                1 << 20,
                DiskEmu::default(),
                store.clone(),
                Vec::new(),
            ))];
            let err = match FrontEnd::new(PolicyKind::Wrr, mech, LardParams::default(), nodes) {
                Err(e) => e,
                Ok(_) => panic!("{mech} must not construct a front-end"),
            };
            assert_eq!(err, ConfigError::UnsupportedMechanism(mech));
            assert!(err.to_string().contains("does not implement"));
        }
    }

    #[test]
    fn assign_batch_matches_sequential_assigns() {
        let fe_batch = fe(PolicyKind::ExtLard, 3).with_disk_report_interval(Duration::ZERO);
        let fe_seq = fe(PolicyKind::ExtLard, 3).with_disk_report_interval(Duration::ZERO);
        let targets: Vec<TargetId> = (0..6).map(TargetId).collect();
        for f in [&fe_batch, &fe_seq] {
            let c = f.alloc_conn();
            assert_eq!(c, ConnId(0));
            f.open_connection(c, TargetId(40));
        }
        let batched = fe_batch.assign_batch(ConnId(0), &targets);
        fe_seq.begin_batch(ConnId(0), targets.len());
        let sequential: Vec<Assignment> = targets
            .iter()
            .map(|&t| fe_seq.assign(ConnId(0), t))
            .collect();
        assert_eq!(batched, sequential);
        assert_eq!(fe_batch.loads(), fe_seq.loads());
    }

    #[test]
    fn disk_reports_are_throttled() {
        // A long interval: only the first decision reports (NEVER -> t0);
        // every later decision inside the interval must leave the
        // last-report stamp untouched.
        let slow = fe(PolicyKind::ExtLard, 2).with_disk_report_interval(Duration::from_secs(3600));
        assert_eq!(slow.last_disk_report.load(Ordering::Relaxed), NEVER);
        let c = slow.alloc_conn();
        slow.open_connection(c, TargetId(0)); // first report always fires
        let stamp = slow.last_disk_report.load(Ordering::Relaxed);
        assert_ne!(stamp, NEVER);
        slow.assign_batch(c, &[TargetId(1), TargetId(2)]);
        slow.assign(c, TargetId(3));
        assert_eq!(
            slow.last_disk_report.load(Ordering::Relaxed),
            stamp,
            "decisions within the interval must not re-report"
        );

        // Zero interval: every decision refreshes (pre-throttle behaviour).
        let fe0 = fe(PolicyKind::ExtLard, 2).with_disk_report_interval(Duration::ZERO);
        let c0 = fe0.alloc_conn();
        fe0.open_connection(c0, TargetId(0));
        let s1 = fe0.last_disk_report.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(2));
        fe0.assign_batch(c0, &[TargetId(1)]);
        let s2 = fe0.last_disk_report.load(Ordering::Relaxed);
        assert!(s2 > s1, "zero interval must report on every decision");
    }

    #[test]
    fn conn_ids_are_unique() {
        let fe = fe(PolicyKind::Wrr, 2);
        let a = fe.alloc_conn();
        let b = fe.alloc_conn();
        assert_ne!(a, b);
    }

    #[test]
    fn lifecycle_is_idempotent() {
        let fe = fe(PolicyKind::Lard, 2);
        let c = fe.alloc_conn();
        fe.open_connection(c, TargetId(1));
        assert_eq!(fe.active_connections(), 1);
        fe.close_connection(c);
        fe.close_connection(c); // second close is a no-op
        assert_eq!(fe.active_connections(), 0);
        assert!(fe.loads().iter().all(|&l| l.abs() < 1e-9));
    }

    #[test]
    fn guard_closes_on_drop() {
        let fe = fe(PolicyKind::ExtLard, 2);
        let c = fe.alloc_conn();
        fe.open_connection(c, TargetId(0));
        {
            let _g = ConnGuard::new(&fe, c);
        }
        assert_eq!(fe.active_connections(), 0);
    }

    #[test]
    fn lard_sticks_to_mapped_node() {
        let fe = fe(PolicyKind::Lard, 4);
        let c1 = fe.alloc_conn();
        let n1 = fe.open_connection(c1, TargetId(3));
        fe.close_connection(c1);
        let c2 = fe.alloc_conn();
        let n2 = fe.open_connection(c2, TargetId(3));
        assert_eq!(n1, n2);
    }

    #[test]
    fn join_control_message_warms_mapping_and_closes_breaker() {
        use phttp_core::{CacheEvent, HealthState};
        let fe = fe(PolicyKind::ExtLard, 3);
        let node = NodeId(2);
        // Node died: failure detector evicts it and trips its breaker.
        fe.evict_node(node);
        assert_eq!(fe.health().state(node), HealthState::Open);

        // It rejoins with a warm cache journal: t5 admitted, t6
        // admitted-then-evicted.
        fe.apply_control(ControlMsg::Join {
            node,
            weight: 3,
            events: vec![
                CacheEvent::Admit(TargetId(5)),
                CacheEvent::Admit(TargetId(6)),
                CacheEvent::Evict(TargetId(6)),
            ],
        });
        assert_eq!(fe.node_joins(), 1);
        assert_eq!(fe.health().state(node), HealthState::Closed);
        assert!(fe.mapping().nodes(TargetId(5)).contains(&node));
        assert!(!fe.mapping().nodes(TargetId(6)).contains(&node));
        assert_eq!(fe.mapping_divergence(), 0, "warm-up must stay coherent");

        // Out-of-range slots and zero weights are ignored, not applied.
        fe.apply_control(ControlMsg::Join {
            node: NodeId(9),
            weight: 1,
            events: vec![],
        });
        fe.apply_control(ControlMsg::Join {
            node,
            weight: 0,
            events: vec![],
        });
        assert_eq!(fe.node_joins(), 1);
    }

    #[test]
    fn handlers_share_the_frontend_without_a_global_lock() {
        let fe = Arc::new(fe(PolicyKind::ExtLard, 4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let fe = fe.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let c = fe.alloc_conn();
                        fe.open_connection(c, TargetId(i % 64));
                        fe.begin_batch(c, 2);
                        let _ = fe.assign(c, TargetId((i + 1) % 64));
                        let _ = fe.assign(c, TargetId((i + 7) % 64));
                        fe.close_connection(c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fe.active_connections(), 0);
        assert!(fe.loads().iter().all(|&l| l.abs() < 1e-9));
        assert!(fe.quiesce(Duration::from_secs(1)));
    }
}
