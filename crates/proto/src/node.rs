//! Back-end node state: file cache, emulated disk, peer connections, stats.
//!
//! Each node owns a byte-budget LRU cache (standing in for FreeBSD's unified
//! buffer cache), an emulated disk (a mutex-serialized sleep, preserving the
//! one-disk-per-node queueing behaviour the extended-LARD heuristic observes),
//! and a pool of persistent lateral TCP connections to its peers (standing in
//! for the paper's NFS cross-mounts — DESIGN.md §6.3). Remotely fetched
//! content is never inserted into the fetching node's cache, mirroring the
//! paper's disabled NFS client caching.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, LockClass, Mutex};
use phttp_core::{CacheEvent, NodeId};
use phttp_http::{Request, ResponseParser, Version};
use phttp_simcore::lru::{EvictPolicy, LruCache};
use phttp_trace::TargetId;

use crate::control::{encode, ControlMsg};
use crate::store::ContentStore;

/// Emulated disk timing.
#[derive(Debug, Clone, Copy)]
pub struct DiskEmu {
    /// Fixed positioning delay per read.
    pub seek: Duration,
    /// Transfer rate in bytes/second.
    pub bytes_per_sec: f64,
}

impl Default for DiskEmu {
    fn default() -> Self {
        // Scaled down ~5x from the 1998-era disk the simulator models, so
        // prototype experiments finish quickly while misses still dominate
        // cache hits by orders of magnitude.
        DiskEmu {
            seek: Duration::from_micros(2_000),
            bytes_per_sec: 60.0 * 1024.0 * 1024.0,
        }
    }
}

impl DiskEmu {
    /// Read latency for `bytes`.
    pub fn read_time(&self, bytes: u64) -> Duration {
        self.seek + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// Cache-feedback reporting behaviour of a back-end node.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackConfig {
    /// Whether the node tracks and reports its cache admission/eviction
    /// deltas over the control session at all.
    pub enabled: bool,
    /// Flush a report as soon as this many events are pending, even
    /// inside the interval (bounds report size under churn).
    pub batch: usize,
    /// Minimum spacing between reports otherwise (the paper's periodic
    /// control-session cadence).
    pub min_interval: Duration,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            enabled: true,
            batch: 64,
            min_interval: Duration::from_millis(5),
        }
    }
}

/// Outbound bytes a dead-reader control session may queue before the
/// node declares the session lost and stops reporting.
const MAX_CONTROL_BACKLOG: usize = 4 * 1024 * 1024;

/// Events per encoded feedback frame. One event costs 5 wire bytes, so
/// 4096 events is ~20 KiB — comfortably under the protocol's
/// [`MAX_FRAME`](crate::control::MAX_FRAME) bound however large the
/// pending backlog (or the `feedback_batch` knob) grows; a flush emits
/// as many frames as it needs.
const FEEDBACK_EVENTS_PER_FRAME: usize = 4096;

/// Node-side state of the control session: pending (unencoded) events,
/// encoded-but-unwritten bytes, and the stream itself. Writes are
/// non-blocking — under [`IoModel::Reactor`](crate::IoModel) the event
/// loop is both this writer (disk completions run on it) and the
/// front-end-side reader, so a blocking write could deadlock the loop
/// against itself; unwritten bytes stay queued and retry on the next
/// flush instead.
#[derive(Debug, Default)]
struct ControlTx {
    stream: Option<TcpStream>,
    pending: Vec<CacheEvent>,
    outbuf: Vec<u8>,
    last_flush: Option<Instant>,
}

/// Outcome of a single-flight fetch, observed by its parked waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlightOutcome {
    /// The fetch is still in flight.
    Pending,
    /// The leader fetched the document (for local flights, it is now in
    /// the cache; for lateral flights, the response body is reproducible
    /// from the store).
    Done,
    /// The leader's fetch failed; every waiter must fail over itself.
    Failed,
}

/// One in-flight fetch in a single-flight table (threads I/O model): the
/// leader completes it exactly once; waiters block on the condvar.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightOutcome>,
    cv: Condvar,
    /// Requests parked on this flight so far (MAD delay estimation).
    waiters: AtomicU64,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new_classed(LockClass::flight(), FlightOutcome::Pending),
            cv: Condvar::new(),
            waiters: AtomicU64::new(0),
        }
    }

    fn complete(&self, outcome: FlightOutcome) {
        *self.state.lock() = outcome;
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightOutcome {
        let mut st = self.state.lock();
        while *st == FlightOutcome::Pending {
            self.cv.wait(&mut st);
        }
        *st
    }
}

/// Per-node counters (all monotonic).
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Requests served by this node (local + lateral service).
    pub served: AtomicU64,
    /// Cache hits among served requests.
    pub hits: AtomicU64,
    /// Lateral fetches issued by this node (as connection handler).
    pub lateral_out: AtomicU64,
    /// Lateral requests served by this node (as peer).
    pub lateral_in: AtomicU64,
    /// Connections migrated onto this node (multiple handoff).
    pub migrations_in: AtomicU64,
    /// Response payload bytes produced by this node.
    pub bytes: AtomicU64,
    /// Emulated disk reads actually performed (misses that reached the
    /// spindle; under coalescing, one per flight rather than per miss).
    pub disk_reads: AtomicU64,
    /// Requests that parked on an already-in-flight fetch for their
    /// target — delayed hits — instead of fetching redundantly. Zero
    /// when coalescing is off.
    pub coalesced_waits: AtomicU64,
}

/// Snapshot of [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// Requests served by this node.
    pub served: u64,
    /// Cache hits among them.
    pub hits: u64,
    /// Lateral fetches issued.
    pub lateral_out: u64,
    /// Lateral requests served for peers.
    pub lateral_in: u64,
    /// Connections migrated onto this node.
    pub migrations_in: u64,
    /// Payload bytes produced.
    pub bytes: u64,
    /// Emulated disk reads performed.
    pub disk_reads: u64,
    /// Requests parked on in-flight fetches (delayed hits).
    pub coalesced_waits: u64,
}

impl NodeStats {
    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            lateral_out: self.lateral_out.load(Ordering::Relaxed),
            lateral_in: self.lateral_in.load(Ordering::Relaxed),
            migrations_in: self.migrations_in.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
        }
    }
}

/// Shared state of one back-end node.
pub struct NodeState {
    /// This node's index.
    pub id: NodeId,
    /// Main-memory file cache. Entries carry the body as a refcounted
    /// [`Bytes`] slice, so a hit clones a handle (O(1)) instead of
    /// regenerating the document; the cache is the body's sole long-term
    /// owner — serve paths hold extra handles only while bytes are in
    /// flight toward a socket.
    pub cache: Mutex<LruCache<TargetId, Bytes>>,
    /// Serializes disk reads (one spindle per node).
    disk: Mutex<()>,
    /// Number of requests queued on or holding the disk.
    disk_queue: AtomicUsize,
    /// Disk timing model.
    pub disk_emu: DiskEmu,
    /// The document corpus.
    pub store: std::sync::Arc<ContentStore>,
    /// Peer lateral-fetch addresses, indexed by node id.
    pub peer_addrs: Vec<SocketAddr>,
    /// Idle persistent lateral connections, per peer.
    peer_pool: Vec<Mutex<Vec<TcpStream>>>,
    /// Idle lateral connections retained per peer pool.
    peer_pool_cap: usize,
    /// Pending injected lateral-server faults (tests): while positive,
    /// the next lateral request this node would serve kills its peer
    /// connection instead — the deterministic stand-in for a lateral
    /// server crashing mid-fetch.
    lateral_faults: AtomicI64,
    /// Counters.
    pub stats: NodeStats,
    /// Cache-feedback reporting behaviour.
    feedback: FeedbackConfig,
    /// Node side of the control session (lock order: `cache` may be held
    /// when taking `control`, never the reverse).
    control: Mutex<ControlTx>,
    /// Single-flight miss coalescing (threads I/O model; the reactor
    /// keeps its own per-shard flight tables).
    coalesce: bool,
    /// In-flight local disk fetches, keyed by target. Lock order:
    /// `cache` may be held when taking this, never the reverse —
    /// registering a waiter under the cache lock closes the race with
    /// the leader's insert-then-remove completion.
    disk_flights: Mutex<HashMap<TargetId, Arc<Flight>>>,
    /// In-flight lateral fetches, keyed by (remote node, target).
    lateral_flights: Mutex<HashMap<(usize, TargetId), Arc<Flight>>>,
}

impl NodeState {
    /// Creates a node.
    pub fn new(
        id: NodeId,
        cache_bytes: u64,
        disk_emu: DiskEmu,
        store: std::sync::Arc<ContentStore>,
        peer_addrs: Vec<SocketAddr>,
    ) -> Self {
        let nid = id.0 as u32;
        let peer_pool = (0..peer_addrs.len())
            .map(|p| Mutex::new_classed(LockClass::peer_pool(p as u32), Vec::new()))
            .collect();
        let feedback = FeedbackConfig::default();
        let mut cache: LruCache<TargetId, Bytes> = LruCache::new(cache_bytes);
        cache.set_journal(feedback.enabled);
        NodeState {
            id,
            cache: Mutex::new_classed(LockClass::cache(nid), cache),
            disk: Mutex::new_classed(LockClass::disk_spindle(nid), ()),
            disk_queue: AtomicUsize::new(0),
            disk_emu,
            store,
            peer_addrs,
            peer_pool,
            peer_pool_cap: 8,
            lateral_faults: AtomicI64::new(0),
            stats: NodeStats::default(),
            feedback,
            control: Mutex::new_classed(LockClass::control(nid), ControlTx::default()),
            coalesce: false,
            disk_flights: Mutex::new_classed(LockClass::disk_flights(nid), HashMap::new()),
            lateral_flights: Mutex::new_classed(LockClass::lateral_flights(nid), HashMap::new()),
        }
    }

    /// Overrides the cache-feedback behaviour (builder style, before the
    /// node is shared).
    pub fn with_feedback(mut self, cfg: FeedbackConfig) -> Self {
        self.cache.get_mut().set_journal(cfg.enabled);
        self.feedback = cfg;
        self
    }

    /// Overrides the per-peer idle lateral-connection pool capacity
    /// (builder style; `Cluster::start` validates it is non-zero).
    pub fn with_peer_pool_cap(mut self, cap: usize) -> Self {
        self.peer_pool_cap = cap;
        self
    }

    /// Enables or disables single-flight miss coalescing (builder style).
    /// With coalescing on, concurrent misses for the same target share
    /// one disk read (and concurrent lateral fetches for the same
    /// (remote, target) share one peer request) instead of queueing
    /// redundant work.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Whether single-flight miss coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Selects the cache victim-selection policy (builder style) — strict
    /// LRU or the delayed-hits-aware LRU-MAD.
    pub fn with_cache_policy(mut self, policy: EvictPolicy) -> Self {
        self.cache.get_mut().set_policy(policy);
        self
    }

    /// The per-peer idle lateral-connection pool capacity.
    pub fn peer_pool_cap(&self) -> usize {
        self.peer_pool_cap
    }

    /// Test hook: arms `n` lateral-server faults on this node. Each of
    /// the next `n` lateral requests it would serve kills that peer
    /// connection instead of responding — the fetching handler observes
    /// EOF mid-fetch and must degrade the fetch to local service. Both
    /// I/O models honour it.
    pub fn inject_lateral_faults(&self, n: u64) {
        self.lateral_faults.fetch_add(n as i64, Ordering::Relaxed);
    }

    /// Pending armed lateral faults (0 once every injected fault fired).
    pub fn pending_lateral_faults(&self) -> u64 {
        self.lateral_faults.load(Ordering::Relaxed).max(0) as u64
    }

    /// Consumes one armed lateral fault if any is pending.
    pub(crate) fn take_lateral_fault(&self) -> bool {
        if self.lateral_faults.load(Ordering::Relaxed) <= 0 {
            return false;
        }
        // The decrement below can push the counter negative under a
        // race; `pending_lateral_faults` clamps and the extra fault is
        // simply not taken (fetch_sub result tells us if we got one).
        self.lateral_faults.fetch_sub(1, Ordering::Relaxed) > 0
    }

    /// Attaches the node side of the control session. The stream is
    /// switched to non-blocking mode (see the private `ControlTx` type
    /// for why writes must never block).
    pub fn attach_control(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        stream
            .set_nonblocking(true)
            .expect("control stream non-blocking");
        self.control.lock().stream = Some(stream);
    }

    /// Atomically snapshots the cache, writes the [`ControlMsg::Join`]
    /// announcement on `stream`, and installs it as the control
    /// session. Holding the cache and control locks (in that order —
    /// the same order `cache_insert_reporting` takes them) across all
    /// three steps guarantees that every cache event generated after
    /// the snapshot is ordered *after* the `Join` frame on the wire,
    /// and that no stale pre-snapshot event survives to contradict it.
    /// Without this, an admission landing between a detached
    /// [`join_msg`](Self::join_msg) snapshot and
    /// [`attach_control`](Self::attach_control) is silently dropped by
    /// the session-less flush path, leaving the target cached but
    /// absent from every mirror — a mapping divergence that no later
    /// cache hit ever repairs.
    pub fn attach_control_with_join(
        &self,
        mut stream: TcpStream,
        weight: u32,
    ) -> std::io::Result<()> {
        let cache = self.cache.lock();
        let mut tx = self.control.lock();
        let events = cache
            .contents_lru_order()
            .into_iter()
            .map(|(t, _)| CacheEvent::Admit(t))
            .collect();
        drop(cache);
        // Down-window residue describes states the snapshot supersedes.
        tx.pending.clear();
        tx.outbuf.clear();
        let msg = ControlMsg::Join {
            node: self.id,
            weight,
            events,
        };
        let _ = stream.set_nodelay(true);
        // Announce while the stream is still blocking (the control
        // session flips non-blocking for the node's feedback writes).
        stream.write_all(&encode(&msg))?;
        stream.set_nonblocking(true)?;
        tx.stream = Some(stream);
        Ok(())
    }

    /// Drops the node side of the control session; the front-end's
    /// reader observes EOF. Called by `Cluster::shutdown` so blocking
    /// control readers unwind without timeouts.
    pub fn close_control(&self) {
        let mut tx = self.control.lock();
        tx.stream = None;
        tx.pending.clear();
        tx.outbuf.clear();
    }

    /// Encodes and (non-blockingly) sends everything pending on the
    /// control session, regardless of batch size or interval. Used by
    /// the front-end's periodic tick to sweep out stragglers on idle
    /// nodes, by `Cluster::shutdown` for the final quiescent flush, and
    /// by tests that want the dispatcher's belief settled *now*.
    pub fn flush_feedback(&self) {
        if !self.feedback.enabled {
            return;
        }
        let mut tx = self.control.lock();
        self.maybe_flush(&mut tx, true);
    }

    /// Like [`flush_feedback`](Self::flush_feedback) but honouring the
    /// configured batch/interval thresholds — the front-end's periodic
    /// sweep uses this so an idle node's stragglers go out on the
    /// node's own reporting cadence, not the sweep's.
    pub fn flush_feedback_if_due(&self) {
        if !self.feedback.enabled {
            return;
        }
        let mut tx = self.control.lock();
        self.maybe_flush(&mut tx, false);
    }

    /// Inserts a just-read document into the cache and records the
    /// resulting admission/eviction delta for the next feedback report.
    /// Events are appended while the cache lock is still held (lock
    /// order: `cache` → `control`), so the per-node event order on the
    /// wire is exactly the cache's own mutation order — the property
    /// that lets the dispatcher's mirror replay to the true contents.
    /// `agg_delay_us` is the aggregate miss delay of the fetch that
    /// produced this insert (read latency times one-plus-waiters under
    /// coalescing) — the LRU-MAD policy's victim-scoring sample; plain
    /// LRU records and ignores it. `body` is the just-read document
    /// slice the cache takes (shared) ownership of.
    fn cache_insert_reporting(&self, target: TargetId, size: u64, agg_delay_us: u64, body: Bytes) {
        let mut cache = self.cache.lock();
        let admitted = cache.insert_valued_with_delay(target, size, body, agg_delay_us);
        if !self.feedback.enabled {
            return;
        }
        let evicted = cache.drain_evictions();
        let rejected = !admitted && !cache.contains(target);
        let mut tx = self.control.lock();
        drop(cache);
        if admitted {
            tx.pending.push(CacheEvent::Admit(target));
        } else if rejected {
            // Oversized target the cache refused: report it as "not
            // cached" so a belief about it cannot diverge forever.
            tx.pending.push(CacheEvent::Evict(target));
        }
        tx.pending
            .extend(evicted.into_iter().map(CacheEvent::Evict));
        self.maybe_flush(&mut tx, false);
    }

    /// Flushes the control session if `force`, the batch bound, or the
    /// reporting interval says so. Never blocks: unwritten bytes stay in
    /// `outbuf` for the next attempt, and a session whose reader stopped
    /// draining (backlog past [`MAX_CONTROL_BACKLOG`]) or errored is
    /// dropped.
    fn maybe_flush(&self, tx: &mut ControlTx, force: bool) {
        if tx.pending.is_empty() && tx.outbuf.is_empty() {
            return;
        }
        let due = force
            || tx.pending.len() >= self.feedback.batch
            || tx
                .last_flush
                .is_none_or(|at| at.elapsed() >= self.feedback.min_interval);
        if !due {
            return;
        }
        tx.last_flush = Some(Instant::now());
        if tx.stream.is_none() {
            // Standalone node (no session attached): reports have
            // nowhere to go; drop them so the buffer cannot grow.
            tx.pending.clear();
            tx.outbuf.clear();
            return;
        }
        if !tx.pending.is_empty() {
            let events = std::mem::take(&mut tx.pending);
            // Chunked so no single frame can exceed MAX_FRAME, whatever
            // the backlog or the configured batch size.
            for chunk in events.chunks(FEEDBACK_EVENTS_PER_FRAME) {
                let report = encode(&ControlMsg::CacheFeedback {
                    node: self.id,
                    events: chunk.to_vec(),
                });
                tx.outbuf.extend_from_slice(&report);
            }
            // The paper's control sessions carry queue lengths; ride the
            // current depth along with every feedback report.
            let depth = encode(&ControlMsg::DiskQueue {
                node: self.id,
                depth: self.disk_queue_len() as u32,
            });
            tx.outbuf.extend_from_slice(&depth);
        }
        let ControlTx { stream, outbuf, .. } = tx;
        let mut written = 0;
        let mut dead = false;
        if let Some(s) = stream.as_mut() {
            while written < outbuf.len() {
                match s.write(&outbuf[written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        outbuf.drain(..written);
        if dead || outbuf.len() > MAX_CONTROL_BACKLOG {
            *stream = None;
            outbuf.clear();
        }
    }

    /// Wipes the cache — a node restarting with cold memory — keeping
    /// its configuration, and drops any pending feedback events (they
    /// describe contents that no longer exist; the rejoin handshake's
    /// [`join_msg`](Self::join_msg) supersedes them).
    pub fn reset_cache(&self) {
        let mut cache = self.cache.lock();
        cache.clear();
        let mut tx = self.control.lock();
        drop(cache);
        tx.pending.clear();
        tx.outbuf.clear();
    }

    /// The current cache contents as an admission journal, least
    /// recently used first — replaying it through the dispatcher's
    /// mirror rebuilds the belief exactly, recency included. The warm
    /// half of the `Join` handshake.
    pub fn cache_snapshot_events(&self) -> Vec<CacheEvent> {
        self.cache
            .lock()
            .contents_lru_order()
            .into_iter()
            .map(|(t, _)| CacheEvent::Admit(t))
            .collect()
    }

    /// Builds this node's [`ControlMsg::Join`] announcement: slot,
    /// capacity weight, and the warm-cache journal (empty after
    /// [`reset_cache`](Self::reset_cache) — a cold join).
    pub fn join_msg(&self, weight: u32) -> ControlMsg {
        ControlMsg::Join {
            node: self.id,
            weight,
            events: self.cache_snapshot_events(),
        }
    }

    /// Current number of queued disk events (the observable the extended
    /// LARD policy reads over the control session).
    pub fn disk_queue_len(&self) -> usize {
        self.disk_queue.load(Ordering::Relaxed)
    }

    /// Serves `target` from this node: cache probe, disk on miss (inserting
    /// into the cache afterwards — the OS caches what it reads), body
    /// generation. Returns the response body.
    ///
    /// With coalescing on, a miss first consults the single-flight table
    /// (still under the cache lock, so the check cannot race the leader's
    /// insert-then-remove completion): if a fetch for this target is
    /// already in flight the request parks as a *delayed hit* and wakes
    /// when the leader's read completes; otherwise it becomes the flight
    /// leader and performs the one real disk read.
    pub fn serve_local(&self, target: TargetId) -> Bytes {
        enum Role {
            /// Cached: the body slice cloned out under the cache lock.
            Hit(Option<Bytes>),
            Solo,
            Leader(Arc<Flight>),
            Waiter(Arc<Flight>),
        }
        let size = self.store.size(target);
        let role = {
            let mut cache = self.cache.lock();
            if cache.touch(target) {
                Role::Hit(cache.get(target).cloned())
            } else if self.coalesce {
                let mut flights = self.disk_flights.lock();
                match flights.get(&target) {
                    Some(f) => {
                        f.waiters.fetch_add(1, Ordering::Relaxed);
                        Role::Waiter(f.clone())
                    }
                    None => {
                        let f = Arc::new(Flight::new());
                        flights.insert(target, f.clone());
                        Role::Leader(f)
                    }
                }
            } else {
                Role::Solo
            }
        };
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(size, Ordering::Relaxed);
        match role {
            Role::Hit(cached) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                // A hit serves the cache's own slice — no regeneration, no
                // copy. The fallback covers metadata-only entries, which
                // the serve path never creates (every admission below
                // carries its body).
                cached.unwrap_or_else(|| self.store.body(target))
            }
            Role::Solo => {
                let read = self.blocking_disk_read(size);
                let body = self.store.body(target);
                self.cache_insert_reporting(target, size, read.as_micros() as u64, body.clone());
                body
            }
            Role::Leader(f) => {
                let read = self.blocking_disk_read(size);
                // MAD sample: the read latency paid once, on behalf of the
                // leader and every waiter parked so far. (Waiters joining
                // between this load and the insert below merely undercount
                // the estimate; they are still woken correctly.)
                let parked = f.waiters.load(Ordering::Relaxed);
                let agg_us = read.as_micros() as u64 * (1 + parked);
                let body = self.store.body(target);
                // Insert BEFORE retiring the flight: a concurrent probe
                // always finds the target either cached or in flight.
                self.cache_insert_reporting(target, size, agg_us, body.clone());
                self.disk_flights.lock().remove(&target);
                f.complete(FlightOutcome::Done);
                body
            }
            Role::Waiter(f) => {
                self.stats.coalesced_waits.fetch_add(1, Ordering::Relaxed);
                // Local disk reads cannot fail; the outcome is always Done.
                f.wait();
                // The leader admits before retiring the flight, so the
                // slice is normally still cached; eviction in the gap
                // falls back to regeneration (bodies are a pure function
                // of the target, so the bytes are identical either way).
                self.cache
                    .lock()
                    .get(target)
                    .cloned()
                    .unwrap_or_else(|| self.store.body(target))
            }
        }
    }

    /// The one real disk access of a miss: queue-depth accounting around
    /// the mutex-serialized sleep spindle. Returns the emulated latency.
    fn blocking_disk_read(&self, size: u64) -> Duration {
        let read = self.disk_emu.read_time(size);
        self.disk_queue.fetch_add(1, Ordering::Relaxed);
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        {
            let _spindle = self.disk.lock();
            std::thread::sleep(read);
        }
        self.disk_queue.fetch_sub(1, Ordering::Relaxed);
        read
    }

    /// Non-blocking first half of serving `target`: probes the cache and
    /// records the serve/bytes/hit counters. Returns `true` on a hit —
    /// the body can be produced immediately. On a miss the disk-queue
    /// depth is already incremented (the request is now "queued on the
    /// disk" as far as the extended-LARD control data is concerned) and
    /// the caller owns scheduling the emulated read; it must call
    /// [`finish_disk_read`](Self::finish_disk_read) exactly once when
    /// the read completes. The event-driven reactor uses this pair where
    /// the thread path calls the blocking [`serve_local`](Self::serve_local).
    pub fn begin_serve(&self, target: TargetId) -> bool {
        self.begin_serve_body(target).is_some()
    }

    /// [`begin_serve`](Self::begin_serve) that, on a hit, also hands out
    /// the body: a clone of the cached slice (zero-copy; the rare
    /// metadata-only entry regenerates). `None` is a miss with the
    /// disk-queue depth already incremented, exactly as `begin_serve`.
    pub fn begin_serve_body(&self, target: TargetId) -> Option<Bytes> {
        let size = self.store.size(target);
        let cached = {
            let mut cache = self.cache.lock();
            if cache.touch(target) {
                Some(cache.get(target).cloned())
            } else {
                None
            }
        };
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(size, Ordering::Relaxed);
        match cached {
            Some(body) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(body.unwrap_or_else(|| self.store.body(target)))
            }
            None => {
                self.disk_queue.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Completes a miss started by [`begin_serve`](Self::begin_serve):
    /// pops the disk queue and inserts the document into the cache (the
    /// OS caches what it reads), mirroring the tail of
    /// [`serve_local`](Self::serve_local). Returns the body so callers
    /// serve the very slice the cache now owns.
    pub fn finish_disk_read(&self, target: TargetId) -> Bytes {
        self.finish_disk_read_shared(target, 0)
    }

    /// [`finish_disk_read`](Self::finish_disk_read) for a coalesced
    /// flight: `waiters` requests were parked on this read, so the cache
    /// insert's MAD sample is the read latency times one-plus-waiters —
    /// the aggregate delay this fetch actually cost.
    pub fn finish_disk_read_shared(&self, target: TargetId, waiters: u64) -> Bytes {
        self.disk_queue.fetch_sub(1, Ordering::Relaxed);
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        let size = self.store.size(target);
        let agg_us = self.disk_emu.read_time(size).as_micros() as u64 * (1 + waiters);
        let body = self.store.body(target);
        self.cache_insert_reporting(target, size, agg_us, body.clone());
        body
    }

    /// A clone of the cached body slice for `target`, if present, without
    /// touching recency (delayed-hit delivery is not an access of its own).
    pub fn cached_body(&self, target: TargetId) -> Option<Bytes> {
        self.cache.lock().get(target).cloned()
    }

    /// Refcount-hygiene audit: the strong count of every cached body
    /// slice. With the node quiescent (no response in flight), every
    /// count must be exactly 1 — the cache as sole owner. A higher count
    /// on an idle node means a serve path leaked a handle.
    pub fn cached_body_refcounts(&self) -> Vec<(TargetId, usize)> {
        self.cache
            .lock()
            .iter_values()
            .map(|(t, b)| (t, b.strong_count()))
            .collect()
    }

    /// Records a request that parked on an in-flight local fetch in the
    /// reactor (a delayed hit): it is served — response bytes counted —
    /// without a disk read or a cache hit of its own. The reactor's
    /// per-shard flight table calls this where the threads model's
    /// [`serve_local`](Self::serve_local) waiter path books itself.
    pub fn note_coalesced_serve(&self, target: TargetId) {
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(self.store.size(target), Ordering::Relaxed);
        self.stats.coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lateral request that parked on an in-flight lateral
    /// fetch to the same (remote, target): only the flight leader pays
    /// `lateral_out` and touches the wire; waiters are delayed hits.
    pub fn note_coalesced_lateral(&self) {
        self.stats.coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Emulated read latency for `target` on this node's disk.
    pub fn disk_read_time(&self, target: TargetId) -> Duration {
        self.disk_emu.read_time(self.store.size(target))
    }

    /// Fetches `target` from peer `remote` over a persistent lateral
    /// connection (the NFS stand-in). The result is NOT cached locally.
    pub fn lateral_fetch(&self, remote: NodeId, target: TargetId) -> std::io::Result<Bytes> {
        self.stats.lateral_out.fetch_add(1, Ordering::Relaxed);
        let mut stream = self.take_peer_conn(remote)?;
        let req = Request::get(ContentStore::uri(target), Version::Http11);
        stream.write_all(&req.to_bytes())?;

        let mut parser = ResponseParser::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(resp) = parser
                .next()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
            {
                if resp.status != 200 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("lateral fetch returned {}", resp.status),
                    ));
                }
                // Only pool the stream if the parser consumed exactly the
                // bytes of this response. Over-read bytes (the start of a
                // pipelined/extra response) die with the dropped parser, so
                // pooling such a stream would desync it: the next fetch
                // would start reading mid-stream and parse garbage.
                if resp.keep_alive() && parser.buffered() == 0 {
                    self.return_peer_conn(remote, stream);
                }
                return Ok(resp.body);
            }
            let n = stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed during lateral fetch",
                ));
            }
            parser.feed(&buf[..n]);
        }
    }

    /// [`lateral_fetch`](Self::lateral_fetch) behind the single-flight
    /// table (threads I/O model): concurrent fetches for the same
    /// (remote, target) share one peer request. The leader fetches; the
    /// waiters park and, on success, reproduce the identical body from
    /// the store (response bytes are a pure function of the target). If
    /// the leader's fetch fails, *every* waiter gets the error — each
    /// caller then runs its own serve-locally failover, where the local
    /// flight table coalesces the resulting disk reads in turn.
    ///
    /// With coalescing off this is exactly `lateral_fetch`.
    pub fn lateral_fetch_coalesced(
        &self,
        remote: NodeId,
        target: TargetId,
    ) -> std::io::Result<Bytes> {
        if !self.coalesce {
            return self.lateral_fetch(remote, target);
        }
        let key = (remote.0, target);
        // Unlike the local table there is no cache probe to serialize
        // with, so registration needs no outer lock. A waiter that
        // arrives just after the leader retired the flight simply starts
        // a fresh one — an extra fetch, never a lost wakeup.
        let leader = {
            let mut flights = self.lateral_flights.lock();
            match flights.get(&key) {
                Some(f) => {
                    f.waiters.fetch_add(1, Ordering::Relaxed);
                    Err(f.clone())
                }
                None => {
                    let f = Arc::new(Flight::new());
                    flights.insert(key, f.clone());
                    Ok(f)
                }
            }
        };
        match leader {
            Ok(f) => {
                let res = self.lateral_fetch(remote, target);
                self.lateral_flights.lock().remove(&key);
                f.complete(if res.is_ok() {
                    FlightOutcome::Done
                } else {
                    FlightOutcome::Failed
                });
                res
            }
            Err(f) => {
                self.stats.coalesced_waits.fetch_add(1, Ordering::Relaxed);
                match f.wait() {
                    FlightOutcome::Done => Ok(self.store.body(target)),
                    _ => Err(std::io::Error::other(
                        "lateral flight leader failed; waiter must fail over",
                    )),
                }
            }
        }
    }

    fn take_peer_conn(&self, remote: NodeId) -> std::io::Result<TcpStream> {
        if let Some(s) = self.peer_pool[remote.0].lock().pop() {
            return Ok(s);
        }
        let s = TcpStream::connect(self.peer_addrs[remote.0])?;
        s.set_nodelay(true)?;
        s.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(s)
    }

    fn return_peer_conn(&self, remote: NodeId, stream: TcpStream) {
        let mut pool = self.peer_pool[remote.0].lock();
        if pool.len() < self.peer_pool_cap {
            pool.push(stream);
        }
    }

    /// Drops every pooled idle lateral connection. Closing them sends
    /// FIN to the peer servers, whose handler threads would otherwise
    /// sit in `read` until their socket timeout — `Cluster::shutdown`
    /// calls this once client traffic has stopped so teardown never
    /// waits out a read timeout on an idle pooled stream.
    pub fn drain_peer_pools(&self) {
        for pool in &self.peer_pool {
            pool.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn node() -> NodeState {
        let store = Arc::new(ContentStore::from_sizes(vec![1000, 2000, 3000]));
        NodeState::new(
            NodeId(0),
            4096,
            DiskEmu {
                seek: Duration::from_micros(100),
                bytes_per_sec: 1e9,
            },
            store,
            Vec::new(),
        )
    }

    #[test]
    fn serve_local_miss_then_hit() {
        let n = node();
        let t = TargetId(1);
        let b1 = n.serve_local(t);
        assert_eq!(b1.len(), 2000);
        let s = n.stats.snapshot();
        assert_eq!(s.served, 1);
        assert_eq!(s.hits, 0);
        let _b2 = n.serve_local(t);
        let s = n.stats.snapshot();
        assert_eq!(s.served, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes, 4000);
    }

    #[test]
    fn cache_budget_evicts() {
        let n = node(); // 4096-byte cache
        n.serve_local(TargetId(0)); // 1000
        n.serve_local(TargetId(1)); // 2000
        n.serve_local(TargetId(2)); // 3000 -> evicts 0 (and 1)
        assert!(!n.cache.lock().contains(TargetId(0)));
        assert!(n.cache.lock().contains(TargetId(2)));
    }

    #[test]
    fn begin_serve_matches_serve_local_accounting() {
        let n = node();
        // Miss: depth rises until the caller completes the read, which
        // also populates the cache — the split non-blocking protocol.
        assert!(!n.begin_serve(TargetId(0)));
        assert_eq!(n.disk_queue_len(), 1);
        n.finish_disk_read(TargetId(0));
        assert_eq!(n.disk_queue_len(), 0);
        assert!(n.cache.lock().contains(TargetId(0)));
        // Hit: resolved synchronously, depth untouched.
        assert!(n.begin_serve(TargetId(0)));
        assert_eq!(n.disk_queue_len(), 0);
        let s = n.stats.snapshot();
        assert_eq!(s.served, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes, 2000);
        // Same observable totals as two blocking serve_local calls.
        let m = node();
        m.serve_local(TargetId(0));
        m.serve_local(TargetId(0));
        assert_eq!(m.stats.snapshot(), s);
    }

    #[test]
    fn join_msg_snapshots_cache_and_reset_makes_it_cold() {
        let n = node(); // 4096-byte cache
        n.serve_local(TargetId(0)); // 1000
        n.serve_local(TargetId(1)); // 2000
        match n.join_msg(2) {
            ControlMsg::Join {
                node,
                weight,
                events,
            } => {
                assert_eq!(node, NodeId(0));
                assert_eq!(weight, 2);
                assert_eq!(
                    events,
                    vec![
                        CacheEvent::Admit(TargetId(0)),
                        CacheEvent::Admit(TargetId(1))
                    ]
                );
            }
            other => panic!("expected Join, got {other:?}"),
        }
        n.reset_cache();
        assert!(n.cache.lock().is_empty());
        match n.join_msg(1) {
            ControlMsg::Join { events, .. } => assert!(events.is_empty(), "cold join"),
            other => panic!("expected Join, got {other:?}"),
        }
        // The wiped cache keeps working (and journalling) afterwards.
        n.serve_local(TargetId(2));
        assert!(n.cache.lock().contains(TargetId(2)));
    }

    #[test]
    fn hits_serve_the_cached_slice_and_release_it() {
        let n = node();
        let t = TargetId(1);
        // Miss admits the body; the returned slice shares the cache's
        // allocation (strong count 2: cache + this handle).
        let b1 = n.serve_local(t);
        assert_eq!(b1.strong_count(), 2, "miss shares the admitted slice");
        // A hit clones the cache's slice — same allocation, no copy.
        let b2 = n.serve_local(t);
        assert!(std::ptr::eq(&b1[0], &b2[0]), "hit aliases the cached body");
        assert_eq!(b1.strong_count(), 3);
        drop(b1);
        drop(b2);
        // With no response in flight the cache is sole owner again.
        assert_eq!(n.cached_body_refcounts(), vec![(t, 1)]);
        // The split reactor primitives hand out the same slice.
        let b3 = n.begin_serve_body(t).expect("cached => hit");
        assert_eq!(b3.strong_count(), 2);
        assert!(n.cached_body(t).is_some());
        drop(b3);
        assert!(n.cached_body_refcounts().iter().all(|&(_, c)| c == 1));
        // And a split-path miss returns the very slice it admitted.
        let b4 = n.finish_disk_read({
            assert!(n.begin_serve_body(TargetId(0)).is_none());
            TargetId(0)
        });
        assert_eq!(b4.strong_count(), 2);
    }

    #[test]
    fn disk_queue_returns_to_zero() {
        let n = node();
        n.serve_local(TargetId(0));
        assert_eq!(n.disk_queue_len(), 0);
    }

    #[test]
    fn lateral_fetch_does_not_pool_overread_streams() {
        use std::io::{Read as _, Write as _};
        use std::net::TcpListener;

        let store = Arc::new(ContentStore::from_sizes(vec![1000, 2000]));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let body = store.body(TargetId(0));

        // A peer that answers each fetch on a FRESH connection with one
        // valid response followed by stray trailing bytes (as a buggy or
        // hostile peer might). The fetcher's parser over-reads the strays.
        let body2 = body.clone();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let _ = s.read(&mut buf).unwrap();
                let resp = phttp_http::Response::ok(Version::Http11, body2.clone());
                let mut wire = resp.to_bytes().to_vec();
                wire.extend_from_slice(b"HTTP/1.1 200 OK\r\nContent-Le"); // stray partial
                s.write_all(&wire).unwrap();
                // Hold the socket open until the client is done with it.
                let _ = s.read(&mut buf);
            }
        });

        let n = NodeState::new(
            NodeId(0),
            4096,
            DiskEmu {
                seek: Duration::from_micros(10),
                bytes_per_sec: 1e9,
            },
            store,
            vec![addr],
        );
        // First fetch succeeds but must NOT pool the desynced stream...
        let got = n.lateral_fetch(NodeId(0), TargetId(0)).unwrap();
        assert_eq!(got, body);
        // ...so the second fetch opens a fresh connection and also parses
        // cleanly instead of resuming mid-stream on the poisoned one.
        let got = n.lateral_fetch(NodeId(0), TargetId(0)).unwrap();
        assert_eq!(got, body);
        drop(n);
        server.join().unwrap();
    }

    #[test]
    fn concurrent_misses_share_one_disk_read() {
        let store = Arc::new(ContentStore::from_sizes(vec![1000, 2000]));
        let n = Arc::new(
            NodeState::new(
                NodeId(0),
                1 << 20,
                DiskEmu {
                    seek: Duration::from_millis(50),
                    bytes_per_sec: 1e9,
                },
                store.clone(),
                Vec::new(),
            )
            .with_coalescing(true),
        );
        let threads = 4;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let n = n.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    n.serve_local(TargetId(0))
                })
            })
            .collect();
        let body = store.body(TargetId(0));
        for h in handles {
            assert_eq!(h.join().unwrap(), body, "every caller gets the bytes");
        }
        let s = n.stats.snapshot();
        assert_eq!(s.served, threads as u64);
        assert_eq!(
            s.disk_reads, 1,
            "concurrent misses for one target must share one read"
        );
        // Every non-leader either parked on the flight or (if it probed
        // after completion) hit the now-populated cache.
        assert_eq!(s.hits + s.coalesced_waits, threads as u64 - 1);
        assert_eq!(n.disk_queue_len(), 0);
        assert!(n.cache.lock().contains(TargetId(0)));
    }

    #[test]
    fn coalescing_off_reads_redundantly() {
        let n = Arc::new(node()); // coalescing off by default
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    n.serve_local(TargetId(2))
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = n.stats.snapshot();
        assert_eq!(s.coalesced_waits, 0, "no parking without coalescing");
        assert_eq!(s.disk_reads + s.hits, 2, "each request read or hit");
    }

    #[test]
    fn lateral_flight_failure_fails_every_waiter_over() {
        use std::net::TcpListener;

        let store = Arc::new(ContentStore::from_sizes(vec![1000, 2000]));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A peer that kills every lateral connection without responding —
        // but only after holding it open long enough for the other
        // threads to park on the leader's flight, so the failure lands on
        // a fully-populated flight. The accept loop is unbounded (a
        // coalesced run makes exactly one connection); the test stops it
        // with a flag plus a sentinel connect.
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accepting = stop.clone();
        let server = std::thread::spawn(move || {
            while !stop_accepting.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((s, _)) => {
                        std::thread::sleep(Duration::from_millis(500));
                        drop(s);
                    }
                    Err(_) => break,
                }
            }
        });

        let n = Arc::new(
            NodeState::new(
                NodeId(0),
                1 << 20,
                DiskEmu {
                    seek: Duration::from_micros(100),
                    bytes_per_sec: 1e9,
                },
                store.clone(),
                vec![addr],
            )
            .with_coalescing(true),
        );
        let threads = 3;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let n = n.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    // The failover the cluster's serve path performs:
                    // lateral fetch, then serve locally on error.
                    match n.lateral_fetch_coalesced(NodeId(0), TargetId(0)) {
                        Ok(body) => (body, false),
                        Err(_) => (n.serve_local(TargetId(0)), true),
                    }
                })
            })
            .collect();
        let body = store.body(TargetId(0));
        let mut failed_over = 0;
        for h in handles {
            let (got, fo) = h.join().unwrap();
            assert_eq!(got, body, "failover must still produce the bytes");
            failed_over += fo as u64;
        }
        assert_eq!(
            failed_over, threads as u64,
            "leader failure must fail over leader AND every parked waiter"
        );
        // Exactly one lateral fetch touched the wire: the waiters parked
        // on the leader's flight and failed over without re-fetching.
        assert_eq!(n.stats.snapshot().lateral_out, 1);
        drop(n);
        stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(addr); // unblock the accept loop
        server.join().unwrap();
    }

    #[test]
    fn disk_read_time_model() {
        let d = DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 1_000_000.0,
        };
        let t = d.read_time(500_000);
        assert_eq!(t, Duration::from_millis(2) + Duration::from_millis(500));
    }
}
