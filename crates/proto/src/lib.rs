//! Runnable loopback-TCP prototype of the paper's cluster (its §7 system).
//!
//! One front-end and N back-end "nodes" run as threads in one process,
//! talking real TCP over loopback: clients connect to the front-end, the
//! first request drives a content-based handoff, responses flow from the
//! back-end directly, subsequent requests are dispatched per-request with
//! URL tagging, and remote assignments are served by lateral fetches over
//! persistent back-end-to-back-end connections (the NFS stand-in). See
//! DESIGN.md §6.2-§6.4 for the substitution table versus the paper's
//! FreeBSD kernel implementation.
//!
//! The front-end serves client connections under one of two selectable
//! I/O models ([`ProtoConfig::io_model`](cluster::ProtoConfig)): a
//! blocking worker-thread pool ([`IoModel::Threads`]) or a single
//! epoll-style event loop ([`IoModel::Reactor`], the [`reactor`]
//! module) that drives every connection, lateral fetch, and emulated
//! disk without blocking, making policy decisions inline via the
//! batched dispatcher path. The two are observably interchangeable —
//! byte-identical responses, enforced by a differential test — so the
//! thread model doubles as the reactor's oracle.
//!
//! # Examples
//!
//! ```
//! use phttp_proto::{run_load, ClientProtocol, Cluster, LoadConfig, ProtoConfig};
//! use phttp_trace::{generate, reconstruct, SessionConfig, SynthConfig};
//!
//! let mut synth = SynthConfig::small();
//! synth.num_page_views = 60; // keep the doctest fast
//! let trace = generate(&synth);
//! let workload = reconstruct(&trace, SessionConfig::default());
//!
//! let cluster = Cluster::start(ProtoConfig::default(), &trace).expect("supported mechanism");
//! let report = run_load(
//!     cluster.frontend_addrs(),
//!     cluster.store(),
//!     &workload,
//!     &LoadConfig { clients: 4, protocol: ClientProtocol::PHttp, ..Default::default() },
//! );
//! assert_eq!(report.errors, 0);
//! assert_eq!(report.requests as usize, trace.len());
//! cluster.shutdown();
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod cluster;
pub mod control;
pub mod frontend;
pub mod node;
pub mod reactor;
pub mod store;
pub mod tier;

pub use client::{run_load, ClientProtocol, LoadConfig, LoadReport};
pub use cluster::{Cluster, IoModel, ProtoConfig};
pub use control::{ControlMsg, FrameDecoder};
pub use frontend::{ConfigError, FrontEnd, DEFAULT_DISK_REPORT_INTERVAL};
pub use node::{DiskEmu, FeedbackConfig, NodeState, NodeStatsSnapshot};
pub use phttp_simcore::EvictPolicy;
pub use reactor::ReactorStats;
pub use store::ContentStore;
pub use tier::{Vip, DEFAULT_GOSSIP_INTERVAL};
