//! Differential test: the event-driven reactor — at **every shard
//! count** — and the thread-per-connection oracle must be observably
//! the same server.
//!
//! The same pipelined P-HTTP workload is driven through a cluster in
//! each `IoModel` by a verifying capture client, recording every
//! response on every connection; the reactor runs the matrix
//! `reactor_shards ∈ {1, 2, 4}`. Every transcript must be
//! **byte-identical** to the threads oracle's (response bytes are fully
//! determined by the request target and HTTP version, so transcripts
//! are comparable even though connection *scheduling* is concurrent),
//! each run must demonstrably exercise its mechanism's remote path
//! (lateral fetches or migrations — byte-identity alone cannot see
//! routing), and every cluster must unwind to the same final
//! load-tracker state (exactly zero load, zero tracked connections).
//!
//! The client runs several connections concurrently on purpose: with a
//! single sequential connection the back-end disks never queue, and
//! extLARD's cost function then always prefers serving locally — the
//! remote data paths this test exists to compare would never run.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::Duration;

use bytes::BytesMut;
use phttp_core::{Mechanism, PolicyKind};
use phttp_http::{Request, ResponseParser, Version};
use phttp_proto::{Cluster, ContentStore, DiskEmu, IoModel, ProtoConfig};
use phttp_trace::{generate, reconstruct, ConnectionTrace, SessionConfig, SynthConfig};

fn workload() -> (phttp_trace::Trace, ConnectionTrace) {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 120;
    synth.num_pages = 50;
    let trace = generate(&synth);
    let conns = reconstruct(&trace, SessionConfig::default());
    (trace, conns)
}

fn config_coalesced(mechanism: Mechanism, io_model: IoModel, shards: usize) -> ProtoConfig {
    ProtoConfig {
        coalesce_misses: true,
        ..config(mechanism, io_model, shards)
    }
}

fn config(mechanism: Mechanism, io_model: IoModel, shards: usize) -> ProtoConfig {
    ProtoConfig {
        nodes: 3,
        policy: PolicyKind::ExtLard,
        mechanism,
        // Small caches and slow disks so queues build under the
        // concurrent capture client and extLARD actually forwards (the
        // same recipe as the end-to-end lateral-fetch test).
        cache_bytes: 512 * 1024,
        disk: DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 40.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(5),
        io_model,
        reactor_shards: shards,
        ..ProtoConfig::default()
    }
}

/// Plays one trace connection and returns the re-encoded wire bytes of
/// each of its responses, in request order.
fn play_one(addr: SocketAddr, conn: &phttp_trace::Connection) -> Vec<Vec<u8>> {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut parser = ResponseParser::new();
    let mut responses = Vec::with_capacity(conn.num_requests());
    for batch in &conn.batches {
        // The whole pipelined batch in a single write, like the load
        // generator.
        let mut wire = BytesMut::new();
        for &target in &batch.targets {
            Request::get(ContentStore::uri(target), Version::Http11).encode(&mut wire);
        }
        stream.write_all(&wire).unwrap();
        let mut got = 0;
        let mut buf = [0u8; 32 * 1024];
        while got < batch.targets.len() {
            if let Some(resp) = parser.next().expect("parse response") {
                responses.push(resp.to_bytes().to_vec());
                got += 1;
                continue;
            }
            let n = stream.read(&mut buf).expect("read response");
            assert!(n > 0, "server closed mid-connection");
            parser.feed(&buf[..n]);
        }
    }
    responses
}

/// Plays every connection of the workload (several in flight at once so
/// disk queues build — see the module docs) and returns each
/// connection's response transcript, indexed by connection order.
fn play_capture(addrs: &[SocketAddr], workload: &ConnectionTrace) -> Vec<Vec<Vec<u8>>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let transcript: Vec<parking_lot::Mutex<Vec<Vec<u8>>>> = workload
        .connections
        .iter()
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = workload.connections.get(i) else {
                    break;
                };
                *transcript[i].lock() = play_one(addrs[i % addrs.len()], conn);
            });
        }
    });
    transcript.into_iter().map(|m| m.into_inner()).collect()
}

fn run_one(
    mechanism: Mechanism,
    io_model: IoModel,
    shards: usize,
) -> (Vec<Vec<Vec<u8>>>, Vec<phttp_proto::NodeStatsSnapshot>) {
    let (trace, conns) = workload();
    let cluster =
        Cluster::start(config(mechanism, io_model, shards), &trace).expect("start cluster");
    if io_model == IoModel::Reactor && shards > 1 {
        // This host supports reuseport groups (the shim test proves it);
        // a silent fallback here would quietly skip the accept path this
        // matrix exists to exercise.
        assert_eq!(
            cluster.used_accept_handoff(),
            Some(false),
            "{shards} shards"
        );
    }
    let transcript = play_capture(cluster.frontend_addrs(), &conns);
    // Final load-tracker state: every connection's charge unwound to
    // exactly zero (fixed-point accounting), nothing still tracked.
    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "{io_model:?}/{shards}: connections leaked"
    );
    let fe = cluster.frontend_shared();
    assert_eq!(fe.active_connections(), 0, "{io_model:?}/{shards}");
    assert!(
        fe.loads().iter().all(|&l| l.abs() < 1e-12),
        "{io_model:?}/{shards}: residual load {:?}",
        fe.loads()
    );
    let stats = cluster.node_stats();
    cluster.shutdown();
    (transcript, stats)
}

/// A quick structural sanity check on one transcript so a trivially
/// empty equality cannot pass silently.
fn assert_nonempty(t: &[Vec<Vec<u8>>], trace_len: usize) {
    let responses: usize = t.iter().map(|c| c.len()).sum();
    assert_eq!(responses, trace_len, "every request got a response");
    assert!(t
        .iter()
        .flatten()
        .all(|r| r.starts_with(b"HTTP/1.1 200 ") || r.starts_with(b"HTTP/1.0 200 ")));
}

/// Byte-identical transcripts alone cannot distinguish *where* a
/// request was served (bodies depend only on the target), so each model
/// must additionally prove it exercised the mechanism's remote path —
/// otherwise a reactor that silently served every remote assignment
/// locally would pass the transcript comparison.
fn assert_routes(stats: &[phttp_proto::NodeStatsSnapshot], mechanism: Mechanism, io: IoModel) {
    let lateral: u64 = stats.iter().map(|s| s.lateral_out).sum();
    let migrations: u64 = stats.iter().map(|s| s.migrations_in).sum();
    match mechanism {
        Mechanism::MultipleHandoff => {
            assert!(migrations > 0, "{io:?}: no connection ever migrated");
            assert_eq!(lateral, 0, "{io:?}: migrate semantics must not fetch");
        }
        _ => {
            assert!(lateral > 0, "{io:?}: no request was ever forwarded");
            assert_eq!(migrations, 0, "{io:?}: forwarding must not migrate");
        }
    }
}

/// The shard counts the reactor is differentially tested at. 1 is the
/// single-loop baseline; 2 and 4 exercise reuseport accept
/// distribution, cross-shard lateral serving (a fetch issued on one
/// shard served by the peer listener on another), and the shared
/// dispatcher under true multi-loop concurrency.
const SHARD_MATRIX: [usize; 3] = [1, 2, 4];

fn shard_matrix_against_oracle(mechanism: Mechanism) {
    let (trace, _) = workload();
    let (threads, threads_stats) = run_one(mechanism, IoModel::Threads, 1);
    assert_nonempty(&threads, trace.len());
    assert_routes(&threads_stats, mechanism, IoModel::Threads);
    for shards in SHARD_MATRIX {
        let (reactor, reactor_stats) = run_one(mechanism, IoModel::Reactor, shards);
        assert_routes(&reactor_stats, mechanism, IoModel::Reactor);
        assert_eq!(
            threads, reactor,
            "transcripts diverge from the threads oracle ({mechanism:?}, {shards} shards)"
        );
    }
}

#[test]
fn reactor_shard_matrix_matches_threads_backend_forwarding() {
    shard_matrix_against_oracle(Mechanism::BackendForwarding);
}

/// Single-flight coalescing must be invisible on the wire: response
/// bytes are a pure function of `(target, HTTP version)`, so with
/// `coalesce_misses` on, the reactor at every shard count must still be
/// byte-identical to the threads oracle *with coalescing on* — only
/// fetch counts and timing may differ from the uncoalesced runs above.
/// The coalesced oracle must also actually coalesce (delayed hits
/// observed), or this leg would silently test nothing new.
#[test]
fn reactor_shard_matrix_matches_threads_with_coalescing() {
    let mechanism = Mechanism::BackendForwarding;
    let run = |io_model: IoModel, shards: usize| {
        let (trace, conns) = workload();
        let cluster = Cluster::start(config_coalesced(mechanism, io_model, shards), &trace)
            .expect("start cluster");
        let transcript = play_capture(cluster.frontend_addrs(), &conns);
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io_model:?}/{shards}: connections leaked under coalescing"
        );
        let stats = cluster.node_stats();
        cluster.shutdown();
        (transcript, stats)
    };
    let (trace, _) = workload();
    let (threads, threads_stats) = run(IoModel::Threads, 1);
    assert_nonempty(&threads, trace.len());
    assert_routes(&threads_stats, mechanism, IoModel::Threads);
    let coalesced: u64 = threads_stats.iter().map(|s| s.coalesced_waits).sum();
    assert!(
        coalesced > 0,
        "oracle never coalesced a miss — widen the concurrency recipe"
    );
    for shards in SHARD_MATRIX {
        let (reactor, reactor_stats) = run(IoModel::Reactor, shards);
        assert_routes(&reactor_stats, mechanism, IoModel::Reactor);
        assert_eq!(
            threads, reactor,
            "coalescing changed response bytes ({shards} shards)"
        );
    }
}

#[test]
fn reactor_shard_matrix_matches_threads_multiple_handoff() {
    shard_matrix_against_oracle(Mechanism::MultipleHandoff);
}

/// The acceptor-handoff fallback (round-robin injection into the shard
/// loops) must be observably identical to the reuseport accept path —
/// it is the degradation mode on hosts where the shim cannot express
/// the listener group.
#[test]
fn acceptor_handoff_fallback_matches_threads() {
    let (trace, _) = workload();
    let (threads, threads_stats) = run_one(Mechanism::BackendForwarding, IoModel::Threads, 1);
    assert_nonempty(&threads, trace.len());
    assert_routes(
        &threads_stats,
        Mechanism::BackendForwarding,
        IoModel::Threads,
    );
    let (trace2, conns) = workload();
    let mut cfg = config(Mechanism::BackendForwarding, IoModel::Reactor, 2);
    cfg.force_accept_handoff = true;
    let cluster = Cluster::start(cfg, &trace2).expect("start cluster");
    assert_eq!(cluster.used_accept_handoff(), Some(true));
    let reactor = play_capture(cluster.frontend_addrs(), &conns);
    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "handoff: connections leaked"
    );
    let reactor_stats = cluster.node_stats();
    cluster.shutdown();
    assert_routes(
        &reactor_stats,
        Mechanism::BackendForwarding,
        IoModel::Reactor,
    );
    assert_eq!(
        threads, reactor,
        "transcripts diverge under acceptor-handoff fallback"
    );
}
