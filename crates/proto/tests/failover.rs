//! Control-plane failure handling: a node whose control session dies
//! unexpectedly is decommissioned for mapping purposes (its believed
//! mappings evicted — exactly its, nobody else's), while a clean
//! `Cluster::shutdown`'s quiescent-flush EOF evicts nothing. Plus the
//! lateral data-path failure mode: a peer's lateral server crashing
//! mid-fetch must degrade that fetch to local service — the client
//! still receives complete, correctly-ordered, byte-exact responses.
//!
//! Everything runs over both I/O models (the blocking per-node control
//! readers and the reactor shards' registered control sources must
//! implement the same failure semantics).

use std::time::{Duration, Instant};

use phttp_core::{NodeId, PolicyKind};
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_trace::{generate, reconstruct, SessionConfig, SynthConfig};

fn tiny_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 150;
    synth.num_pages = 60;
    generate(&synth)
}

fn io_models() -> Vec<IoModel> {
    match std::env::var("PHTTP_IO_MODEL").as_deref() {
        Ok("threads") => vec![IoModel::Threads],
        Ok("reactor") => vec![IoModel::Reactor],
        _ => vec![IoModel::Threads, IoModel::Reactor],
    }
}

fn reactor_shards(io: IoModel) -> usize {
    match io {
        IoModel::Threads => 1,
        IoModel::Reactor => std::env::var("PHTTP_REACTOR_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
    }
}

fn config(io_model: IoModel) -> ProtoConfig {
    ProtoConfig {
        nodes: 3,
        policy: PolicyKind::ExtLard,
        cache_bytes: 1024 * 1024,
        disk: DiskEmu {
            seek: Duration::from_micros(300),
            bytes_per_sec: 200.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(5),
        io_model,
        reactor_shards: reactor_shards(io_model),
        coalesce_misses: std::env::var("PHTTP_COALESCE").as_deref() == Ok("1"),
        ..ProtoConfig::default()
    }
}

/// Believed `(target, node)` pairs per node.
fn pairs_per_node(fe: &phttp_proto::FrontEnd, nodes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; nodes];
    fe.mapping().for_each_pair(|_, n| counts[n.0] += 1);
    counts
}

#[test]
fn control_eof_evicts_exactly_the_dead_node() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let cluster = Cluster::start(config(io), &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 8,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}");
        // Traffic fully unwound before the failure is injected, so no
        // in-flight decision can re-map the victim afterwards.
        assert!(cluster.quiesce(Duration::from_secs(10)), "{io:?}");
        let fe = cluster.frontend_shared();
        let before = pairs_per_node(&fe, 3);
        assert!(
            before.iter().all(|&c| c > 0),
            "{io:?}: workload must leave every node mapped, got {before:?}"
        );
        assert_eq!(fe.node_evictions(), 0, "{io:?}: premature eviction");

        // Kill node 1's control stream from the node side — the FIN
        // reaches the front-end's reader/registered source as an EOF
        // while the stop flag is down: a crash, not a shutdown.
        let victim = NodeId(1);
        cluster.frontend().nodes()[victim.0].close_control();
        let deadline = Instant::now() + Duration::from_secs(10);
        while fe.node_evictions() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(fe.node_evictions(), 1, "{io:?}: EOF never evicted");

        let after = pairs_per_node(&fe, 3);
        assert_eq!(after[victim.0], 0, "{io:?}: victim mappings survive");
        assert_eq!(
            after[0], before[0],
            "{io:?}: eviction bled into node 0's mappings"
        );
        assert_eq!(
            after[2], before[2],
            "{io:?}: eviction bled into node 2's mappings"
        );

        // The cluster is still serviceable after the decommission (the
        // victim's listeners run on; only its mapping belief is gone).
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 4,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}: cluster broken after eviction");

        cluster.shutdown();
        assert_eq!(
            fe.node_evictions(),
            1,
            "{io:?}: clean shutdown must not evict the remaining nodes"
        );
    }
}

#[test]
fn clean_shutdown_evicts_nothing() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let cluster = Cluster::start(config(io), &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 8,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}");
        let fe = cluster.frontend_shared();
        // The quiescent-flush EOFs of an orderly teardown must be
        // distinguished from crash EOFs: zero evictions, and the
        // surviving belief is intact for inspection.
        let before = pairs_per_node(&fe, 3);
        cluster.shutdown();
        assert_eq!(fe.node_evictions(), 0, "{io:?}: shutdown evicted a node");
        assert_eq!(
            pairs_per_node(&fe, 3),
            before,
            "{io:?}: shutdown disturbed the mapping belief"
        );
    }
}

/// The ISSUE's lateral-failure regression: a peer's lateral server is
/// killed mid-fetch (it reads the request, then dies without
/// responding). The fetching handler must observe the EOF and fall back
/// to serving locally — the awaiting pipeline slot resolves, ordering
/// holds, and the verifying client sees every response byte-exact.
#[test]
fn lateral_server_crash_mid_fetch_falls_back_locally() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        // The lateral-pressure recipe: slow disks and small caches so
        // extLARD actually forwards.
        let mut cfg = config(io);
        cfg.disk = DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 40.0 * 1024.0 * 1024.0,
        };
        cfg.cache_bytes = 512 * 1024;
        let cluster = Cluster::start(cfg, &trace).expect("start cluster");
        const FAULTS_PER_NODE: u64 = 3;
        for node in cluster.frontend().nodes() {
            node.inject_lateral_faults(FAULTS_PER_NODE);
        }
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 12,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        // Every response arrived, in order, byte-exact (run_load
        // verifies against the store) — no fetch was stranded on the
        // murdered peer connections.
        assert_eq!(report.errors, 0, "{io:?}: a client saw a bad response");
        assert_eq!(report.requests as usize, trace.len(), "{io:?}");
        let pending: u64 = cluster
            .frontend()
            .nodes()
            .iter()
            .map(|n| n.pending_lateral_faults())
            .sum();
        assert!(
            pending < 3 * FAULTS_PER_NODE,
            "{io:?}: no lateral server was ever killed — the regression \
             path did not run (pending={pending})"
        );
        let lateral: u64 = cluster.node_stats().iter().map(|s| s.lateral_out).sum();
        assert!(lateral > 0, "{io:?}: no laterals at all");
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: a stranded pipeline slot leaked its connection"
        );
        cluster.shutdown();
    }
}

/// The coalescing variant of the lateral-crash regression: with
/// single-flight on, a killed lateral server fails the flight *leader*,
/// and every request parked on that flight must fail over to local
/// service with it — a waiter has no fetch of its own to fall back
/// from, so a leader-only fallback would strand it forever. Very slow
/// disks widen the in-flight window so flights actually accumulate
/// waiters before the fault lands.
#[test]
fn lateral_crash_under_coalescing_fails_over_every_waiter() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let mut cfg = config(io);
        cfg.coalesce_misses = true;
        cfg.disk = DiskEmu {
            seek: Duration::from_millis(8),
            bytes_per_sec: 20.0 * 1024.0 * 1024.0,
        };
        cfg.cache_bytes = 512 * 1024;
        let cluster = Cluster::start(cfg, &trace).expect("start cluster");
        const FAULTS_PER_NODE: u64 = 3;
        for node in cluster.frontend().nodes() {
            node.inject_lateral_faults(FAULTS_PER_NODE);
        }
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 12,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}: a client saw a bad response");
        assert_eq!(report.requests as usize, trace.len(), "{io:?}");
        let pending: u64 = cluster
            .frontend()
            .nodes()
            .iter()
            .map(|n| n.pending_lateral_faults())
            .sum();
        assert!(
            pending < 3 * FAULTS_PER_NODE,
            "{io:?}: no lateral server was ever killed under coalescing \
             (pending={pending})"
        );
        let stats = cluster.node_stats();
        let lateral: u64 = stats.iter().map(|s| s.lateral_out).sum();
        assert!(lateral > 0, "{io:?}: no laterals at all");
        // A stranded waiter would hold its connection open past the
        // load generator's exit; quiescence proves none did.
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: a parked waiter leaked its connection"
        );
        cluster.shutdown();
    }
}
