//! Sim-vs-proto differential for cache-coherent mapping feedback.
//!
//! Both implementations of the feedback loop — the simulator's
//! event-driven reports and the prototype's real framed control sessions
//! (in both I/O models) — must agree on the observable contract:
//!
//! * with feedback **on** and the trace quiescent, the dispatcher's
//!   divergence gauge converges to 0, and the belief is a subset of the
//!   nodes' *actual* cache contents (true divergence 0);
//! * with feedback **off**, eviction churn leaves the only-grows belief
//!   genuinely diverged from the caches.
//!
//! `PHTTP_IO_MODEL=threads|reactor` restricts the prototype half of the
//! matrix to one model, mirroring `end_to_end.rs`.

use std::time::{Duration, Instant};

use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_simcore::SimDuration;
use phttp_trace::{generate, reconstruct, SessionConfig, SynthConfig};

fn churn_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 500;
    synth.num_pages = 120;
    generate(&synth)
}

fn io_models() -> Vec<IoModel> {
    match std::env::var("PHTTP_IO_MODEL").as_deref() {
        Ok("threads") => vec![IoModel::Threads],
        Ok("reactor") => vec![IoModel::Reactor],
        _ => vec![IoModel::Threads, IoModel::Reactor],
    }
}

fn proto_config(io_model: IoModel, feedback: bool) -> ProtoConfig {
    ProtoConfig {
        nodes: 3,
        policy: PolicyKind::ExtLard,
        // Big enough for the largest document (256 KiB cap), far below
        // the trace's working set: eviction churn guaranteed.
        cache_bytes: 384 * 1024,
        disk: DiskEmu {
            seek: Duration::from_micros(300),
            bytes_per_sec: 200.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(5),
        io_model,
        cache_feedback: feedback,
        feedback_interval: Duration::from_millis(2),
        ..ProtoConfig::default()
    }
}

/// Believed `(target, node)` pairs whose target the node's cache does
/// not actually hold right now — divergence measured against ground
/// truth rather than the dispatcher's mirror.
fn true_divergence(cluster: &Cluster) -> u64 {
    let fe = cluster.frontend();
    let mut diverged = 0;
    fe.mapping().for_each_pair(|target, node| {
        if !fe.nodes()[node.0].cache.lock().contains(target) {
            diverged += 1;
        }
    });
    diverged
}

/// Drives the full P-HTTP workload through a live cluster and returns it
/// quiesced (all connections unwound) but not yet shut down.
fn run_traffic(cluster: &Cluster, trace: &phttp_trace::Trace) {
    let workload = reconstruct(trace, SessionConfig::default());
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 8,
            protocol: ClientProtocol::PHttp,
            ..Default::default()
        },
    );
    assert_eq!(report.errors, 0, "load generator errors");
    assert_eq!(report.requests as usize, trace.len());
    assert!(cluster.quiesce(Duration::from_secs(5)), "quiesce timed out");
}

#[test]
fn divergence_converges_to_zero_in_sim_and_proto() {
    let trace = churn_trace();

    // --- Simulator half: deterministic, flushes at end of run.
    let mut cfg = SimConfig::paper_config("BEforward-extLARD-PHTTP", 3)
        .with_feedback(SimDuration::from_millis(100));
    cfg.cache_bytes = 384 * 1024;
    let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
    let sim = Simulator::new(cfg, &trace, &workload).run();
    assert_eq!(sim.mapping_divergence, 0, "sim: divergence must reach 0");
    assert!(
        sim.stale_mappings_removed > 0,
        "sim: churn must shed beliefs"
    );
    assert!(sim.believed_pairs > 0);

    // --- Prototype half: real control sessions, both I/O models.
    for io in io_models() {
        let cluster = Cluster::start(proto_config(io, true), &trace).expect("start cluster");
        run_traffic(&cluster, &trace);

        // Reports are applied asynchronously (reader threads / poller),
        // and serves can journal a few final events (late disk
        // completions) *after* an earlier flush: force flushes and poll
        // until BOTH gauges settle — exiting on the mirror gauge alone
        // races the last unflushed eviction batch, leaving the
        // ground-truth check below to fail spuriously.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut snap = cluster.frontend().coherence();
        while (snap.divergence != 0 || true_divergence(&cluster) != 0) && Instant::now() < deadline
        {
            cluster.flush_feedback();
            std::thread::sleep(Duration::from_millis(2));
            snap = cluster.frontend().coherence();
        }
        assert_eq!(
            snap.divergence, 0,
            "{io:?}: divergence stuck at {} of {} believed pairs ({snap:?})",
            snap.divergence, snap.believed_pairs
        );
        assert!(snap.believed_pairs > 0, "{io:?}: no beliefs formed");
        assert!(snap.reports > 0, "{io:?}: no control reports flowed");
        assert!(
            snap.stale_removed > 0,
            "{io:?}: churn must have removed stale beliefs"
        );
        // Mirror-based and ground-truth divergence must agree: every
        // believed mapping points at a document the node really caches.
        assert_eq!(true_divergence(&cluster), 0, "{io:?}: belief not ⊆ caches");
        cluster.shutdown();
    }
}

#[test]
fn open_loop_belief_really_diverges() {
    // The premise the feedback loop exists to fix (and the baseline the
    // mapping_coherence bench measures): without reports, churn leaves
    // the only-grows table pointing at cold caches. One io model
    // suffices — the belief path is shared.
    let trace = churn_trace();
    let io = io_models()[0];
    let cluster = Cluster::start(proto_config(io, false), &trace).expect("start cluster");
    run_traffic(&cluster, &trace);

    let snap = cluster.frontend().coherence();
    assert_eq!(snap.reports, 0, "feedback off must mean no control traffic");
    assert_eq!(snap.stale_removed, 0);
    assert!(
        true_divergence(&cluster) > 0,
        "a churned open-loop run must leave stale beliefs"
    );
    cluster.shutdown();
}
