//! Single-flight miss coalescing, end to end over both I/O models.
//!
//! N client connections requesting the same cold document concurrently
//! must cost exactly **one** emulated disk read with coalescing on (and
//! exactly N with it off) — the ISSUE's headline claim — while every
//! client still receives the byte-exact response. The teardown
//! regressions ride along: a parked waiter whose connection dies
//! mid-flight must neither strand the flight nor leak its slot, and a
//! dead flight *leader* must not take its waiters down with it.
//!
//! Deterministic flight formation recipe: one node, one reactor shard,
//! a disk seek in the hundreds of milliseconds, and raw sockets driven
//! with explicit sleeps, so every racer provably probes the cache while
//! the leader's read is still in flight.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use phttp_core::PolicyKind;
use phttp_proto::{
    run_load, ClientProtocol, Cluster, ContentStore, DiskEmu, EvictPolicy, IoModel, LoadConfig,
    ProtoConfig,
};
use phttp_simcore::SimTime;
use phttp_trace::{generate, reconstruct, ClientId, SessionConfig, SynthConfig, TargetId, Trace};

fn io_models() -> Vec<IoModel> {
    match std::env::var("PHTTP_IO_MODEL").as_deref() {
        Ok("threads") => vec![IoModel::Threads],
        Ok("reactor") => vec![IoModel::Reactor],
        _ => vec![IoModel::Threads, IoModel::Reactor],
    }
}

/// A 4-document corpus; the requests only seed the store (traffic is
/// driven by hand over raw sockets).
fn corpus() -> Trace {
    let requests = (0..4)
        .map(|t| phttp_trace::Request {
            time: SimTime::from_micros(t),
            client: ClientId(0),
            target: TargetId(t as u32),
        })
        .collect();
    Trace::new(requests, vec![48 * 1024; 4])
}

/// One node, one shard, a slow spindle: every concurrent miss of one
/// target is guaranteed to land inside the leader's read window.
fn config(io_model: IoModel, coalesce: bool, seek: Duration) -> ProtoConfig {
    ProtoConfig {
        nodes: 1,
        policy: PolicyKind::ExtLard,
        cache_bytes: 8 * 1024 * 1024, // eviction-free
        disk: DiskEmu {
            seek,
            bytes_per_sec: 200.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(10),
        io_model,
        reactor_shards: 1,
        coalesce_misses: coalesce,
        ..ProtoConfig::default()
    }
}

/// Opens a connection and writes an HTTP/1.0 GET for `target` (the
/// server closes after the response, so "read to EOF" is the whole
/// transcript).
fn send_get(cluster: &Cluster, target: TargetId) -> TcpStream {
    let mut s = TcpStream::connect(cluster.frontend_addr()).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let req = format!("GET {} HTTP/1.0\r\n\r\n", ContentStore::uri(target));
    s.write_all(req.as_bytes()).expect("write request");
    s
}

/// Reads the full response and asserts it is a 200 carrying exactly the
/// store's body for `target`.
fn assert_full_response(mut s: TcpStream, cluster: &Cluster, target: TargetId, who: &str) {
    let mut wire = Vec::new();
    s.read_to_end(&mut wire).expect(who);
    assert!(
        wire.starts_with(b"HTTP/1.0 200 "),
        "{who}: bad status line: {:?}",
        &wire[..wire.len().min(32)]
    );
    let body = cluster.store().body(target);
    assert!(
        wire.ends_with(&body),
        "{who}: body mismatch ({} wire bytes)",
        wire.len()
    );
}

/// Total emulated disk reads across the cluster.
fn disk_reads(cluster: &Cluster) -> u64 {
    cluster.node_stats().iter().map(|s| s.disk_reads).sum()
}

fn coalesced_waits(cluster: &Cluster) -> u64 {
    cluster.node_stats().iter().map(|s| s.coalesced_waits).sum()
}

/// The headline: N concurrent cold misses on one target cost one disk
/// read with coalescing on and N with it off, byte-identical either way.
#[test]
fn concurrent_cold_misses_cost_one_read_coalesced_n_uncoalesced() {
    const N: usize = 6;
    let trace = corpus();
    let target = TargetId(0);
    for io in io_models() {
        for coalesce in [true, false] {
            let cluster = Cluster::start(config(io, coalesce, Duration::from_millis(250)), &trace)
                .expect("start cluster");
            // All N requests written well inside the 250 ms read window.
            let streams: Vec<TcpStream> = (0..N).map(|_| send_get(&cluster, target)).collect();
            for (i, s) in streams.into_iter().enumerate() {
                assert_full_response(s, &cluster, target, &format!("{io:?} conn {i}"));
            }
            assert!(cluster.quiesce(Duration::from_secs(10)), "{io:?}");
            let reads = disk_reads(&cluster);
            let waits = coalesced_waits(&cluster);
            if coalesce {
                assert_eq!(reads, 1, "{io:?}: coalescing must share one read");
                assert_eq!(waits, N as u64 - 1, "{io:?}: everyone else parks");
            } else {
                assert_eq!(reads, N as u64, "{io:?}: uncoalesced misses each read");
                assert_eq!(waits, 0, "{io:?}: nothing may park with coalescing off");
            }
            // The flight's insert populated the cache: one more request
            // is a pure hit, no new read.
            let extra = send_get(&cluster, target);
            assert_full_response(extra, &cluster, target, &format!("{io:?} post-flight"));
            assert_eq!(
                disk_reads(&cluster),
                reads,
                "{io:?}: post-flight hit read disk"
            );
            cluster.shutdown();
        }
    }
}

/// Satellite regression: a *waiter* whose connection dies mid-flight is
/// simply dropped — the flight completes for the survivors, the cache
/// gets its insert, and nothing leaks.
#[test]
fn waiter_death_mid_flight_leaks_nothing() {
    const N: usize = 5;
    let trace = corpus();
    let target = TargetId(1);
    for io in io_models() {
        let cluster = Cluster::start(config(io, true, Duration::from_millis(400)), &trace)
            .expect("start cluster");
        let mut streams: Vec<TcpStream> = (0..N).map(|_| send_get(&cluster, target)).collect();
        // Everyone is registered on the flight (the read takes 400 ms);
        // now one racer dies. Index N-1 wrote last, so with the writes
        // serialized above it is a parked waiter, never the leader.
        std::thread::sleep(Duration::from_millis(100));
        drop(streams.pop().expect("the doomed waiter"));
        for (i, s) in streams.into_iter().enumerate() {
            assert_full_response(s, &cluster, target, &format!("{io:?} survivor {i}"));
        }
        assert_eq!(disk_reads(&cluster), 1, "{io:?}");
        // The dead waiter's connection state unwound (threads: its
        // handler observes the broken pipe after the flight completes;
        // reactor: the slab generation check drops its delivery).
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: dead waiter leaked its connection"
        );
        assert_eq!(cluster.frontend().active_connections(), 0, "{io:?}");
        cluster.shutdown();
    }
}

/// Satellite regression, leader edition: the connection that *started*
/// the flight dies mid-read. The read still completes, the cache is
/// still populated, and every parked waiter is still served.
#[test]
fn leader_death_mid_flight_still_serves_waiters() {
    const WAITERS: usize = 3;
    let trace = corpus();
    let target = TargetId(2);
    for io in io_models() {
        let cluster = Cluster::start(config(io, true, Duration::from_millis(400)), &trace)
            .expect("start cluster");
        // The leader is deterministic: its request is in before anyone
        // else connects.
        let leader = send_get(&cluster, target);
        std::thread::sleep(Duration::from_millis(100));
        let waiters: Vec<TcpStream> = (0..WAITERS).map(|_| send_get(&cluster, target)).collect();
        std::thread::sleep(Duration::from_millis(100));
        drop(leader);
        for (i, s) in waiters.into_iter().enumerate() {
            assert_full_response(s, &cluster, target, &format!("{io:?} waiter {i}"));
        }
        assert_eq!(disk_reads(&cluster), 1, "{io:?}");
        assert_eq!(
            coalesced_waits(&cluster),
            WAITERS as u64,
            "{io:?}: every late racer must have parked on the doomed leader"
        );
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: dead leader leaked its connection"
        );
        cluster.shutdown();
    }
}

/// LRU-MAD is a drop-in eviction policy for the live cluster: under
/// churn with coalescing on, every response stays byte-exact and the
/// cache-feedback mirror still replays the journal exactly (divergence
/// converges to 0) — victim selection changed, journaling did not.
#[test]
fn lru_mad_with_coalescing_serves_and_stays_coherent() {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 300;
    synth.num_pages = 100;
    let trace = generate(&synth);
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let cfg = ProtoConfig {
            nodes: 3,
            policy: PolicyKind::ExtLard,
            cache_bytes: 384 * 1024, // far below the working set: churn
            disk: DiskEmu {
                seek: Duration::from_micros(300),
                bytes_per_sec: 200.0 * 1024.0 * 1024.0,
            },
            read_timeout: Duration::from_secs(5),
            io_model: io,
            coalesce_misses: true,
            cache_policy: EvictPolicy::LruMad,
            feedback_interval: Duration::from_millis(2),
            ..ProtoConfig::default()
        };
        let cluster = Cluster::start(cfg, &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 8,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}: byte-exactness broke under MAD");
        assert_eq!(report.requests as usize, trace.len(), "{io:?}");
        assert!(cluster.quiesce(Duration::from_secs(10)), "{io:?}");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut snap = cluster.frontend().coherence();
        while snap.divergence != 0 && std::time::Instant::now() < deadline {
            cluster.flush_feedback();
            std::thread::sleep(Duration::from_millis(2));
            snap = cluster.frontend().coherence();
        }
        assert_eq!(
            snap.divergence, 0,
            "{io:?}: MAD victim journaling desynced the mirror ({snap:?})"
        );
        assert!(snap.stale_removed > 0, "{io:?}: churn must shed beliefs");
        cluster.shutdown();
    }
}
