//! Large-body byte-exactness battery for the zero-copy data path.
//!
//! The small-body differential suite (`reactor_equivalence`) cannot see
//! the mechanics this battery exists for: with multi-KiB responses a
//! whole response fits in one socket buffer, so partial `writev`
//! resumption mid-iovec, HIGH_WATER backpressure on the staging queue,
//! and chunk-by-chunk lateral splicing never actually run. Here the
//! corpus is multi-MiB mixed — every large response is guaranteed to
//! straddle many short writes, overflow the per-connection staging
//! budget, and stream laterally in many chunks — and every cell of the
//! matrix
//!
//! ```text
//! {threads oracle} vs {reactor × shards {1,2,4}} × coalescing {off,on}
//!                                               × front_ends {1,2}
//! ```
//!
//! must produce **byte-identical** transcripts (responses are a pure
//! function of `(target, HTTP version)`, so transcripts compare across
//! io models, shard counts, and tier shapes). Each response body is
//! additionally verified against the store, anchoring the equality to
//! ground truth rather than to a shared bug. Every reactor run must
//! demonstrably stream laterally (the remote path byte-identity alone
//! cannot see), and must unwind to zero tracked connections, zero
//! residual load, and a fully drained `pending_body_bytes` gauge.
//!
//! A final leg flips `zero_copy` off and replays the matrix corner
//! cells: the copying baseline the zerocopy bench compares against must
//! be invisible on the wire.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use bytes::BytesMut;
use phttp_core::{Mechanism, PolicyKind};
use phttp_http::{Request, ResponseParser, Version};
use phttp_proto::{Cluster, ContentStore, DiskEmu, IoModel, ProtoConfig};
use phttp_simcore::SimTime;
use phttp_trace::{reconstruct, ClientId, ConnectionTrace, SessionConfig, TargetId, Trace};

const MIB: u64 = 1024 * 1024;

/// Mixed corpus dominated by multi-MiB targets, with small files
/// sprinkled in so gathered writes interleave tiny and huge iovecs on
/// one connection.
const SIZES: [u64; 8] = [
    3 * MIB,
    2 * MIB,
    MIB + 512 * 1024,
    MIB,
    512 * 1024,
    192 * 1024,
    8 * 1024,
    64,
];

/// Hand-built workload: 10 clients × 8 requests, spaced so each client
/// reconstructs to one persistent connection of one leading single
/// request plus pipelined batches. Every target is requested several
/// times (hits AND misses on every node), deterministically.
fn workload() -> (Trace, ConnectionTrace) {
    let mut requests = Vec::new();
    for c in 0..10u32 {
        for k in 0..8u64 {
            requests.push(phttp_trace::Request {
                // 100 ms spacing keeps all non-first requests of a
                // client inside the 1 s pipelining window.
                time: SimTime::from_millis(c as u64 * 7 + k * 100),
                client: ClientId(c),
                target: TargetId(((c as u64 * 3 + k * 5 + k) % SIZES.len() as u64) as u32),
            });
        }
    }
    let trace = Trace::new(requests, SIZES.to_vec());
    let conns = reconstruct(&trace, SessionConfig::default());
    (trace, conns)
}

fn config(io_model: IoModel, shards: usize, front_ends: usize, coalesce: bool) -> ProtoConfig {
    ProtoConfig {
        nodes: 3,
        policy: PolicyKind::ExtLard,
        mechanism: Mechanism::BackendForwarding,
        // Per-node cache *below* the two largest bodies: those are
        // uncacheable (every serve is a slow disk read, so queues build
        // and extLARD demonstrably forwards), the mid-size targets fit
        // but evict each other — so cached slices get evicted while
        // their bytes are still queued for write-out (the refcount
        // keeps them alive; a path that freed early would corrupt).
        cache_bytes: 2 * MIB - 1,
        disk: DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 100.0 * MIB as f64,
        },
        coalesce_misses: coalesce,
        read_timeout: Duration::from_secs(10),
        io_model,
        reactor_shards: shards,
        front_ends,
        ..ProtoConfig::default()
    }
}

/// Plays one trace connection, verifying each body against the store as
/// it arrives, and returns the re-encoded wire bytes of each response.
fn play_one(
    addr: SocketAddr,
    conn: &phttp_trace::Connection,
    store: &ContentStore,
) -> Vec<Vec<u8>> {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut parser = ResponseParser::new();
    let mut responses = Vec::with_capacity(conn.num_requests());
    let mut buf = vec![0u8; 64 * 1024];
    for batch in &conn.batches {
        let mut wire = BytesMut::new();
        for &target in &batch.targets {
            Request::get(ContentStore::uri(target), Version::Http11).encode(&mut wire);
        }
        stream.write_all(&wire).unwrap();
        let mut got = 0;
        while got < batch.targets.len() {
            if let Some(resp) = parser.next().expect("parse response") {
                assert_eq!(resp.status, 200);
                assert!(
                    store.verify(batch.targets[got], &resp.body),
                    "corrupt body for {}",
                    batch.targets[got]
                );
                responses.push(resp.to_bytes().to_vec());
                got += 1;
                continue;
            }
            let n = stream.read(&mut buf).expect("read response");
            assert!(n > 0, "server closed mid-connection");
            parser.feed(&buf[..n]);
        }
    }
    responses
}

/// Plays every connection, several in flight at once (so staging queues
/// actually back up against HIGH_WATER and extLARD actually forwards),
/// spread across all front-end addresses.
fn play_capture(
    addrs: &[SocketAddr],
    workload: &ConnectionTrace,
    store: &ContentStore,
) -> Vec<Vec<Vec<u8>>> {
    let cursor = AtomicUsize::new(0);
    let transcript: Vec<parking_lot::Mutex<Vec<Vec<u8>>>> = workload
        .connections
        .iter()
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = workload.connections.get(i) else {
                    break;
                };
                *transcript[i].lock() = play_one(addrs[i % addrs.len()], conn, store);
            });
        }
    });
    transcript.into_iter().map(|m| m.into_inner()).collect()
}

/// One matrix cell: serve the workload, capture transcripts, prove the
/// cluster unwound clean, and return (transcript, summed lateral_out).
fn run_cell(mut cfg: ProtoConfig, cell: &str) -> (Vec<Vec<Vec<u8>>>, u64) {
    let (trace, conns) = workload();
    let io_model = cfg.io_model;
    cfg.read_timeout = cfg.read_timeout.max(Duration::from_secs(10));
    let cluster = Cluster::start(cfg, &trace).expect("start cluster");
    let transcript = play_capture(cluster.frontend_addrs(), &conns, cluster.store());
    assert!(
        cluster.quiesce(Duration::from_secs(15)),
        "{cell}: connections leaked"
    );
    let fe = cluster.frontend_shared();
    assert_eq!(fe.active_connections(), 0, "{cell}");
    assert!(
        fe.loads().iter().all(|&l| l.abs() < 1e-12),
        "{cell}: residual load {:?}",
        fe.loads()
    );
    if io_model == IoModel::Reactor {
        // Satellite invariant: the staging-queue gauge charges each
        // queued slice once and unwinds to exactly zero when every
        // connection has drained.
        let stats = cluster.reactor_stats().expect("reactor mode");
        assert_eq!(
            stats.pending_body_bytes(),
            0,
            "{cell}: pending_body_bytes gauge leaked"
        );
    }
    let responses: usize = transcript.iter().map(|c| c.len()).sum();
    assert_eq!(responses, trace.len(), "{cell}: lost responses");
    let lateral: u64 = cluster.node_stats().iter().map(|s| s.lateral_out).sum();
    cluster.shutdown();
    (transcript, lateral)
}

fn matrix(coalesce: bool) {
    let (oracle, oracle_lateral) =
        run_cell(config(IoModel::Threads, 1, 1, coalesce), "threads oracle");
    assert!(
        oracle_lateral > 0,
        "oracle never forwarded — the recipe exercises no remote path"
    );
    for shards in [1usize, 2, 4] {
        for front_ends in [1usize, 2] {
            let cell = format!("reactor/shards={shards}/fe={front_ends}/coalesce={coalesce}");
            let (transcript, lateral) = run_cell(
                config(IoModel::Reactor, shards, front_ends, coalesce),
                &cell,
            );
            assert!(lateral > 0, "{cell}: no lateral stream ever ran");
            assert_eq!(
                oracle, transcript,
                "{cell}: large-body transcripts diverge from the threads oracle"
            );
        }
    }
}

#[test]
fn large_body_matrix_matches_threads_oracle() {
    matrix(false);
}

#[test]
fn large_body_matrix_matches_threads_oracle_with_coalescing() {
    matrix(true);
}

/// The copying baseline (`zero_copy: false` — responses flattened into
/// one contiguous buffer before write-out) must be byte-identical to
/// the zero-copy path in both io models; it exists only so the zerocopy
/// bench has an honest same-harness comparison.
#[test]
fn copying_baseline_is_invisible_on_the_wire() {
    let (oracle, _) = run_cell(config(IoModel::Threads, 1, 1, false), "zc oracle");
    for io_model in [IoModel::Threads, IoModel::Reactor] {
        let shards = if io_model == IoModel::Reactor { 2 } else { 1 };
        let mut cfg = config(io_model, shards, 1, false);
        cfg.zero_copy = false;
        let (transcript, _) = run_cell(cfg, &format!("copying/{io_model:?}"));
        assert_eq!(
            oracle, transcript,
            "{io_model:?}: the zero_copy knob changed response bytes"
        );
    }
}
