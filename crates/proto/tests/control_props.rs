//! Property tests for the control-plane framing: a [`FrameDecoder`]
//! must be transparent to arbitrary re-fragmentation or coalescing of a
//! valid multi-frame stream, and must reject garbage (bad tags,
//! oversize lengths, corrupted payloads) with an error — never a panic
//! and never unbounded buffering.

use phttp_core::{CacheEvent, ConnId, FeId, NodeId, StateDelta};
use phttp_proto::control::{encode, ControlMsg, DecodeError, FrameDecoder, MAX_FRAME};
use phttp_trace::TargetId;
use proptest::prelude::*;

/// A journal fragment: tag bit picks admit/evict, the rest the target.
fn arb_events() -> impl Strategy<Value = Vec<CacheEvent>> {
    proptest::collection::vec(
        (any::<bool>(), 0u32..200).prop_map(|(admit, t)| {
            if admit {
                CacheEvent::Admit(TargetId(t))
            } else {
                CacheEvent::Evict(TargetId(t))
            }
        }),
        0..24,
    )
}

/// Any valid control message, covering every frame tag.
fn arb_msg() -> impl Strategy<Value = ControlMsg> {
    prop_oneof![
        (0usize..8, 0u32..1000).prop_map(|(n, d)| ControlMsg::DiskQueue {
            node: NodeId(n),
            depth: d,
        }),
        (0usize..8, arb_events()).prop_map(|(n, events)| ControlMsg::CacheFeedback {
            node: NodeId(n),
            events,
        }),
        (0usize..8, 1u32..16, arb_events()).prop_map(|(n, weight, events)| ControlMsg::Join {
            node: NodeId(n),
            weight,
            events,
        }),
        (0u64..500).prop_map(|c| ControlMsg::Handoff(phttp_handoff::CtrlMsg::ConnClosed {
            conn: ConnId(c),
        })),
        // Node indices must stay below loads.len() — the delta decoder
        // rejects out-of-range nodes — so loads is fixed at 4 entries.
        (
            0usize..4,
            1u64..50,
            proptest::collection::vec(-5i64..50, 4..5),
            proptest::collection::vec((0u32..50, proptest::collection::vec(0usize..4, 0..3)), 0..5),
        )
            .prop_map(|(origin, seq, loads, mapping)| {
                ControlMsg::StateDelta(StateDelta {
                    origin: FeId(origin),
                    seq,
                    loads,
                    mapping: mapping
                        .into_iter()
                        .map(|(t, ns)| (TargetId(t), ns.into_iter().map(NodeId).collect()))
                        .collect(),
                })
            }),
    ]
}

/// Drains every currently complete frame, asserting no error.
fn drain(dec: &mut FrameDecoder, out: &mut Vec<ControlMsg>) {
    while let Some(m) = dec.next().expect("valid stream must decode") {
        out.push(m);
    }
}

proptest! {
    /// Chopping a valid multi-frame stream into arbitrary chunks — from
    /// byte-at-a-time up to coalescing many frames per read — yields
    /// exactly the original message sequence, with nothing left over.
    #[test]
    fn refragmentation_is_transparent(
        msgs in proptest::collection::vec(arb_msg(), 1..10),
        cuts in proptest::collection::vec(1usize..96, 0..48),
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode(m));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut at = 0;
        let mut ci = 0;
        while at < wire.len() {
            // Cycle the proptest-chosen chunk sizes; an empty list
            // degenerates to a fixed odd stride (still exercises
            // header/payload splits).
            let n = if cuts.is_empty() { 7 } else { cuts[ci % cuts.len()] };
            ci += 1;
            let end = (at + n).min(wire.len());
            dec.feed(&wire[at..end]);
            at = end;
            drain(&mut dec, &mut got);
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Feeding the whole stream at once (maximal coalescing) and
    /// feeding it frame-by-frame agree.
    #[test]
    fn coalescing_equals_frame_at_a_time(msgs in proptest::collection::vec(arb_msg(), 1..10)) {
        let mut coalesced = FrameDecoder::new();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode(m));
        }
        coalesced.feed(&wire);
        let mut a = Vec::new();
        drain(&mut coalesced, &mut a);

        let mut framed = FrameDecoder::new();
        let mut b = Vec::new();
        for m in &msgs {
            framed.feed(&encode(m));
            drain(&mut framed, &mut b);
        }
        prop_assert_eq!(&a, &msgs);
        prop_assert_eq!(&b, &msgs);
    }

    /// Arbitrary garbage bytes, delivered in arbitrary chunks, never
    /// panic the decoder: every outcome is a decoded message, a request
    /// for more bytes, or a poisoning error.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..48,
    ) {
        let mut dec = FrameDecoder::new();
        for c in bytes.chunks(chunk) {
            dec.feed(c);
            loop {
                match dec.next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    // Poisoned: a real session would drop the stream here.
                    Err(_) => return Ok(()),
                }
            }
        }
    }

    /// Flipping one byte of a valid stream never panics, and the frames
    /// before the corruption still decode intact.
    #[test]
    fn single_byte_corruption_never_panics(
        msgs in proptest::collection::vec(arb_msg(), 1..6),
        pick in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode(m));
            boundaries.push(wire.len());
        }
        let at = (pick % wire.len() as u64) as usize;
        wire[at] ^= flip;
        let intact = boundaries.iter().filter(|&&b| b <= at).count();

        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut got = 0usize;
        loop {
            match dec.next() {
                Ok(Some(_)) => got += 1,
                Ok(None) => break,
                Err(_) => break,
            }
        }
        prop_assert!(
            got >= intact,
            "corruption at byte {} lost {} already-complete frames",
            at,
            intact - got
        );
    }

    /// A declared length above [`MAX_FRAME`] is rejected from the header
    /// alone — before any payload is buffered.
    #[test]
    fn oversize_is_rejected_from_the_header(
        tag in 0u8..=255,
        len in (MAX_FRAME as u32 + 1)..=u32::MAX,
    ) {
        let mut dec = FrameDecoder::new();
        let mut wire = vec![tag];
        wire.extend_from_slice(&len.to_le_bytes());
        dec.feed(&wire);
        prop_assert_eq!(dec.next(), Err(DecodeError::Oversize(len)));
        prop_assert!(dec.buffered() <= wire.len());
    }
}
