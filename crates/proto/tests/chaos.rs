//! The chaos differential harness: deterministic, seed-driven
//! membership churn — kills, warm restarts, cold replacements, and a
//! standby slot joining fresh — injected *under live verifying load*,
//! across both I/O models and both tier shapes (1 and 2 front-ends).
//!
//! What must survive arbitrary churn:
//!
//! * **Zero lost requests.** Every load run completes every request
//!   with byte-exact responses (`run_load` verifies each body against
//!   the store). A kill is the failure detector's view — the node's
//!   listeners keep serving while decommissioned — so conservation is
//!   the prototype's drain guarantee, not an accident of timing.
//! * **Breaker convergence.** Once every slot has rejoined and traffic
//!   has settled, every front-end's circuit breaker is Closed for every
//!   slot.
//! * **Belief convergence.** `mapping_divergence → 0` on every
//!   front-end after the post-churn quiescent flush: joins warm the
//!   belief from the node's journal, feedback repairs the rest.
//!
//! The schedule derives from `PHTTP_CHAOS_SEED` (decimal u64; pinned
//! default below, echoed in every assertion so failures are one
//! environment variable away from a local repro).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use phttp_core::{HealthState, NodeId, PolicyKind};
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_trace::{generate, reconstruct, SessionConfig, SynthConfig};

/// Pinned default schedule seed (override with `PHTTP_CHAOS_SEED`).
const DEFAULT_SEED: u64 = 0xC1A0_5EED_0808_2026;

/// Serving slots at start; one more is a standby that joins mid-run.
const SERVING: usize = 3;
const STANDBY: usize = 1;
const TOTAL: usize = SERVING + STANDBY;

/// Seed-driven churn operations per matrix cell (the first is always
/// the standby join, so cold-start admission runs under load in every
/// cell).
const OPS: usize = 8;

fn seed() -> u64 {
    std::env::var("PHTTP_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// SplitMix64: tiny, seedable, and good enough to scatter a schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn io_models() -> Vec<IoModel> {
    match std::env::var("PHTTP_IO_MODEL").as_deref() {
        Ok("threads") => vec![IoModel::Threads],
        Ok("reactor") => vec![IoModel::Reactor],
        _ => vec![IoModel::Threads, IoModel::Reactor],
    }
}

fn chaos_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 250;
    synth.num_pages = 80;
    generate(&synth)
}

fn config(io: IoModel, front_ends: usize) -> ProtoConfig {
    ProtoConfig {
        nodes: SERVING,
        standby_nodes: STANDBY,
        // Heterogeneous capacities: slot 0 advertises twice the
        // baseline, so weighted tie-breaks run throughout the churn.
        node_weights: vec![2, 1, 1, 1],
        policy: PolicyKind::ExtLard,
        cache_bytes: 1024 * 1024,
        disk: DiskEmu {
            seek: Duration::from_micros(300),
            bytes_per_sec: 200.0 * 1024.0 * 1024.0,
        },
        cache_feedback: true,
        feedback_interval: Duration::from_millis(10),
        health_tick_interval: Duration::from_millis(10),
        read_timeout: Duration::from_secs(5),
        io_model: io,
        front_ends,
        ..ProtoConfig::default()
    }
}

/// One matrix cell: start the cluster, run verifying load continuously,
/// churn against it, then prove conservation + convergence.
fn chaos_cell(io: IoModel, front_ends: usize, seed: u64) {
    let cell = format!("{io:?}/fe{front_ends}/seed={seed}");
    let trace = chaos_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    let expected = trace.len() as u64;
    let cluster = Cluster::start(config(io, front_ends), &trace).expect("start cluster");

    let stop = AtomicBool::new(false);
    let errors = AtomicU64::new(0);
    let short_runs = AtomicU64::new(0);
    let runs = AtomicU64::new(0);

    // Slot i's rng stream is decorrelated from the op sequence.
    let mut rng = Rng(seed);
    std::thread::scope(|scope| {
        // Continuous verifying load for the whole churn window: each
        // pass replays the full workload and checks every response
        // byte-exact against the store.
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let report = run_load(
                    cluster.frontend_addrs(),
                    cluster.store(),
                    &workload,
                    &LoadConfig {
                        clients: 8,
                        protocol: ClientProtocol::PHttp,
                        ..LoadConfig::default()
                    },
                );
                runs.fetch_add(1, Ordering::Relaxed);
                errors.fetch_add(report.errors, Ordering::Relaxed);
                if report.requests != expected {
                    short_runs.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // The churn schedule. `up[i]` tracks whether slot i is in the
        // serving set from the dispatchers' point of view.
        let mut up = vec![true; SERVING];
        up.resize(TOTAL, false);
        for op in 0..OPS {
            std::thread::sleep(Duration::from_millis(5 + rng.below(20)));
            let killable: Vec<usize> = (0..TOTAL).filter(|&i| up[i]).collect();
            let joinable: Vec<usize> = (0..TOTAL).filter(|&i| !up[i]).collect();
            // First op: the standby always joins under load. After
            // that: join when someone is out and the coin says so (or
            // when killing would empty the serving set).
            let join =
                op == 0 || (!joinable.is_empty() && (killable.len() <= 1 || rng.below(2) == 0));
            if join {
                let slot = joinable[rng.below(joinable.len() as u64) as usize];
                let ok = if rng.below(2) == 0 {
                    cluster.rejoin_node_warm(slot)
                } else {
                    cluster.rejoin_node_cold(slot)
                };
                assert!(ok, "{cell}: op {op} join of slot {slot} failed");
                up[slot] = true;
            } else {
                let slot = killable[rng.below(killable.len() as u64) as usize];
                assert!(
                    cluster.kill_node(slot),
                    "{cell}: op {op} kill of slot {slot} never tripped every breaker"
                );
                up[slot] = false;
            }
        }
        // Quiesce the membership: every slot rejoins (warm) so the
        // convergence asserts below have a fixed target.
        for (slot, up) in up.iter().enumerate() {
            if !up {
                assert!(
                    cluster.rejoin_node_warm(slot),
                    "{cell}: final rejoin of slot {slot} failed"
                );
            }
        }
        // Let at least one full load run see the settled cluster.
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
    });

    // Conservation: every pass of the verifying load completed every
    // request, byte-exact, across every kill/join in the schedule.
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "{cell}: a client saw a transport error or a corrupt body"
    );
    assert_eq!(
        short_runs.load(Ordering::Relaxed),
        0,
        "{cell}: a load pass lost requests"
    );
    assert!(runs.load(Ordering::Relaxed) > 0, "{cell}: load never ran");
    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "{cell}: connections leaked after churn"
    );

    // Belief convergence: force flushes and poll until every
    // front-end's mirror-tracked divergence reaches zero.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        cluster.flush_feedback();
        let worst = cluster
            .front_ends()
            .iter()
            .map(|fe| fe.coherence().divergence)
            .max()
            .unwrap();
        if worst == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{cell}: mapping divergence stuck at {worst} after churn"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Breaker convergence + churn actually happened.
    for (f, fe) in cluster.front_ends().iter().enumerate() {
        for i in 0..TOTAL {
            assert_eq!(
                fe.health().state(NodeId(i)),
                HealthState::Closed,
                "{cell}: fe {f} breaker for slot {i} not Closed post-churn"
            );
        }
        assert!(
            fe.node_joins() > 0,
            "{cell}: fe {f} never applied a Join handshake"
        );
        assert!(
            fe.node_evictions() > 0,
            "{cell}: fe {f} never evicted a killed node"
        );
        let snap = fe.coherence();
        assert!(snap.believed_pairs > 0, "{cell}: fe {f} formed no beliefs");
    }

    // Final verification traffic against the fully rejoined cluster.
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 4,
            protocol: ClientProtocol::PHttp,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.errors, 0, "{cell}: post-churn cluster is broken");
    assert_eq!(
        report.requests, expected,
        "{cell}: post-churn run lost requests"
    );
    cluster.shutdown();
}

#[test]
fn chaos_churn_conserves_requests_and_converges() {
    let seed = seed();
    for io in io_models() {
        for front_ends in [1usize, 2] {
            chaos_cell(io, front_ends, seed ^ (front_ends as u64));
        }
    }
}

/// The warm-up differential, isolated from scheduling noise: a warm
/// rejoin must seed the dispatchers' beliefs with the node's surviving
/// cache contents *before* traffic resumes, a cold rejoin must not.
#[test]
fn warm_join_seeds_beliefs_cold_join_does_not() {
    let seed = seed();
    let trace = chaos_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let cell = format!("{io:?}/seed={seed}");
        let cluster = Cluster::start(config(io, 1), &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 8,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{cell}");
        assert!(cluster.quiesce(Duration::from_secs(10)), "{cell}");

        let victim = 1usize;
        let believed = |cluster: &Cluster| {
            let mut count = 0usize;
            cluster.frontend().mapping().for_each_pair(|_, n| {
                if n == NodeId(victim) {
                    count += 1;
                }
            });
            count
        };
        assert!(cluster.kill_node(victim), "{cell}: kill failed");
        assert_eq!(believed(&cluster), 0, "{cell}: eviction left beliefs");

        // Warm: the journal replay re-seeds the belief immediately —
        // before any request has touched the rejoined node.
        assert!(cluster.rejoin_node_warm(victim), "{cell}");
        let deadline = Instant::now() + Duration::from_secs(5);
        while believed(&cluster) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let warm_pairs = believed(&cluster);
        assert!(
            warm_pairs > 0,
            "{cell}: warm join seeded no beliefs for the rejoined node"
        );

        // Cold: wiped cache, empty journal — the belief stays empty
        // until traffic refills it.
        assert!(cluster.kill_node(victim), "{cell}: second kill failed");
        assert!(cluster.rejoin_node_cold(victim), "{cell}");
        // The Join frame is ordered before any feedback on the fresh
        // session; give it the same window the warm path got.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            believed(&cluster),
            0,
            "{cell}: cold join must start from a blank belief"
        );
        assert_eq!(
            cluster.frontend().health().state(NodeId(victim)),
            HealthState::Closed,
            "{cell}: cold join must still close the breaker"
        );
        cluster.shutdown();
    }
}
