//! fd-bound soak: thousands of mostly-idle persistent connections on
//! the reactor shards, proving the P-HTTP many-connection regime the
//! paper's front-end must sustain — and that nothing leaks doing it.
//!
//! Each connection sends one request, gets its byte-exact response, and
//! then just sits there holding its socket (the "mostly idle" shape of
//! real persistent-connection populations). With every connection
//! simultaneously open, the cluster's thread count is still just
//! `reactor_shards` — concurrency is bounded by file descriptors. After
//! every client closes, the invariants under test are: zero tracked
//! dispatcher connections, exactly zero residual load (fixed-point
//! accounting), and — once the idle sweep has reaped pooled lateral
//! sessions — **zero registered slab sources and zero pending timers**
//! across every shard. A slab or timer-heap leak of even one entry
//! fails the run.
//!
//! The full-size soak (`PHTTP_SOAK_CONNS`, default 5000) is `#[ignore]`d
//! — run it with `cargo test -p phttp-proto --test reactor_soak --
//! --ignored`. The unconditional smoke runs the same machinery at 256
//! connections so the invariants are exercised on every CI run.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use phttp_core::PolicyKind;
use phttp_proto::{Cluster, ContentStore, DiskEmu, IoModel, ProtoConfig};
use phttp_trace::TargetId;

/// Worker threads opening/holding connections (client-side only — the
/// cluster under test stays at `reactor_shards` threads regardless).
const OPENERS: usize = 8;

fn soak(conns: usize) {
    // The idle sweep reaps a drained connection after `read_timeout`
    // of inactivity, and every held connection goes idle right after
    // its one request — so the budget for opening ALL of them is
    // read_timeout from the FIRST one going idle. Scale it with the
    // connection count (≥5 ms each) so a slow 1-core host cannot have
    // early connections swept while late ones are still being opened.
    let read_timeout = Duration::from_secs(5).max(Duration::from_millis(5 * conns as u64));
    // A small corpus the caches swallow whole: after warmup every
    // request is a hit, so the measurement is the connection machinery,
    // not the disk model.
    let trace = phttp_trace::Trace::new(Vec::new(), vec![4096; 8]);
    let shards = std::env::var("PHTTP_REACTOR_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let cluster = Cluster::start(
        ProtoConfig {
            nodes: 2,
            policy: PolicyKind::ExtLard,
            cache_bytes: 16 * 1024 * 1024,
            disk: DiskEmu {
                seek: Duration::from_micros(100),
                bytes_per_sec: 400.0 * 1024.0 * 1024.0,
            },
            read_timeout,
            io_model: IoModel::Reactor,
            reactor_shards: shards,
            ..ProtoConfig::default()
        },
        &trace,
    )
    .expect("start cluster");
    let addrs: Vec<_> = cluster.frontend_addrs().to_vec();
    let fe = cluster.frontend_shared();
    let stats = cluster.reactor_stats().expect("reactor mode");

    // Phase 1: open every connection, serve one request on each, then
    // HOLD the socket. The barriers fence the phases so the assertions
    // below observe all `conns` connections open at once.
    let opened = AtomicUsize::new(0);
    let all_open = Barrier::new(OPENERS + 1);
    let all_done = Barrier::new(OPENERS + 1);
    std::thread::scope(|scope| {
        for w in 0..OPENERS {
            let addrs = &addrs;
            let opened = &opened;
            let all_open = &all_open;
            let all_done = &all_done;
            scope.spawn(move || {
                let mine = (conns + OPENERS - 1 - w) / OPENERS; // balanced split
                let mut held = Vec::with_capacity(mine);
                let mut buf = vec![0u8; 32 * 1024];
                for i in 0..mine {
                    let addr = addrs[(w + i) % addrs.len()];
                    let mut s = std::net::TcpStream::connect(addr).expect("connect");
                    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let target = TargetId(((w + i) % 8) as u32);
                    let req = format!("GET {} HTTP/1.1\r\n\r\n", ContentStore::uri(target));
                    s.write_all(req.as_bytes()).unwrap();
                    let mut parser = phttp_http::ResponseParser::new();
                    loop {
                        if let Some(resp) = parser.next().unwrap() {
                            assert_eq!(resp.status, 200);
                            assert_eq!(resp.body.len(), 4096, "byte-exact body");
                            break;
                        }
                        let n = s.read(&mut buf).expect("read response");
                        assert!(n > 0, "server closed a held connection");
                        parser.feed(&buf[..n]);
                    }
                    held.push(s);
                    opened.fetch_add(1, Ordering::Relaxed);
                }
                all_open.wait();
                // Main thread asserts while everything idles open.
                all_done.wait();
                drop(held); // Phase 2: everyone hangs up.
            });
        }
        all_open.wait();
        // Every connection is open and served — and the server side is
        // still only `shards` event-loop threads.
        assert_eq!(opened.load(Ordering::Relaxed), conns);
        assert_eq!(
            fe.active_connections(),
            conns,
            "dispatcher must track every idle persistent connection"
        );
        assert!(
            stats.sources() >= conns,
            "every connection is a registered source (got {} for {conns})",
            stats.sources()
        );
        all_done.wait();
    });

    // Phase 3: drain. Dispatcher state unwinds as the shards observe
    // the EOFs...
    assert!(
        cluster.quiesce(Duration::from_secs(30)),
        "connections leaked after close"
    );
    assert_eq!(fe.active_connections(), 0);
    assert!(
        fe.loads().iter().all(|&l| l.abs() < 1e-12),
        "residual load after drain: {:?}",
        fe.loads()
    );
    // ...and the slab + timer heap drain to exactly zero: client slots
    // free on EOF, pooled lateral sessions and idle peer-server
    // connections fall to the idle sweep within ~read_timeout.
    let deadline = Instant::now() + read_timeout + Duration::from_secs(15);
    while (stats.sources() > 0 || stats.timers() > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(stats.sources(), 0, "slab leak: sources survived the drain");
    assert_eq!(stats.timers(), 0, "timer-heap leak after drain");
    cluster.shutdown();
}

/// Reduced-size smoke of the soak invariants; runs unconditionally
/// (CI's soak leg also runs the `#[ignore]`d full soak at a reduced
/// `PHTTP_SOAK_CONNS`).
#[test]
fn soak_smoke_256_connections() {
    soak(256);
}

/// The full fd-bound soak: ~5k mostly-idle persistent connections
/// (`PHTTP_SOAK_CONNS` overrides; needs an fd limit comfortably above
/// 2× the connection count — the test process holds the client side).
#[test]
#[ignore = "fd-heavy; run explicitly (see README 'Soak test')"]
fn soak_5k_connections() {
    let conns = std::env::var("PHTTP_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000);
    soak(conns);
}
