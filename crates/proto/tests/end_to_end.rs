//! End-to-end tests of the live loopback cluster: byte-exact responses,
//! policy-visible distribution behaviour, and clean shutdown.

use std::time::Duration;

use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, LoadConfig, ProtoConfig};
use phttp_trace::{generate, http10_connections, reconstruct, SessionConfig, SynthConfig};

fn tiny_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 150;
    synth.num_pages = 60;
    generate(&synth)
}

fn fast_disk() -> DiskEmu {
    DiskEmu {
        seek: Duration::from_micros(300),
        bytes_per_sec: 200.0 * 1024.0 * 1024.0,
    }
}

fn config(policy: PolicyKind, nodes: usize) -> ProtoConfig {
    ProtoConfig {
        nodes,
        policy,
        cache_bytes: 1024 * 1024,
        disk: fast_disk(),
        read_timeout: Duration::from_secs(5),
        ..ProtoConfig::default()
    }
}

#[test]
fn phttp_serves_every_request_byte_exact() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    let cluster = Cluster::start(config(PolicyKind::ExtLard, 3), &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 8,
            protocol: ClientProtocol::PHttp,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.errors, 0, "verification failures");
    assert_eq!(report.requests as usize, trace.len());
    assert_eq!(report.connections as usize, workload.connections.len());
    // The cluster served everything the clients received. A lateral fetch
    // that times out under load falls back to local service, which can
    // legitimately count a request twice — allow a whisker of slack.
    let served: u64 = cluster.node_stats().iter().map(|s| s.served).sum();
    assert!(served >= trace.len() as u64);
    assert!(served <= trace.len() as u64 + 8, "served={served}");
    // All policy connection state was torn down (handlers observe the
    // clients' EOFs asynchronously, so wait for quiescence first).
    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "connections leaked"
    );
    assert_eq!(cluster.frontend().active_connections(), 0);
    cluster.shutdown();
}

#[test]
fn http10_mode_works_on_every_policy() {
    let trace = tiny_trace();
    let workload = http10_connections(&trace);
    for policy in [PolicyKind::Wrr, PolicyKind::Lard] {
        let cluster = Cluster::start(config(policy, 2), &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 8,
                protocol: ClientProtocol::Http10,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{policy:?}");
        assert_eq!(report.requests as usize, trace.len(), "{policy:?}");
        cluster.shutdown();
    }
}

#[test]
fn wrr_spreads_but_lard_concentrates_targets() {
    let trace = tiny_trace();
    let workload = http10_connections(&trace);

    // WRR: every node should see a similar number of requests.
    let cluster = Cluster::start(config(PolicyKind::Wrr, 3), &trace).expect("start cluster");
    let _ = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 6,
            protocol: ClientProtocol::Http10,
            ..LoadConfig::default()
        },
    );
    let wrr_stats = cluster.node_stats();
    cluster.shutdown();
    let served: Vec<u64> = wrr_stats.iter().map(|s| s.served).collect();
    let max = *served.iter().max().unwrap() as f64;
    let min = *served.iter().min().unwrap() as f64;
    assert!(min / max > 0.5, "WRR petered out unevenly: {served:?}");

    // LARD: better aggregate hit rate than WRR on the same workload (cache
    // aggregation), since per-node caches are much smaller than the corpus.
    let cluster = Cluster::start(config(PolicyKind::Lard, 3), &trace).expect("start cluster");
    let _ = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 6,
            protocol: ClientProtocol::Http10,
            ..LoadConfig::default()
        },
    );
    let lard_stats = cluster.node_stats();
    cluster.shutdown();
    let hit = |st: &[phttp_proto::NodeStatsSnapshot]| {
        let h: u64 = st.iter().map(|s| s.hits).sum();
        let r: u64 = st.iter().map(|s| s.served).sum();
        h as f64 / r as f64
    };
    assert!(
        hit(&lard_stats) > hit(&wrr_stats),
        "LARD hit rate {:.3} must beat WRR {:.3}",
        hit(&lard_stats),
        hit(&wrr_stats)
    );
}

#[test]
fn ext_lard_uses_lateral_fetches_under_pressure() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    // Slow disk so queues build and the policy prefers forwarding.
    let mut cfg = config(PolicyKind::ExtLard, 3);
    cfg.disk = DiskEmu {
        seek: Duration::from_millis(2),
        bytes_per_sec: 40.0 * 1024.0 * 1024.0,
    };
    cfg.cache_bytes = 512 * 1024;
    let cluster = Cluster::start(cfg, &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 12,
            protocol: ClientProtocol::PHttp,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.errors, 0);
    let stats = cluster.node_stats();
    let lateral: u64 = stats.iter().map(|s| s.lateral_out).sum();
    let lateral_in: u64 = stats.iter().map(|s| s.lateral_in).sum();
    assert!(lateral > 0, "extended LARD never forwarded");
    assert_eq!(lateral, lateral_in, "every lateral fetch has a server side");
    cluster.shutdown();
}

#[test]
fn single_node_cluster_works() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    let cluster = Cluster::start(config(PolicyKind::ExtLard, 1), &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 4,
            protocol: ClientProtocol::PHttp,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.errors, 0);
    let stats = cluster.node_stats();
    assert_eq!(stats[0].lateral_out, 0, "nowhere to forward with one node");
    cluster.shutdown();
}

#[test]
fn unknown_uri_gets_404_without_breaking_connection() {
    use std::io::{Read, Write};
    let trace = tiny_trace();
    let cluster = Cluster::start(config(PolicyKind::ExtLard, 2), &trace).expect("start cluster");
    let mut stream = std::net::TcpStream::connect(cluster.frontend_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // A valid first request (handoff needs a real target), then a bogus one.
    stream.write_all(b"GET /t/0 HTTP/1.1\r\n\r\n").unwrap();
    let mut parser = phttp_http::ResponseParser::new();
    let mut buf = [0u8; 8192];
    let mut responses = Vec::new();
    while responses.is_empty() {
        let n = stream.read(&mut buf).unwrap();
        parser.feed(&buf[..n]);
        while let Some(r) = parser.next().unwrap() {
            responses.push(r.status);
        }
    }
    stream
        .write_all(b"GET /no/such/thing HTTP/1.1\r\n\r\nGET /t/1 HTTP/1.1\r\n\r\n")
        .unwrap();
    while responses.len() < 3 {
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server closed early");
        parser.feed(&buf[..n]);
        while let Some(r) = parser.next().unwrap() {
            responses.push(r.status);
        }
    }
    assert_eq!(responses, vec![200, 404, 200]);
    cluster.shutdown();
}

#[test]
fn simulator_only_mechanism_is_a_config_error_not_a_panic() {
    use phttp_core::Mechanism;
    let trace = tiny_trace();
    for mech in [Mechanism::RelayingFrontend, Mechanism::ZeroCost] {
        let mut cfg = config(PolicyKind::ExtLard, 2);
        cfg.mechanism = mech;
        let err = match Cluster::start(cfg, &trace) {
            Err(e) => e,
            Ok(cluster) => {
                cluster.shutdown();
                panic!("{mech} must be refused as simulator-only");
            }
        };
        assert_eq!(err, phttp_proto::ConfigError::UnsupportedMechanism(mech));
    }
}

#[test]
fn oversized_corpus_document_is_a_config_error() {
    // A document past the HTTP parsers' MAX_BODY bound would be served
    // but never parsed by the cluster's own clients or lateral fetches;
    // Cluster::start must refuse it up front.
    let size = phttp_http::MAX_BODY as u64 + 1;
    let trace = phttp_trace::Trace::new(Vec::new(), vec![1024, size]);
    let err = match Cluster::start(config(PolicyKind::Wrr, 2), &trace) {
        Err(e) => e,
        Ok(cluster) => {
            cluster.shutdown();
            panic!("oversized corpus must be refused");
        }
    };
    assert_eq!(
        err,
        phttp_proto::ConfigError::TargetExceedsBodyLimit { size }
    );
}

#[test]
fn shutdown_is_clean_with_no_traffic() {
    let trace = tiny_trace();
    let cluster = Cluster::start(config(PolicyKind::Wrr, 2), &trace).expect("start cluster");
    cluster.shutdown();
}

#[test]
fn multiple_handoff_migrates_and_serves_correctly() {
    use phttp_core::Mechanism;
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    let mut cfg = config(PolicyKind::ExtLard, 3);
    cfg.mechanism = Mechanism::MultipleHandoff;
    // Busy disks push the policy toward moving requests.
    cfg.disk = DiskEmu {
        seek: Duration::from_millis(2),
        bytes_per_sec: 40.0 * 1024.0 * 1024.0,
    };
    cfg.cache_bytes = 512 * 1024;
    let cluster = Cluster::start(cfg, &trace).expect("start cluster");
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 12,
            protocol: ClientProtocol::PHttp,
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.errors, 0);
    assert_eq!(report.requests as usize, trace.len());
    let stats = cluster.node_stats();
    let migrations: u64 = stats.iter().map(|s| s.migrations_in).sum();
    let laterals: u64 = stats.iter().map(|s| s.lateral_out).sum();
    assert!(migrations > 0, "multiple handoff never migrated");
    assert_eq!(laterals, 0, "migration mechanism must not fetch laterally");
    // Policy state fully unwound despite mid-connection re-homing.
    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "connections leaked"
    );
    assert_eq!(cluster.frontend().active_connections(), 0);
    cluster.shutdown();
}
