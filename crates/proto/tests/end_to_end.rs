//! End-to-end tests of the live loopback cluster: byte-exact responses,
//! policy-visible distribution behaviour, and clean shutdown — run over
//! **both** front-end I/O models (thread-per-connection workers and the
//! event-driven reactor), which must be observably interchangeable.
//!
//! `PHTTP_IO_MODEL=threads|reactor` restricts the matrix to one model
//! (CI runs the suite once per model); unset, every test covers both.
//! `PHTTP_REACTOR_SHARDS=N` sets the reactor's shard count (CI adds a
//! 2-shard leg; the default is 1). `PHTTP_COALESCE=1` turns on
//! single-flight miss coalescing (CI adds a coalescing leg per model;
//! response bytes must be identical either way, so the whole suite
//! doubles as its regression net). `PHTTP_FRONT_ENDS=N` runs every
//! cluster as an N-front-end tier behind the VIP (CI adds an `N=2`
//! leg; responses are a pure function of target and HTTP version, so
//! bytes must again be identical whichever front-end admits each
//! connection).

use std::time::Duration;

use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_trace::{generate, http10_connections, reconstruct, SessionConfig, SynthConfig};

fn tiny_trace() -> phttp_trace::Trace {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 150;
    synth.num_pages = 60;
    generate(&synth)
}

fn fast_disk() -> DiskEmu {
    DiskEmu {
        seek: Duration::from_micros(300),
        bytes_per_sec: 200.0 * 1024.0 * 1024.0,
    }
}

/// The I/O models this run covers (see module docs).
fn io_models() -> Vec<IoModel> {
    match std::env::var("PHTTP_IO_MODEL").as_deref() {
        Ok("threads") => vec![IoModel::Threads],
        Ok("reactor") => vec![IoModel::Reactor],
        _ => vec![IoModel::Threads, IoModel::Reactor],
    }
}

/// Reactor shard count for this run (`PHTTP_REACTOR_SHARDS`; the
/// thread model always runs shardless).
fn reactor_shards(io_model: IoModel) -> usize {
    match io_model {
        IoModel::Threads => 1,
        IoModel::Reactor => std::env::var("PHTTP_REACTOR_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
    }
}

/// Whether this run coalesces misses (`PHTTP_COALESCE=1`; default off,
/// matching `ProtoConfig::default`).
fn coalesce() -> bool {
    std::env::var("PHTTP_COALESCE").as_deref() == Ok("1")
}

/// Front-end tier size for this run (`PHTTP_FRONT_ENDS=N`; CI adds an
/// `N=2` leg per io model so the whole suite also regresses the VIP
/// admission, gossip, and per-front-end dispatch paths; the default of
/// 1 is the tierless single-front-end cluster).
fn front_ends() -> usize {
    std::env::var("PHTTP_FRONT_ENDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn config(policy: PolicyKind, nodes: usize, io_model: IoModel) -> ProtoConfig {
    ProtoConfig {
        nodes,
        policy,
        cache_bytes: 1024 * 1024,
        disk: fast_disk(),
        read_timeout: Duration::from_secs(5),
        io_model,
        reactor_shards: reactor_shards(io_model),
        coalesce_misses: coalesce(),
        front_ends: front_ends(),
        ..ProtoConfig::default()
    }
}

#[test]
fn phttp_serves_every_request_byte_exact() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let cluster =
            Cluster::start(config(PolicyKind::ExtLard, 3, io), &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 8,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}: verification failures");
        assert_eq!(report.requests as usize, trace.len(), "{io:?}");
        assert_eq!(
            report.connections as usize,
            workload.connections.len(),
            "{io:?}"
        );
        // The cluster served everything the clients received. A lateral fetch
        // that times out under load falls back to local service, which can
        // legitimately count a request twice — allow a whisker of slack.
        let served: u64 = cluster.node_stats().iter().map(|s| s.served).sum();
        assert!(served >= trace.len() as u64, "{io:?}");
        assert!(served <= trace.len() as u64 + 8, "{io:?}: served={served}");
        // All policy connection state was torn down (handlers observe the
        // clients' EOFs asynchronously, so wait for quiescence first).
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: connections leaked"
        );
        assert_eq!(cluster.frontend().active_connections(), 0, "{io:?}");
        cluster.shutdown();
    }
}

#[test]
fn http10_mode_works_on_every_policy() {
    let trace = tiny_trace();
    let workload = http10_connections(&trace);
    for io in io_models() {
        for policy in [PolicyKind::Wrr, PolicyKind::Lard] {
            let cluster = Cluster::start(config(policy, 2, io), &trace).expect("start cluster");
            let report = run_load(
                cluster.frontend_addrs(),
                cluster.store(),
                &workload,
                &LoadConfig {
                    clients: 8,
                    protocol: ClientProtocol::Http10,
                    ..LoadConfig::default()
                },
            );
            assert_eq!(report.errors, 0, "{io:?}/{policy:?}");
            assert_eq!(report.requests as usize, trace.len(), "{io:?}/{policy:?}");
            cluster.shutdown();
        }
    }
}

#[test]
fn wrr_spreads_but_lard_concentrates_targets() {
    let trace = tiny_trace();
    let workload = http10_connections(&trace);

    for io in io_models() {
        // WRR: every node should see a similar number of requests.
        let cluster =
            Cluster::start(config(PolicyKind::Wrr, 3, io), &trace).expect("start cluster");
        let _ = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 6,
                protocol: ClientProtocol::Http10,
                ..LoadConfig::default()
            },
        );
        let wrr_stats = cluster.node_stats();
        cluster.shutdown();
        let served: Vec<u64> = wrr_stats.iter().map(|s| s.served).collect();
        let max = *served.iter().max().unwrap() as f64;
        let min = *served.iter().min().unwrap() as f64;
        assert!(
            min / max > 0.5,
            "{io:?}: WRR petered out unevenly: {served:?}"
        );

        // LARD: better aggregate hit rate than WRR on the same workload (cache
        // aggregation), since per-node caches are much smaller than the corpus.
        let cluster =
            Cluster::start(config(PolicyKind::Lard, 3, io), &trace).expect("start cluster");
        let _ = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 6,
                protocol: ClientProtocol::Http10,
                ..LoadConfig::default()
            },
        );
        let lard_stats = cluster.node_stats();
        cluster.shutdown();
        let hit = |st: &[phttp_proto::NodeStatsSnapshot]| {
            let h: u64 = st.iter().map(|s| s.hits).sum();
            let r: u64 = st.iter().map(|s| s.served).sum();
            h as f64 / r as f64
        };
        assert!(
            hit(&lard_stats) > hit(&wrr_stats),
            "{io:?}: LARD hit rate {:.3} must beat WRR {:.3}",
            hit(&lard_stats),
            hit(&wrr_stats)
        );
    }
}

#[test]
fn ext_lard_uses_lateral_fetches_under_pressure() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        // Slow disk so queues build and the policy prefers forwarding.
        let mut cfg = config(PolicyKind::ExtLard, 3, io);
        cfg.disk = DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 40.0 * 1024.0 * 1024.0,
        };
        cfg.cache_bytes = 512 * 1024;
        let cluster = Cluster::start(cfg, &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 12,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}");
        let stats = cluster.node_stats();
        let lateral: u64 = stats.iter().map(|s| s.lateral_out).sum();
        let lateral_in: u64 = stats.iter().map(|s| s.lateral_in).sum();
        assert!(lateral > 0, "{io:?}: extended LARD never forwarded");
        // Every lateral fetch that reached a peer has a server side; the
        // few that fail (e.g. a pooled stream the peer timed out) degrade
        // to local service instead.
        assert!(
            lateral >= lateral_in,
            "{io:?}: peers served fetches nobody issued"
        );
        assert!(
            lateral_in + 8 >= lateral,
            "{io:?}: too many fetches fell back locally: out={lateral} in={lateral_in}"
        );
        cluster.shutdown();
    }
}

#[test]
fn single_node_cluster_works() {
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let cluster =
            Cluster::start(config(PolicyKind::ExtLard, 1, io), &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 4,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}");
        let stats = cluster.node_stats();
        assert_eq!(
            stats[0].lateral_out, 0,
            "{io:?}: nowhere to forward with one node"
        );
        cluster.shutdown();
    }
}

#[test]
fn unknown_uri_gets_404_without_breaking_connection() {
    use std::io::{Read, Write};
    let trace = tiny_trace();
    for io in io_models() {
        let cluster =
            Cluster::start(config(PolicyKind::ExtLard, 2, io), &trace).expect("start cluster");
        let mut stream = std::net::TcpStream::connect(cluster.frontend_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // A valid first request (handoff needs a real target), then a bogus one.
        stream.write_all(b"GET /t/0 HTTP/1.1\r\n\r\n").unwrap();
        let mut parser = phttp_http::ResponseParser::new();
        let mut buf = [0u8; 8192];
        let mut responses = Vec::new();
        while responses.is_empty() {
            let n = stream.read(&mut buf).unwrap();
            parser.feed(&buf[..n]);
            while let Some(r) = parser.next().unwrap() {
                responses.push(r.status);
            }
        }
        stream
            .write_all(b"GET /no/such/thing HTTP/1.1\r\n\r\nGET /t/1 HTTP/1.1\r\n\r\n")
            .unwrap();
        while responses.len() < 3 {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "{io:?}: server closed early");
            parser.feed(&buf[..n]);
            while let Some(r) = parser.next().unwrap() {
                responses.push(r.status);
            }
        }
        assert_eq!(responses, vec![200, 404, 200], "{io:?}");
        cluster.shutdown();
    }
}

/// A client may legitimately half-close (shutdown its write side) right
/// after its last pipelined request, so the FIN arrives in the same
/// readiness window as the request bytes. Both io models must serve
/// everything received before the EOF — the reactor must not let the
/// EOF flag suppress requests its parser already holds.
#[test]
fn half_close_after_last_request_is_still_served() {
    use std::io::{Read, Write};
    let trace = tiny_trace();
    for io in io_models() {
        let cluster =
            Cluster::start(config(PolicyKind::ExtLard, 2, io), &trace).expect("start cluster");
        let mut stream = std::net::TcpStream::connect(cluster.frontend_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"GET /t/0 HTTP/1.1\r\n\r\nGET /t/1 HTTP/1.1\r\n\r\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut parser = phttp_http::ResponseParser::new();
        let mut buf = [0u8; 32 * 1024];
        let mut statuses = Vec::new();
        loop {
            while let Some(r) = parser.next().unwrap() {
                statuses.push(r.status);
            }
            if statuses.len() >= 2 {
                break;
            }
            let n = stream
                .read(&mut buf)
                .unwrap_or_else(|e| panic!("{io:?}: read after half-close failed: {e}"));
            assert!(
                n > 0,
                "{io:?}: server closed after {} of 2 responses",
                statuses.len()
            );
            parser.feed(&buf[..n]);
        }
        assert_eq!(statuses, vec![200, 200], "{io:?}");
        // Having served everything, the server closes its side too.
        let n = stream.read(&mut buf).unwrap();
        assert_eq!(n, 0, "{io:?}: server kept a half-closed connection open");
        cluster.shutdown();
    }
}

/// A client that pipelines hundreds of requests before reading a single
/// response. The reactor must backpressure (pause reading once the
/// unanswered pipeline or staged bytes hit their bounds) instead of
/// buffering every response, and still serve the whole pipeline
/// correctly once the client starts draining; the thread model gets the
/// same bound from its blocking per-response write.
#[test]
fn pipelining_without_reading_is_backpressured_not_unbounded() {
    use std::io::{Read, Write};
    // Small fixed corpus of 16 KiB documents: 600 responses ≈ 9.4 MiB,
    // far beyond what kernel socket buffers can absorb, so the server
    // must actually pause mid-pipeline.
    const DOC: usize = 16 * 1024;
    const N: usize = 600;
    let trace = phttp_trace::Trace::new(Vec::new(), vec![DOC as u64; 4]);
    for io in io_models() {
        let cluster =
            Cluster::start(config(PolicyKind::ExtLard, 2, io), &trace).expect("start cluster");
        let mut stream = std::net::TcpStream::connect(cluster.frontend_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        // Writer thread: floods the pipeline without reading; it blocks
        // once the server backpressures and resumes as we drain below.
        let flood = std::thread::spawn(move || {
            // Padded requests so the pipeline spans many socket reads.
            let req = format!("GET /t/1 HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "p".repeat(160));
            for _ in 0..N {
                writer.write_all(req.as_bytes()).unwrap();
            }
        });
        let mut parser = phttp_http::ResponseParser::new();
        let mut buf = [0u8; 32 * 1024];
        let mut got = 0;
        while got < N {
            if let Some(resp) = parser.next().unwrap() {
                assert_eq!(resp.status, 200, "{io:?}");
                assert_eq!(resp.body.len(), DOC, "{io:?}");
                got += 1;
                continue;
            }
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "{io:?}: server closed after {got}/{N} responses");
            parser.feed(&buf[..n]);
        }
        flood.join().unwrap();
        drop(stream);
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: connection leaked"
        );
        cluster.shutdown();
    }
}

#[test]
fn simulator_only_mechanism_is_a_config_error_not_a_panic() {
    use phttp_core::Mechanism;
    let trace = tiny_trace();
    for mech in [Mechanism::RelayingFrontend, Mechanism::ZeroCost] {
        let mut cfg = config(PolicyKind::ExtLard, 2, IoModel::Threads);
        cfg.mechanism = mech;
        let err = match Cluster::start(cfg, &trace) {
            Err(e) => e,
            Ok(cluster) => {
                cluster.shutdown();
                panic!("{mech} must be refused as simulator-only");
            }
        };
        assert_eq!(err, phttp_proto::ConfigError::UnsupportedMechanism(mech));
    }
}

/// The PR 2 pattern extended to the sharding knobs: misconfigurations
/// must surface as `ConfigError`s from `Cluster::start`, not panics or
/// silent misbehaviour.
#[test]
fn bad_shard_and_pool_configs_are_errors() {
    use phttp_proto::ConfigError;
    let trace = tiny_trace();
    let check = |mutate: &dyn Fn(&mut ProtoConfig), want: ConfigError| {
        let mut cfg = config(PolicyKind::ExtLard, 2, IoModel::Reactor);
        mutate(&mut cfg);
        match Cluster::start(cfg, &trace) {
            Err(e) => assert_eq!(e, want),
            Ok(cluster) => {
                cluster.shutdown();
                panic!("{want:?} must be refused");
            }
        }
    };
    // A reactor with zero event loops can serve nothing.
    check(&|c| c.reactor_shards = 0, ConfigError::ZeroReactorShards);
    // Shards belong to the reactor; the thread model has none to offer.
    check(
        &|c| {
            c.io_model = IoModel::Threads;
            c.reactor_shards = 4;
        },
        ConfigError::ReactorShardsWithoutReactor { shards: 4 },
    );
    // A zero-capacity peer pool silently degrades every lateral fetch
    // to a fresh dial; refuse it up front (both io models).
    for io in [IoModel::Threads, IoModel::Reactor] {
        check(
            &|c| {
                c.io_model = io;
                c.reactor_shards = 1;
                c.peer_pool_cap = 0;
            },
            ConfigError::ZeroPeerPoolCap,
        );
    }
    // The error messages are self-describing.
    assert!(ConfigError::ZeroReactorShards
        .to_string()
        .contains("at least 1"));
    assert!(ConfigError::ReactorShardsWithoutReactor { shards: 4 }
        .to_string()
        .contains("IoModel::Reactor"));
    assert!(ConfigError::ZeroPeerPoolCap
        .to_string()
        .contains("peer_pool_cap"));
}

#[test]
fn oversized_corpus_document_is_a_config_error() {
    // A document past the HTTP parsers' MAX_BODY bound would be served
    // but never parsed by the cluster's own clients or lateral fetches;
    // Cluster::start must refuse it up front.
    let size = phttp_http::MAX_BODY as u64 + 1;
    let trace = phttp_trace::Trace::new(Vec::new(), vec![1024, size]);
    let err = match Cluster::start(config(PolicyKind::Wrr, 2, IoModel::Threads), &trace) {
        Err(e) => e,
        Ok(cluster) => {
            cluster.shutdown();
            panic!("oversized corpus must be refused");
        }
    };
    assert_eq!(
        err,
        phttp_proto::ConfigError::TargetExceedsBodyLimit { size }
    );
}

#[test]
fn shutdown_is_clean_with_no_traffic() {
    let trace = tiny_trace();
    for io in io_models() {
        let cluster =
            Cluster::start(config(PolicyKind::Wrr, 2, io), &trace).expect("start cluster");
        cluster.shutdown();
    }
}

/// The PR 1 teardown-race scenario, extended to `Reactor` mode: a client
/// connection is still **open** (no EOF, no timeout) when the cluster
/// shuts down. The reactor must not wait for the socket — shutdown wakes
/// the poller, drains every registered connection, and unwinds its
/// dispatcher state before the loop thread exits.
///
/// Reactor-only: the thread model's shutdown semantics are to let each
/// worker finish its current connection, which for a held-open socket
/// means waiting out the read timeout — precisely the behaviour the
/// event loop is not allowed to share.
#[test]
fn shutdown_drains_open_connections() {
    use std::io::{Read, Write};
    let trace = tiny_trace();
    for io in io_models() {
        if io != IoModel::Reactor {
            continue;
        }
        let mut cfg = config(PolicyKind::ExtLard, 2, io);
        // A long read timeout: if shutdown waited for it, this test would
        // blow the suite's time budget rather than pass by accident.
        cfg.read_timeout = Duration::from_secs(300);
        let cluster = Cluster::start(cfg, &trace).expect("start cluster");
        let fe = cluster.frontend_shared();

        // One served request on a connection we then hold open.
        let mut stream = std::net::TcpStream::connect(cluster.frontend_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"GET /t/0 HTTP/1.1\r\n\r\n").unwrap();
        let mut parser = phttp_http::ResponseParser::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "{io:?}: server closed before responding");
            parser.feed(&buf[..n]);
            if parser.next().unwrap().is_some() {
                break;
            }
        }
        assert_eq!(fe.active_connections(), 1, "{io:?}");

        let start = std::time::Instant::now();
        cluster.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "{io:?}: shutdown waited on an open connection"
        );
        assert_eq!(
            fe.active_connections(),
            0,
            "{io:?}: shutdown leaked dispatcher connection state"
        );
        drop(stream);
    }
}

#[test]
fn multiple_handoff_migrates_and_serves_correctly() {
    use phttp_core::Mechanism;
    let trace = tiny_trace();
    let workload = reconstruct(&trace, SessionConfig::default());
    for io in io_models() {
        let mut cfg = config(PolicyKind::ExtLard, 3, io);
        cfg.mechanism = Mechanism::MultipleHandoff;
        // Busy disks push the policy toward moving requests.
        cfg.disk = DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 40.0 * 1024.0 * 1024.0,
        };
        cfg.cache_bytes = 512 * 1024;
        let cluster = Cluster::start(cfg, &trace).expect("start cluster");
        let report = run_load(
            cluster.frontend_addrs(),
            cluster.store(),
            &workload,
            &LoadConfig {
                clients: 12,
                protocol: ClientProtocol::PHttp,
                ..LoadConfig::default()
            },
        );
        assert_eq!(report.errors, 0, "{io:?}");
        assert_eq!(report.requests as usize, trace.len(), "{io:?}");
        let stats = cluster.node_stats();
        let migrations: u64 = stats.iter().map(|s| s.migrations_in).sum();
        let laterals: u64 = stats.iter().map(|s| s.lateral_out).sum();
        assert!(migrations > 0, "{io:?}: multiple handoff never migrated");
        assert_eq!(
            laterals, 0,
            "{io:?}: migration mechanism must not fetch laterally"
        );
        // Policy state fully unwound despite mid-connection re-homing.
        assert!(
            cluster.quiesce(Duration::from_secs(10)),
            "{io:?}: connections leaked"
        );
        assert_eq!(cluster.frontend().active_connections(), 0, "{io:?}");
        cluster.shutdown();
    }
}
