//! Refcount hygiene: after a reactor soak under concurrent large-body
//! load — including a chaos kill/rejoin round that aborts lateral
//! streams mid-flight — every cached body slice's strong count returns
//! to **exactly 1** (the cache as sole owner).
//!
//! This is the leak detector for the zero-copy data path. Every serve
//! clones the cached `Bytes` handle into a staging queue; peer-serving
//! pipelines clone it again; aborted splices and killed connections
//! drop theirs on teardown. A single forgotten clone — a staging entry
//! that survives its connection, a peer session that parks a chunk, a
//! flight table that keeps a fallback body — shows up here as a strong
//! count stuck above 1 on an idle node. The gauge check rides along:
//! `pending_body_bytes` must be observably nonzero *during* the soak
//! (multi-MiB bodies against HIGH_WATER guarantee staging backlog) and
//! exactly zero after it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, DiskEmu, IoModel, LoadConfig, ProtoConfig};
use phttp_simcore::SimTime;
use phttp_trace::{reconstruct, ClientId, SessionConfig, TargetId, Trace};

const MIB: u64 = 1024 * 1024;

/// Large-body workload: bodies up to 2 MiB so staged slices are meaty
/// and lateral fetches stream in many chunks.
fn workload() -> (Trace, phttp_trace::ConnectionTrace) {
    let sizes = vec![2 * MIB, MIB, 768 * 1024, 512 * 1024, 128 * 1024, 4096];
    let mut requests = Vec::new();
    for c in 0..8u32 {
        for k in 0..6u64 {
            requests.push(phttp_trace::Request {
                time: SimTime::from_millis(c as u64 * 11 + k * 100),
                client: ClientId(c),
                target: TargetId(((c as u64 + k * 5) % sizes.len() as u64) as u32),
            });
        }
    }
    let trace = Trace::new(requests, sizes);
    let conns = reconstruct(&trace, SessionConfig::default());
    (trace, conns)
}

#[test]
fn cached_slices_return_to_refcount_one_after_soak_and_churn() {
    let (trace, conns) = workload();
    let cluster = Cluster::start(
        ProtoConfig {
            nodes: 3,
            policy: PolicyKind::ExtLard,
            cache_bytes: 4 * MIB,
            disk: DiskEmu {
                seek: Duration::from_micros(500),
                bytes_per_sec: 300.0 * MIB as f64,
            },
            coalesce_misses: true,
            cache_feedback: true,
            feedback_interval: Duration::from_millis(10),
            health_tick_interval: Duration::from_millis(10),
            read_timeout: Duration::from_secs(5),
            io_model: IoModel::Reactor,
            reactor_shards: 2,
            ..ProtoConfig::default()
        },
        &trace,
    )
    .expect("start cluster");
    let stats = cluster.reactor_stats().expect("reactor mode");

    // Soak: continuous verifying load while the gauge watcher samples
    // and the churn schedule kills and rejoins nodes under it.
    let stop = AtomicBool::new(false);
    let errors = AtomicUsize::new(0);
    let gauge_peak = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                let report = run_load(
                    cluster.frontend_addrs(),
                    cluster.store(),
                    &conns,
                    &LoadConfig {
                        clients: 8,
                        protocol: ClientProtocol::PHttp,
                        ..LoadConfig::default()
                    },
                );
                errors.fetch_add(report.errors as usize, Ordering::Relaxed);
            }
        });
        scope.spawn(|| {
            // Sample the staging gauge while load runs: multi-MiB
            // bodies queued against HIGH_WATER must make it visibly
            // nonzero at some instant.
            while !stop.load(Ordering::Relaxed) {
                gauge_peak.fetch_max(stats.pending_body_bytes(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
            }
        });

        // Chaos round: kill a node mid-stream (aborting its in-flight
        // lateral splices), let the load observe the gap, rejoin; then
        // once more with a cold replacement.
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            cluster.kill_node(1),
            "kill of node 1 never tripped breakers"
        );
        std::thread::sleep(Duration::from_millis(150));
        assert!(cluster.rejoin_node_warm(1), "warm rejoin failed");
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            cluster.kill_node(2),
            "kill of node 2 never tripped breakers"
        );
        std::thread::sleep(Duration::from_millis(150));
        assert!(cluster.rejoin_node_cold(2), "cold rejoin failed");
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "soak saw transport errors or corrupt bodies"
    );
    assert!(
        gauge_peak.load(Ordering::Relaxed) > 0,
        "pending_body_bytes never rose during a multi-MiB soak — the gauge is dead"
    );

    assert!(
        cluster.quiesce(Duration::from_secs(15)),
        "connections leaked after soak"
    );

    // The audit. Write-out queues, peer pipelines, and flight tables all
    // drop their clones on teardown, but teardown lags the last client
    // close (aborted peer streams unwind on their own error path), so
    // poll to the fixed point before judging.
    let nodes = cluster.frontend().nodes().to_vec();
    let deadline = Instant::now() + Duration::from_secs(10);
    let leaked = loop {
        let leaked: Vec<(usize, TargetId, usize)> = nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| {
                n.cached_body_refcounts()
                    .into_iter()
                    .filter(|&(_, c)| c != 1)
                    .map(move |(t, c)| (i, t, c))
            })
            .collect();
        if leaked.is_empty() || Instant::now() >= deadline {
            break leaked;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        leaked.is_empty(),
        "cached body slices leaked handles (node, target, strong_count): {leaked:?}"
    );
    // Not vacuous: the soak left real entries behind to audit.
    let cached: usize = nodes.iter().map(|n| n.cached_body_refcounts().len()).sum();
    assert!(
        cached > 0,
        "no cached bodies survived the soak — audit saw nothing"
    );
    assert_eq!(
        stats.pending_body_bytes(),
        0,
        "staging gauge nonzero on an idle cluster"
    );
    cluster.shutdown();
}
