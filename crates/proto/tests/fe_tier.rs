//! Differential tests of the front-end tier: a cluster with
//! `front_ends ∈ {1, 2}` — in **both** I/O models — must be observably
//! the same server as the single-front-end threads oracle.
//!
//! Response bytes are a pure function of `(target, HTTP version)`
//! regardless of which front-end admits a connection or which node
//! serves a request, so per-connection transcripts must stay
//! **byte-identical** however the VIP routes. Byte-identity alone
//! cannot see the tier, though — a Vip that admitted nothing would
//! pass — so the `front_ends = 2` legs additionally assert the
//! admission handshakes actually ran (`handoffs > 0`) and that both
//! front-ends took connections.
//!
//! The kill test decommissions one front-end **while its connections
//! are in flight**: its consistent-hash partition must be re-owned by
//! the survivor, new connections must route around it, and every
//! in-flight request must still complete byte-exact — the tier's
//! failover contract.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::time::Duration;

use bytes::BytesMut;
use phttp_core::{FeId, Mechanism, PolicyKind};
use phttp_http::{Request, ResponseParser, Version};
use phttp_proto::{Cluster, ContentStore, DiskEmu, IoModel, ProtoConfig};
use phttp_trace::{generate, reconstruct, ConnectionTrace, SessionConfig, SynthConfig, TargetId};

fn workload() -> (phttp_trace::Trace, ConnectionTrace) {
    let mut synth = SynthConfig::small();
    synth.num_page_views = 120;
    synth.num_pages = 50;
    let trace = generate(&synth);
    let conns = reconstruct(&trace, SessionConfig::default());
    (trace, conns)
}

fn config(io_model: IoModel, front_ends: usize) -> ProtoConfig {
    ProtoConfig {
        nodes: 3,
        policy: PolicyKind::ExtLard,
        mechanism: Mechanism::BackendForwarding,
        // Same queue-building recipe as the reactor-equivalence matrix,
        // so the remote serving paths run under every tier size.
        cache_bytes: 512 * 1024,
        disk: DiskEmu {
            seek: Duration::from_millis(2),
            bytes_per_sec: 40.0 * 1024.0 * 1024.0,
        },
        read_timeout: Duration::from_secs(5),
        io_model,
        front_ends,
        gossip_interval: Duration::from_millis(1),
        ..ProtoConfig::default()
    }
}

/// Plays one trace connection and returns the re-encoded wire bytes of
/// each of its responses, in request order.
fn play_one(addr: SocketAddr, conn: &phttp_trace::Connection) -> Vec<Vec<u8>> {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut parser = ResponseParser::new();
    let mut responses = Vec::with_capacity(conn.num_requests());
    for batch in &conn.batches {
        let mut wire = BytesMut::new();
        for &target in &batch.targets {
            Request::get(ContentStore::uri(target), Version::Http11).encode(&mut wire);
        }
        stream.write_all(&wire).unwrap();
        let mut got = 0;
        let mut buf = [0u8; 32 * 1024];
        while got < batch.targets.len() {
            if let Some(resp) = parser.next().expect("parse response") {
                responses.push(resp.to_bytes().to_vec());
                got += 1;
                continue;
            }
            let n = stream.read(&mut buf).expect("read response");
            assert!(n > 0, "server closed mid-connection");
            parser.feed(&buf[..n]);
        }
    }
    responses
}

/// Plays every connection of the workload (8 in flight at once so
/// disk queues build and the VIP's round robin interleaves admissions)
/// and returns each connection's transcript, indexed by connection
/// order.
fn play_capture(addrs: &[SocketAddr], workload: &ConnectionTrace) -> Vec<Vec<Vec<u8>>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let transcript: Vec<parking_lot::Mutex<Vec<Vec<u8>>>> = workload
        .connections
        .iter()
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = workload.connections.get(i) else {
                    break;
                };
                *transcript[i].lock() = play_one(addrs[i % addrs.len()], conn);
            });
        }
    });
    transcript.into_iter().map(|m| m.into_inner()).collect()
}

fn run_tier(io_model: IoModel, front_ends: usize) -> Vec<Vec<Vec<u8>>> {
    let (trace, conns) = workload();
    let cluster = Cluster::start(config(io_model, front_ends), &trace).expect("start cluster");
    let transcript = play_capture(cluster.frontend_addrs(), &conns);
    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "{io_model:?}/{front_ends} FEs: connections leaked"
    );
    // Every front-end's dispatcher unwound its share to exactly zero.
    for (i, fe) in cluster.front_ends().iter().enumerate() {
        assert_eq!(
            fe.active_connections(),
            0,
            "{io_model:?}/{front_ends} FEs: fe {i}"
        );
        assert!(
            fe.loads().iter().all(|&l| l.abs() < 1e-12),
            "{io_model:?}/{front_ends} FEs: fe {i} residual load {:?}",
            fe.loads()
        );
    }
    if front_ends > 1 {
        let vip = cluster.vip().expect("tier cluster has a vip");
        // The tier must have actually run: real admission handshakes
        // over the control sessions, spread across both front-ends by
        // the round robin (conn_count >> front_ends, so each gets some).
        assert!(vip.handoffs() > 0, "{io_model:?}: no admission ever ran");
        for f in 0..front_ends {
            assert!(
                vip.admitted(f) > 0,
                "{io_model:?}: front-end {f} never admitted a connection"
            );
        }
        // Every admitted connection's close notification came back:
        // the forwarding table is empty again.
        assert_eq!(vip.tracked(), 0, "{io_model:?}: tier routes leaked");
    }
    cluster.shutdown();
    transcript
}

/// The tier legs every differential run covers: the tierless baseline
/// and a 2-front-end tier, per I/O model.
const TIER_MATRIX: [usize; 2] = [1, 2];

/// `front_ends ∈ {1, 2}` × both I/O models, all byte-identical to the
/// single-front-end threads oracle.
#[test]
fn tier_matrix_matches_single_frontend_oracle() {
    let (trace, _) = workload();
    let oracle = run_tier(IoModel::Threads, 1);
    let responses: usize = oracle.iter().map(|c| c.len()).sum();
    assert_eq!(responses, trace.len(), "every request got a response");
    assert!(oracle
        .iter()
        .flatten()
        .all(|r| r.starts_with(b"HTTP/1.1 200 ") || r.starts_with(b"HTTP/1.0 200 ")));
    for io_model in [IoModel::Threads, IoModel::Reactor] {
        for front_ends in TIER_MATRIX {
            if io_model == IoModel::Threads && front_ends == 1 {
                continue; // that is the oracle itself
            }
            let tiered = run_tier(io_model, front_ends);
            assert_eq!(
                oracle, tiered,
                "transcripts diverge from the single-front-end oracle \
                 ({io_model:?}, {front_ends} front-ends)"
            );
        }
    }
}

/// Killing a front-end mid-traffic: its partition is re-owned, new
/// connections route around it, and no in-flight request is lost.
#[test]
fn kill_one_frontend_drains_without_loss() {
    let (trace, conns) = workload();
    let cluster = Cluster::start(config(IoModel::Threads, 2), &trace).expect("start cluster");
    let store = cluster.store().clone();
    let addrs: Vec<SocketAddr> = cluster.frontend_addrs().to_vec();

    // Drive the first half of the workload to get connections admitted
    // to BOTH front-ends and still in flight, then kill front-end 1
    // while the second half keeps arriving.
    let halfway = conns.connections.len() / 2;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let transcript: Vec<parking_lot::Mutex<Vec<Vec<u8>>>> = conns
        .connections
        .iter()
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    let mut killed = false;
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = conns.connections.get(i) else {
                    break;
                };
                *transcript[i].lock() = play_one(addrs[i % addrs.len()], conn);
            });
        }
        // Let the players get connections in flight on both front-ends,
        // then pull front-end 1 out from under them.
        while cursor.load(Ordering::Relaxed) < halfway {
            std::thread::sleep(Duration::from_millis(1));
        }
        killed = cluster.kill_frontend(1);
    });
    assert!(killed, "kill_frontend(1) must succeed on a live tier");

    let vip = cluster.vip().expect("tier cluster has a vip");
    assert_eq!(vip.fe_kills(), 1);
    assert!(!vip.is_alive(1));
    // The dead front-end's consistent-hash partition was re-owned in
    // full by the survivor — no target is left without an authority.
    for t in 0..store.len() {
        assert_eq!(
            vip.ring_owner(TargetId(t as u32)),
            FeId(0),
            "target {t} not re-owned after the kill"
        );
    }
    // Both front-ends admitted connections before the kill (the kill
    // would otherwise prove nothing about in-flight draining).
    assert!(vip.admitted(0) > 0 && vip.admitted(1) > 0);

    // No in-flight request was lost: every connection's transcript is
    // complete and byte-exact — responses are a pure function of
    // (target, version), so each can be checked against the store
    // directly, including every connection the dead front-end was
    // still draining when it was decommissioned.
    for (conn, got) in conns.connections.iter().zip(&transcript) {
        let got = got.lock();
        let want: Vec<Vec<u8>> = conn
            .batches
            .iter()
            .flat_map(|b| b.targets.iter())
            .map(|&t| {
                phttp_http::Response::ok(Version::Http11, store.body(t))
                    .to_bytes()
                    .to_vec()
            })
            .collect();
        assert_eq!(*got, want, "a request was lost or corrupted by the kill");
    }

    // New connections keep flowing, all admitted to the survivor.
    let before = vip.admitted(1);
    let (_, tail) = workload();
    let extra = play_capture(&addrs, &tail);
    assert_eq!(
        extra.iter().map(|c| c.len()).sum::<usize>(),
        trace.len(),
        "post-kill traffic must be served in full"
    );
    assert_eq!(
        vip.admitted(1),
        before,
        "the dead front-end must admit nothing after the kill"
    );

    assert!(
        cluster.quiesce(Duration::from_secs(10)),
        "post-kill: connections leaked"
    );
    for (i, fe) in cluster.front_ends().iter().enumerate() {
        assert_eq!(fe.active_connections(), 0, "fe {i}");
    }
    assert_eq!(vip.tracked(), 0, "tier routes leaked across the kill");
    cluster.shutdown();
}
