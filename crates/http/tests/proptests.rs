//! Property-based tests: encode/parse round-trips under arbitrary
//! fragmentation — the invariant the prototype's socket loops rely on.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

use phttp_http::{Request, RequestParser, Response, ResponseParser, Version};

fn arb_uri() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-z0-9_./-]{0,40}").unwrap()
}

fn arb_version() -> impl Strategy<Value = Version> {
    prop_oneof![Just(Version::Http10), Just(Version::Http11)]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        arb_uri(),
        arb_version(),
        proptest::collection::vec(("[A-Za-z-]{1,12}", "[ -~&&[^:]]{0,24}"), 0..5),
    )
        .prop_map(|(uri, version, headers)| {
            let mut r = Request::get(uri, version);
            for (k, v) in headers {
                r.headers.push(k, v.trim().to_owned());
            }
            r
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        arb_version(),
        proptest::collection::vec(any::<u8>(), 0..2048),
    )
        .prop_map(|(version, body)| Response::ok(version, Bytes::from(body)))
}

proptest! {
    /// Any encoded request parses back to itself, regardless of how the
    /// bytes are fragmented on the wire.
    #[test]
    fn request_roundtrip_under_fragmentation(req in arb_request(), cuts in proptest::collection::vec(1usize..64, 0..8)) {
        let wire = req.to_bytes();
        let mut p = RequestParser::new();
        let mut offset = 0;
        for cut in cuts {
            let end = (offset + cut).min(wire.len());
            p.feed(&wire[offset..end]);
            offset = end;
        }
        p.feed(&wire[offset..]);
        let parsed = p.next().unwrap().expect("complete request must parse");
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(parsed.uri, req.uri);
        prop_assert_eq!(parsed.version, req.version);
        // Compare the ordered header lists: per-name lookup is ambiguous
        // when the generator produces duplicate header names.
        let got: Vec<(&str, &str)> = parsed.headers.iter().collect();
        let want: Vec<(&str, &str)> = req.headers.iter().collect();
        prop_assert_eq!(got, want);
        prop_assert!(p.next().unwrap().is_none());
        prop_assert_eq!(p.buffered(), 0);
    }

    /// Pipelines of requests come back in order and complete.
    #[test]
    fn pipelined_requests_roundtrip(reqs in proptest::collection::vec(arb_request(), 1..8)) {
        let mut wire = BytesMut::new();
        for r in &reqs {
            r.encode(&mut wire);
        }
        let mut p = RequestParser::new();
        p.feed(&wire);
        let parsed = p.drain().unwrap();
        prop_assert_eq!(parsed.len(), reqs.len());
        for (a, b) in parsed.iter().zip(&reqs) {
            prop_assert_eq!(&a.uri, &b.uri);
        }
    }

    /// Responses round-trip including arbitrary binary bodies.
    #[test]
    fn response_roundtrip(resp in arb_response(), split in 0usize..64) {
        let wire = resp.to_bytes();
        let cut = split.min(wire.len());
        let mut p = ResponseParser::new();
        p.feed(&wire[..cut]);
        p.feed(&wire[cut..]);
        let parsed = p.next().unwrap().expect("complete response must parse");
        prop_assert_eq!(parsed, resp);
    }

    /// Tag then untag recovers the original URI for any path-shaped input.
    #[test]
    fn tag_untag_inverse(uri in arb_uri(), node in 0usize..16) {
        prop_assume!(uri.starts_with('/'));
        let mut r = Request::get(uri.clone(), Version::Http11);
        let seg = format!("be_{node}");
        r.tag(&seg);
        let (parsed_seg, rest) = Request::untag(&r.uri).expect("tagged uri must untag");
        prop_assert_eq!(parsed_seg, seg.as_str());
        prop_assert_eq!(rest, uri.as_str());
    }

    /// The parser never panics on arbitrary garbage — it errors or waits.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut p = RequestParser::new();
        p.feed(&data);
        let _ = p.next();
        let mut rp = ResponseParser::new();
        rp.feed(&data);
        let _ = rp.next();
    }
}
