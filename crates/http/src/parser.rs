//! Incremental HTTP parsers for streamed (and pipelined) input.
//!
//! Both parsers follow the same push model: [`RequestParser::feed`] bytes as
//! they arrive from the socket, then drain complete messages with `next()`.
//! Pipelined messages in a single read are returned one by one; partial
//! messages stay buffered until completed by a later feed. This is exactly
//! what the prototype's back-end needs to support HTTP/1.1 request
//! pipelining ("fully supported by the handoff protocol", paper §7.2).

use bytes::{Buf, Bytes, BytesMut};

use crate::message::{Headers, Request, Response, Version};

/// Why parsing failed. The connection should be dropped on any of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The start line was not of the expected shape.
    BadStartLine(String),
    /// A header line had no colon.
    BadHeader(String),
    /// The version token was not HTTP/1.x.
    BadVersion(String),
    /// `Content-Length` was present but unparseable.
    BadContentLength(String),
    /// Message head exceeded the size bound.
    HeadTooLarge,
    /// Advertised `Content-Length` exceeded [`MAX_BODY`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadStartLine(l) => write!(f, "malformed start line: {l:?}"),
            ParseError::BadHeader(l) => write!(f, "malformed header line: {l:?}"),
            ParseError::BadVersion(v) => write!(f, "unsupported HTTP version: {v:?}"),
            ParseError::BadContentLength(v) => write!(f, "bad Content-Length: {v:?}"),
            ParseError::HeadTooLarge => write!(f, "message head exceeds limit"),
            ParseError::BodyTooLarge(n) => {
                write!(f, "advertised body of {n} bytes exceeds limit")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Upper bound on head (start line + headers) size; DoS guard.
const MAX_HEAD: usize = 16 * 1024;

/// Upper bound on an advertised message body. Without it, a peer
/// declaring an absurd `Content-Length` makes the parser buffer
/// everything it sends while reporting "incomplete" forever — unbounded
/// memory pinned per connection. 64 MiB is far above the largest corpus
/// document (the synthetic trace clamps sizes to single-digit MiB) and
/// far below anything a hostile client should get to pin.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Finds `\r\n\r\n`; returns the index just past it.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Splits one header block (excluding the blank line) into lines.
fn parse_headers(block: &str) -> Result<Headers, ParseError> {
    let mut headers = Headers::new();
    for line in block.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadHeader(line.to_owned()))?;
        headers.push(name.trim(), value.trim());
    }
    Ok(headers)
}

fn content_length(headers: &Headers) -> Result<usize, ParseError> {
    match headers.get("Content-Length") {
        None => Ok(0),
        Some(v) => {
            // RFC 9110 §8.6: Content-Length is 1*DIGIT. `usize::parse`
            // alone is laxer than that (it accepts a leading `+`), so
            // reject anything that is not pure ASCII digits before
            // parsing; parse() then only fails on overflow.
            let digits = v.trim();
            if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::BadContentLength(v.to_owned()));
            }
            let n: usize = digits
                .parse()
                .map_err(|_| ParseError::BadContentLength(v.to_owned()))?;
            if n > MAX_BODY {
                return Err(ParseError::BodyTooLarge(n));
            }
            Ok(n)
        }
    }
}

/// Incremental request parser.
///
/// # Examples
///
/// ```
/// use phttp_http::RequestParser;
///
/// let mut p = RequestParser::new();
/// // Two pipelined requests arriving in one segment, plus a partial third.
/// p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HT");
/// assert_eq!(p.next().unwrap().unwrap().uri, "/a");
/// assert_eq!(p.next().unwrap().unwrap().uri, "/b");
/// assert!(p.next().unwrap().is_none()); // /c is incomplete
/// p.feed(b"TP/1.1\r\n\r\n");
/// assert_eq!(p.next().unwrap().unwrap().uri, "/c");
/// ```
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: BytesMut,
}

impl RequestParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to extract the next complete request.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    // Named like `Iterator::next` on purpose: same pull semantics, but
    // fallible and non-blocking, so the trait does not fit.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD {
                return Err(ParseError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD {
            return Err(ParseError::HeadTooLarge);
        }
        // Parse the head without consuming, in case the body is incomplete.
        let head = std::str::from_utf8(&self.buf[..head_end - 4])
            .map_err(|_| ParseError::BadStartLine("non-utf8 head".into()))?;
        let (start, rest) = head.split_once("\r\n").unwrap_or((head, ""));
        let mut parts = start.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| ParseError::BadStartLine(start.to_owned()))?
            .to_owned();
        let uri = parts
            .next()
            .ok_or_else(|| ParseError::BadStartLine(start.to_owned()))?
            .to_owned();
        let version_tok = parts.next().unwrap_or("HTTP/1.0");
        if parts.next().is_some() {
            return Err(ParseError::BadStartLine(start.to_owned()));
        }
        let version = Version::parse(version_tok)
            .ok_or_else(|| ParseError::BadVersion(version_tok.into()))?;
        let headers = parse_headers(rest)?;
        let body_len = content_length(&headers)?;
        if self.buf.len() < head_end + body_len {
            return Ok(None); // body incomplete
        }
        self.buf.advance(head_end);
        let body: Bytes = self.buf.split_to(body_len).freeze();
        Ok(Some(Request {
            method,
            uri,
            version,
            headers,
            body,
        }))
    }

    /// Drains every complete request currently buffered.
    pub fn drain(&mut self) -> Result<Vec<Request>, ParseError> {
        let mut out = Vec::new();
        while let Some(r) = self.next()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// A parsed response head whose body may still be in flight — the
/// streaming consumption mode ([`ResponseParser::next_head`] +
/// [`ResponseParser::take_body`]) used when the consumer forwards body
/// bytes as they arrive instead of waiting for the full message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHead {
    /// HTTP version from the status line.
    pub version: Version,
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Response headers.
    pub headers: Headers,
    /// Declared body length (`Content-Length`, 0 when absent).
    pub body_len: usize,
}

impl ResponseHead {
    /// Whether the sender intends to keep the connection open (same
    /// rule as [`Response::keep_alive`](crate::Response::keep_alive)).
    pub fn keep_alive(&self) -> bool {
        crate::message::keep_alive(self.version, &self.headers)
    }
}

/// Incremental response parser (client side).
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: BytesMut,
}

impl ResponseParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to extract the next complete response.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    // See `RequestParser::next` for the naming rationale.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Response>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD {
                return Err(ParseError::HeadTooLarge);
            }
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end - 4])
            .map_err(|_| ParseError::BadStartLine("non-utf8 head".into()))?;
        let (start, rest) = head.split_once("\r\n").unwrap_or((head, ""));
        let mut parts = start.splitn(3, ' ');
        let version_tok = parts
            .next()
            .ok_or_else(|| ParseError::BadStartLine(start.to_owned()))?;
        let version = Version::parse(version_tok)
            .ok_or_else(|| ParseError::BadVersion(version_tok.into()))?;
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseError::BadStartLine(start.to_owned()))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = parse_headers(rest)?;
        let body_len = content_length(&headers)?;
        if self.buf.len() < head_end + body_len {
            return Ok(None);
        }
        self.buf.advance(head_end);
        let body = self.buf.split_to(body_len).freeze();
        Ok(Some(Response {
            version,
            status,
            reason,
            headers,
            body,
        }))
    }

    /// Attempts to parse — and *consume* — the next response head without
    /// waiting for its body: the streaming mode. On `Some`, the head is
    /// gone from the buffer and the caller owns draining exactly
    /// [`body_len`](ResponseHead::body_len) body bytes via
    /// [`take_body`](Self::take_body) before parsing another head.
    /// Returns `Ok(None)` when the head is still incomplete.
    #[allow(clippy::should_implement_trait)]
    pub fn next_head(&mut self) -> Result<Option<ResponseHead>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD {
                return Err(ParseError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_end > MAX_HEAD {
            return Err(ParseError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_end - 4])
            .map_err(|_| ParseError::BadStartLine("non-utf8 head".into()))?;
        let (start, rest) = head.split_once("\r\n").unwrap_or((head, ""));
        let mut parts = start.splitn(3, ' ');
        let version_tok = parts
            .next()
            .ok_or_else(|| ParseError::BadStartLine(start.to_owned()))?;
        let version = Version::parse(version_tok)
            .ok_or_else(|| ParseError::BadVersion(version_tok.into()))?;
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseError::BadStartLine(start.to_owned()))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let headers = parse_headers(rest)?;
        let body_len = content_length(&headers)?;
        self.buf.advance(head_end);
        Ok(Some(ResponseHead {
            version,
            status,
            reason,
            headers,
            body_len,
        }))
    }

    /// Removes and returns up to `max` buffered bytes — the body-chunk
    /// reader paired with [`next_head`](Self::next_head). The caller is
    /// responsible for capping `max` at the head's remaining body length
    /// so pipelined next-response bytes are not consumed as body.
    pub fn take_body(&mut self, max: usize) -> Bytes {
        let n = max.min(self.buf.len());
        self.buf.split_to(n).freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let mut p = RequestParser::new();
        p.feed(b"GET /x.html HTTP/1.0\r\nHost: h\r\n\r\n");
        let r = p.next().unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.uri, "/x.html");
        assert_eq!(r.version, Version::Http10);
        assert_eq!(r.headers.get("host"), Some("h"));
        assert!(p.next().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn byte_by_byte_feeding() {
        let wire = b"GET /slow HTTP/1.1\r\nA: b\r\n\r\n";
        let mut p = RequestParser::new();
        for (i, &b) in wire.iter().enumerate() {
            p.feed(&[b]);
            let r = p.next().unwrap();
            if i + 1 < wire.len() {
                assert!(r.is_none(), "complete too early at byte {i}");
            } else {
                assert_eq!(r.unwrap().uri, "/slow");
            }
        }
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = RequestParser::new();
        p.feed(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\nGET /3 HTTP/1.1\r\n\r\n");
        let reqs = p.drain().unwrap();
        let uris: Vec<&str> = reqs.iter().map(|r| r.uri.as_str()).collect();
        assert_eq!(uris, vec!["/1", "/2", "/3"]);
    }

    #[test]
    fn request_with_body() {
        let mut p = RequestParser::new();
        p.feed(b"POST /f HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
        assert!(p.next().unwrap().is_none()); // body incomplete
        p.feed(b"lo");
        let r = p.next().unwrap().unwrap();
        assert_eq!(&r.body[..], b"hello");
    }

    #[test]
    fn malformed_inputs_error() {
        let mut p = RequestParser::new();
        p.feed(b"NONSENSE\r\n\r\n");
        assert!(matches!(p.next(), Err(ParseError::BadStartLine(_))));

        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/9.9\r\n\r\n");
        assert!(matches!(p.next(), Err(ParseError::BadVersion(_))));

        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
        assert!(matches!(p.next(), Err(ParseError::BadHeader(_))));

        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
        assert!(matches!(p.next(), Err(ParseError::BadContentLength(_))));
    }

    #[test]
    fn non_rfc_content_length_forms_are_rejected() {
        // `"+5".parse::<usize>()` succeeds, but RFC 9110 says 1*DIGIT:
        // a sign, embedded spaces, or an empty value must all fail.
        for v in ["+5", "-5", "5 5", "0x10", ""] {
            let mut p = RequestParser::new();
            p.feed(format!("POST /f HTTP/1.1\r\nContent-Length: {v}\r\n\r\n").as_bytes());
            assert!(
                matches!(p.next(), Err(ParseError::BadContentLength(_))),
                "Content-Length {v:?} must be rejected"
            );
        }
        // Overflowing digit strings are bad lengths, not panics.
        let mut p = RequestParser::new();
        p.feed(b"POST /f HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n");
        assert!(matches!(p.next(), Err(ParseError::BadContentLength(_))));
    }

    #[test]
    fn huge_advertised_body_is_rejected_up_front() {
        let mut p = RequestParser::new();
        let decl = MAX_BODY + 1;
        p.feed(format!("POST /f HTTP/1.1\r\nContent-Length: {decl}\r\n\r\n").as_bytes());
        // The error fires as soon as the head is parsed — the parser must
        // not wait (and buffer) for a body that will never finish.
        assert_eq!(p.next(), Err(ParseError::BodyTooLarge(decl)));

        // Same guard on the response side.
        let mut p = ResponseParser::new();
        p.feed(format!("HTTP/1.1 200 OK\r\nContent-Length: {decl}\r\n\r\n").as_bytes());
        assert_eq!(p.next(), Err(ParseError::BodyTooLarge(decl)));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        let filler = format!("X-Pad: {}\r\n", "a".repeat(1024));
        for _ in 0..20 {
            p.feed(filler.as_bytes());
        }
        assert!(matches!(p.next(), Err(ParseError::HeadTooLarge)));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(Version::Http11, Bytes::from(vec![7u8; 2048]));
        let wire = resp.to_bytes();
        let mut p = ResponseParser::new();
        // Split the wire bytes into three chunks.
        p.feed(&wire[..10]);
        assert!(p.next().unwrap().is_none());
        p.feed(&wire[10..500]);
        assert!(p.next().unwrap().is_none());
        p.feed(&wire[500..]);
        let parsed = p.next().unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body.len(), 2048);
        assert_eq!(parsed, resp);
    }

    #[test]
    fn streaming_head_then_body_chunks() {
        let body: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let resp = Response::ok(Version::Http11, Bytes::from(body.clone()));
        let wire = resp.to_bytes();
        let split = wire.len() - 4000;
        let mut p = ResponseParser::new();
        p.feed(&wire[..20]);
        assert!(p.next_head().unwrap().is_none(), "head incomplete");
        p.feed(&wire[20..split]);
        let head = p.next_head().unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.body_len, 5000);
        assert!(head.keep_alive());
        // Drain body bytes as they arrive, capped at the declared length.
        let mut got = Vec::new();
        let mut remaining = head.body_len;
        let c = p.take_body(remaining);
        remaining -= c.len();
        got.extend_from_slice(&c);
        assert!(remaining > 0, "first window held only part of the body");
        // The tail arrives with a pipelined second response behind it.
        p.feed(&wire[split..]);
        p.feed(&Response::not_found(Version::Http11).to_bytes());
        while remaining > 0 {
            let c = p.take_body(remaining);
            assert!(!c.is_empty());
            remaining -= c.len();
            got.extend_from_slice(&c);
        }
        assert_eq!(got, body, "chunks reassemble the exact body");
        // The cap protected the pipelined response; it parses intact.
        assert_eq!(p.next().unwrap().unwrap().status, 404);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_responses() {
        let a = Response::ok(Version::Http11, Bytes::from_static(b"aaaa"));
        let b = Response::not_found(Version::Http11);
        let mut wire = BytesMut::new();
        a.encode(&mut wire);
        b.encode(&mut wire);
        let mut p = ResponseParser::new();
        p.feed(&wire);
        assert_eq!(p.next().unwrap().unwrap().status, 200);
        assert_eq!(p.next().unwrap().unwrap().status, 404);
        assert!(p.next().unwrap().is_none());
    }
}
