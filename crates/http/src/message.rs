//! HTTP message types: requests, responses, versions, headers.
//!
//! Scope follows the paper: HTTP/1.0 and HTTP/1.1 with persistent
//! connections and pipelining for static content. Header storage preserves
//! order and case (lookups are case-insensitive per RFC 2616); bodies are
//! framed by `Content-Length` only — the workload is static files, so
//! chunked transfer encoding is out of scope (documented in DESIGN.md).

use bytes::{BufMut, Bytes, BytesMut};

/// HTTP protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// HTTP/1.0: one request per connection unless `Connection: keep-alive`.
    Http10,
    /// HTTP/1.1: persistent by default unless `Connection: close`.
    Http11,
}

impl Version {
    /// Wire form, e.g. `HTTP/1.1`.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }

    /// Parses the wire form.
    pub fn parse(s: &str) -> Option<Version> {
        match s {
            "HTTP/1.0" | "HTTP/0.9" => Some(Version::Http10),
            "HTTP/1.1" => Some(Version::Http11),
            _ => None,
        }
    }
}

/// Ordered, case-preserving header list with case-insensitive lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers(Vec<(String, String)>);

impl Headers {
    /// Creates an empty header list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the first value of `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Appends a header (does not replace existing ones of the same name).
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.0.push((name.into(), value.into()));
    }

    /// Replaces all headers of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.0.retain(|(k, _)| !k.eq_ignore_ascii_case(name));
        self.0.push((name.to_owned(), value.into()));
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if there are no headers.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn encode(&self, buf: &mut BytesMut) {
        for (k, v) in &self.0 {
            buf.put_slice(k.as_bytes());
            buf.put_slice(b": ");
            buf.put_slice(v.as_bytes());
            buf.put_slice(b"\r\n");
        }
    }
}

/// Whether a connection persists after a message with these properties.
pub fn keep_alive(version: Version, headers: &Headers) -> bool {
    match headers.get("Connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version == Version::Http11,
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET` for the paper's workload).
    pub method: String,
    /// Request-URI (path plus optional query).
    pub uri: String,
    /// Protocol version.
    pub version: Version,
    /// Header list.
    pub headers: Headers,
    /// Request body (empty for GET).
    pub body: Bytes,
}

impl Request {
    /// Builds a GET request.
    pub fn get(uri: impl Into<String>, version: Version) -> Self {
        Request {
            method: "GET".to_owned(),
            uri: uri.into(),
            version,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Returns `true` if the connection persists after this request.
    pub fn keep_alive(&self) -> bool {
        keep_alive(self.version, &self.headers)
    }

    /// Prefixes the URI path with `/segment` — the paper's §7.3 *tagging*:
    /// the dispatcher rewrites `GET /foo` into `GET /be_2/foo` to make the
    /// connection-handling node fetch the target from back-end 2.
    ///
    /// # Examples
    ///
    /// ```
    /// use phttp_http::{Request, Version};
    ///
    /// let mut r = Request::get("/foo.gif", Version::Http11);
    /// r.tag("be_2");
    /// assert_eq!(r.uri, "/be_2/foo.gif");
    /// ```
    pub fn tag(&mut self, segment: &str) {
        let rest = self.uri.strip_prefix('/').unwrap_or(&self.uri);
        self.uri = format!("/{segment}/{rest}");
    }

    /// Splits a tagged URI into `(segment, rest)` if it has the
    /// `/segment/...` shape: the inverse of [`Request::tag`].
    pub fn untag(uri: &str) -> Option<(&str, &str)> {
        let rest = uri.strip_prefix('/')?;
        let slash = rest.find('/')?;
        Some((&rest[..slash], &rest[slash..]))
    }

    /// Serializes the request onto `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(self.method.as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.uri.as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.version.as_str().as_bytes());
        buf.put_slice(b"\r\n");
        self.headers.encode(buf);
        if !self.body.is_empty() {
            let mut h = Headers::new();
            if self.headers.get("Content-Length").is_none() {
                h.push("Content-Length", self.body.len().to_string());
                h.encode(buf);
            }
        }
        buf.put_slice(b"\r\n");
        buf.put_slice(&self.body);
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Protocol version.
    pub version: Version,
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header list.
    pub headers: Headers,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// Builds a `200 OK` with the given body; sets `Content-Length`.
    pub fn ok(version: Version, body: Bytes) -> Self {
        let mut headers = Headers::new();
        headers.set("Content-Length", body.len().to_string());
        Response {
            version,
            status: 200,
            reason: "OK".to_owned(),
            headers,
            body,
        }
    }

    /// The serialized head of a `200 OK` whose body is `len` bytes long,
    /// without materializing the body: byte-identical to
    /// `Response::ok(version, body).head_bytes()` for any `body` of that
    /// length. The streaming splice path sends this head to the client
    /// before the body has arrived from the peer.
    pub fn ok_head(version: Version, len: usize) -> Bytes {
        let mut headers = Headers::new();
        headers.set("Content-Length", len.to_string());
        let resp = Response {
            version,
            status: 200,
            reason: "OK".to_owned(),
            headers,
            body: Bytes::new(),
        };
        resp.head_bytes()
    }

    /// Builds an error response with a short text body.
    pub fn error(version: Version, status: u16, reason: &str) -> Self {
        let body = Bytes::from(format!("{status} {reason}\n"));
        let mut headers = Headers::new();
        headers.set("Content-Length", body.len().to_string());
        Response {
            version,
            status,
            reason: reason.to_owned(),
            headers,
            body,
        }
    }

    /// Builds a `404 Not Found`.
    pub fn not_found(version: Version) -> Self {
        Self::error(version, 404, "Not Found")
    }

    /// Returns `true` if the connection persists after this response.
    pub fn keep_alive(&self) -> bool {
        keep_alive(self.version, &self.headers)
    }

    /// Serializes the head only — status line, headers, and the blank
    /// line — onto `buf`. The zero-copy write path serializes the head
    /// once and pairs it with a shared body slice instead of copying
    /// the body into a contiguous wire buffer; [`encode`](Self::encode)
    /// is defined in terms of this, so the two can never diverge.
    pub fn encode_head(&self, buf: &mut BytesMut) {
        buf.put_slice(self.version.as_str().as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.status.to_string().as_bytes());
        buf.put_u8(b' ');
        buf.put_slice(self.reason.as_bytes());
        buf.put_slice(b"\r\n");
        self.headers.encode(buf);
        buf.put_slice(b"\r\n");
    }

    /// The serialized head as its own buffer (see
    /// [`encode_head`](Self::encode_head)).
    pub fn head_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_head(&mut buf);
        buf.freeze()
    }

    /// Serializes the response onto `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        self.encode_head(buf);
        buf.put_slice(&self.body);
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.push("Content-Length", "42");
        assert_eq!(h.get("content-length"), Some("42"));
        assert_eq!(h.get("CONTENT-LENGTH"), Some("42"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn header_set_replaces_all() {
        let mut h = Headers::new();
        h.push("X-A", "1");
        h.push("x-a", "2");
        h.set("X-A", "3");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x-a"), Some("3"));
    }

    #[test]
    fn keep_alive_defaults_by_version() {
        assert!(keep_alive(Version::Http11, &Headers::new()));
        assert!(!keep_alive(Version::Http10, &Headers::new()));
        let mut close = Headers::new();
        close.push("Connection", "close");
        assert!(!keep_alive(Version::Http11, &close));
        let mut ka = Headers::new();
        ka.push("Connection", "Keep-Alive");
        assert!(keep_alive(Version::Http10, &ka));
    }

    #[test]
    fn request_encoding_is_canonical() {
        let mut r = Request::get("/a/b.html", Version::Http11);
        r.headers.push("Host", "example.org");
        let bytes = r.to_bytes();
        assert_eq!(
            &bytes[..],
            b"GET /a/b.html HTTP/1.1\r\nHost: example.org\r\n\r\n".as_slice()
        );
    }

    #[test]
    fn tagging_roundtrip() {
        let mut r = Request::get("/dir/foo.gif", Version::Http11);
        r.tag("be_3");
        assert_eq!(r.uri, "/be_3/dir/foo.gif");
        let (seg, rest) = Request::untag(&r.uri).unwrap();
        assert_eq!(seg, "be_3");
        assert_eq!(rest, "/dir/foo.gif");
        // Untagging a plain root path yields nothing.
        assert_eq!(Request::untag("/foo.gif"), None);
        assert_eq!(Request::untag("noslash"), None);
    }

    #[test]
    fn response_ok_sets_content_length() {
        let r = Response::ok(Version::Http11, Bytes::from_static(b"hello"));
        assert_eq!(r.headers.get("Content-Length"), Some("5"));
        let wire = r.to_bytes();
        assert!(wire.starts_with(b"HTTP/1.1 200 OK\r\n"));
        assert!(wire.ends_with(b"\r\n\r\nhello"));
    }

    #[test]
    fn head_plus_body_is_exactly_to_bytes() {
        let r = Response::ok(Version::Http11, Bytes::from_static(b"payload"));
        let head = r.head_bytes();
        assert!(head.ends_with(b"\r\n\r\n"));
        let mut glued = head.to_vec();
        glued.extend_from_slice(&r.body);
        assert_eq!(&glued[..], &r.to_bytes()[..], "head ‖ body == wire form");
    }

    #[test]
    fn ok_head_matches_full_response_head() {
        for version in [Version::Http10, Version::Http11] {
            for len in [0usize, 1, 5, 1024, 3 * 1024 * 1024] {
                let body = Bytes::from(vec![0x5au8; len]);
                let full = Response::ok(version, body).head_bytes();
                assert_eq!(&Response::ok_head(version, len)[..], &full[..]);
            }
        }
    }

    #[test]
    fn error_responses() {
        let r = Response::not_found(Version::Http10);
        assert_eq!(r.status, 404);
        assert!(!r.keep_alive());
        let wire = r.to_bytes();
        assert!(wire.starts_with(b"HTTP/1.0 404 Not Found\r\n"));
    }

    #[test]
    fn version_parse() {
        assert_eq!(Version::parse("HTTP/1.1"), Some(Version::Http11));
        assert_eq!(Version::parse("HTTP/1.0"), Some(Version::Http10));
        assert_eq!(Version::parse("HTTP/2"), None);
    }
}
