//! Minimal HTTP/1.0 and HTTP/1.1 message layer for the P-HTTP cluster
//! prototype.
//!
//! Implements exactly what the paper's system needs — GET requests over
//! persistent connections with pipelining, `Content-Length`-framed
//! responses, and the dispatcher's URL *tagging* ([`Request::tag`]) — with
//! incremental push parsers ([`RequestParser`], [`ResponseParser`]) suitable
//! for nonblocking socket loops. Chunked transfer encoding is out of scope:
//! the workload is static files of known size (DESIGN.md).

pub mod message;
pub mod parser;

pub use message::{keep_alive, Headers, Request, Response, Version};
pub use parser::{ParseError, RequestParser, ResponseParser, MAX_BODY};
