//! `phttp` — command-line interface to the P-HTTP cluster reproduction.
//!
//! ```text
//! phttp trace gen   [--views N] [--seed S] [--specweb] [--out FILE]
//! phttp trace stats [FILE]   (reads CLF; without FILE, uses the built-in synthetic trace)
//! phttp sim         [--config LABEL] [--nodes N] [--flash] [--cache-mb M] [FILE]
//! phttp sweep       [--flash] [--quick] [FILE]
//! phttp demo        [--nodes N] [--policy wrr|lard|extlard] [--views N]
//! ```

mod args;

use std::io::BufRead;
use std::time::Duration;

use args::Args;
use phttp_core::PolicyKind;
use phttp_proto::{run_load, ClientProtocol, Cluster, IoModel, LoadConfig, ProtoConfig};
use phttp_sim::{build_workload, SimConfig, Simulator};
use phttp_trace::{
    clf, generate, generate_specweb, reconstruct, SessionConfig, SpecWebConfig, SynthConfig, Trace,
};

const USAGE: &str = "phttp — cluster web server with content-based request distribution
(reproduction of Aron/Druschel/Zwaenepoel, USENIX 1999)

commands:
  trace gen    [--views N] [--seed S] [--specweb] [--out FILE]
               generate a synthetic workload (Common Log Format on stdout/FILE)
  trace stats  [FILE]
               workload statistics + P-HTTP connection reconstruction
  sim          [--config LABEL] [--nodes N] [--flash] [--cache-mb M] [FILE]
               one simulated run (LABEL as in the paper's figures, e.g.
               BEforward-extLARD-PHTTP; FILE is a CLF log, default synthetic)
  sweep        [--flash] [--quick] [FILE]
               the full Figure 7/8 sweep over cluster sizes and configs
  demo         [--nodes N] [--policy wrr|lard|extlard] [--views N] [--reactor]
               [--shards N] [--coalesce] [--mad]
               boot the live loopback cluster and drive it with real HTTP
               (--reactor serves it from epoll event loops instead of the
               worker-thread pool; --shards N spreads the reactor over N
               loops with SO_REUSEPORT accept distribution; --coalesce
               single-flights concurrent misses per target and reports
               delayed hits; --mad evicts by aggregate miss delay, LRU-MAD)
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(
        argv,
        &[
            "flash", "quick", "specweb", "phttp10", "reactor", "coalesce", "mad",
        ],
    )?;
    match (args.pos(0), args.pos(1)) {
        (Some("trace"), Some("gen")) => trace_gen(&args),
        (Some("trace"), Some("stats")) => trace_stats(&args),
        (Some("sim"), _) => sim_run(&args),
        (Some("sweep"), _) => sweep(&args),
        (Some("demo"), _) => demo(&args),
        _ => {
            print!("{USAGE}");
            Ok(())
        }
    }
}

/// Loads the workload: a CLF file if a path is given, else the synthetic
/// default trace.
fn load_trace(args: &Args, file_pos: usize) -> Result<Trace, Box<dyn std::error::Error>> {
    match args.pos(file_pos) {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            let lines: Vec<String> = std::io::BufReader::new(file)
                .lines()
                .collect::<Result<_, _>>()?;
            let (trace, stats) = clf::parse_log(&lines);
            eprintln!(
                "parsed {}: {} accepted, {} skipped",
                path,
                stats.accepted,
                stats.skipped()
            );
            Ok(trace)
        }
        None => Ok(generate(&SynthConfig::default())),
    }
}

fn trace_gen(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let seed = args.get_or("seed", 1999u64)?;
    let trace = if args.flag("specweb") {
        let mut cfg = SpecWebConfig::default();
        cfg.seed = seed;
        cfg.num_requests = args.get_or("views", cfg.num_requests)?;
        generate_specweb(&cfg)
    } else {
        let mut cfg = SynthConfig::default();
        cfg.seed = seed;
        cfg.num_page_views = args.get_or("views", cfg.num_page_views)?;
        generate(&cfg)
    };
    // 1998-03-12 00:00:00 UTC, in keeping with the paper's trace era.
    let lines = clf::format_log(&trace, 889_660_800);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, lines.join("\n") + "\n")?;
            eprintln!("wrote {} requests to {path}", trace.len());
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            use std::io::Write;
            for l in &lines {
                writeln!(lock, "{l}")?;
            }
        }
    }
    Ok(())
}

fn trace_stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let trace = load_trace(args, 2)?;
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
    println!("requests:          {}", trace.len());
    println!("distinct targets:  {}", trace.distinct_targets());
    println!("working set:       {:.1} MB", mb(trace.working_set_bytes()));
    println!(
        "mean response:     {:.1} KB",
        trace.mean_response_bytes() / 1024.0
    );
    println!(
        "trace span:        {:.1} min",
        trace.end_time().as_secs_f64() / 60.0
    );
    let fractions = [0.9, 0.95, 0.99, 1.0];
    for (f, bytes) in fractions.iter().zip(trace.coverage_curve(&fractions)) {
        println!(
            "coverage:          {:>4.0}% of requests within {:.1} MB",
            f * 100.0,
            mb(bytes)
        );
    }
    let conns = reconstruct(&trace, SessionConfig::default());
    println!("p-http connections: {}", conns.connections.len());
    println!(
        "requests/conn:      {:.2}",
        conns.mean_requests_per_connection()
    );
    println!(
        "batches/conn:       {:.2}",
        conns.mean_batches_per_connection()
    );
    Ok(())
}

fn sim_run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let label = args.get("config").unwrap_or("BEforward-extLARD-PHTTP");
    let nodes = args.get_or("nodes", 4usize)?;
    let trace = load_trace(args, 1)?;
    let mut cfg = SimConfig::paper_config(label, nodes);
    if args.flag("flash") {
        cfg = cfg.with_flash();
    }
    cfg.cache_bytes = args.get_or("cache-mb", 16u64)? * 1024 * 1024;
    let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
    let report = Simulator::new(cfg, &trace, &workload).run();
    println!("{}", report.summary());
    println!(
        "latency p50/p95/p99: {:.1} / {:.1} / {:.1} ms",
        report.p50_latency_ms, report.p95_latency_ms, report.p99_latency_ms
    );
    println!(
        "moved requests: {} forwarded, {} migrated ({:.1}%)",
        report.forwarded_requests,
        report.migrations,
        report.moved_fraction() * 100.0
    );
    for (i, n) in report.per_node.iter().enumerate() {
        println!(
            "  be{i}: req={:<7} hit={:>5.1}% cpu={:>5.1}% disk={:>5.1}%",
            n.requests,
            n.hit_rate() * 100.0,
            n.cpu_utilization * 100.0,
            n.disk_utilization * 100.0
        );
    }
    Ok(())
}

fn sweep(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let trace = load_trace(args, 1)?;
    let nodes: Vec<usize> = if args.flag("quick") {
        vec![1, 2, 4, 6]
    } else {
        (1..=10).collect()
    };
    print!("{:<28}", "config");
    for n in &nodes {
        print!("{n:>9}");
    }
    println!();
    for label in [
        "zeroCost-extLARD-PHTTP",
        "multiHandoff-extLARD-PHTTP",
        "BEforward-extLARD-PHTTP",
        "simple-LARD",
        "simple-LARD-PHTTP",
        "WRR-PHTTP",
        "WRR",
    ] {
        print!("{label:<28}");
        for &n in &nodes {
            let mut cfg = SimConfig::paper_config(label, n);
            if args.flag("flash") {
                cfg = cfg.with_flash();
            }
            let workload = build_workload(&trace, cfg.protocol, SessionConfig::default());
            let r = Simulator::new(cfg, &trace, &workload).run();
            print!("{:>9.0}", r.throughput_rps);
        }
        println!();
    }
    Ok(())
}

fn demo(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let nodes = args.get_or("nodes", 3usize)?;
    let policy = match args.get("policy").unwrap_or("extlard") {
        "wrr" => PolicyKind::Wrr,
        "lard" => PolicyKind::Lard,
        "extlard" => PolicyKind::ExtLard,
        other => return Err(format!("unknown policy {other:?}").into()),
    };
    let mut synth = SynthConfig::small();
    synth.num_page_views = args.get_or("views", 1_200usize)?;
    let trace = generate(&synth);
    let workload = if args.flag("phttp10") {
        phttp_trace::http10_connections(&trace)
    } else {
        reconstruct(&trace, SessionConfig::default())
    };

    let cluster = Cluster::start(
        ProtoConfig {
            nodes,
            policy,
            io_model: if args.flag("reactor") {
                IoModel::Reactor
            } else {
                IoModel::Threads
            },
            reactor_shards: args.get_or("shards", 1)?,
            coalesce_misses: args.flag("coalesce"),
            cache_policy: if args.flag("mad") {
                phttp_proto::EvictPolicy::LruMad
            } else {
                phttp_proto::EvictPolicy::Lru
            },
            ..ProtoConfig::default()
        },
        &trace,
    )?;
    println!("cluster up at {}", cluster.frontend_addr());
    let report = run_load(
        cluster.frontend_addrs(),
        cluster.store(),
        &workload,
        &LoadConfig {
            clients: 24,
            protocol: if args.flag("phttp10") {
                ClientProtocol::Http10
            } else {
                ClientProtocol::PHttp
            },
            verify: true,
            read_timeout: Duration::from_secs(10),
        },
    );
    println!(
        "{} requests in {:.2}s -> {:.0} req/s ({} errors)",
        report.requests,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.errors
    );
    for (i, s) in cluster.node_stats().iter().enumerate() {
        println!(
            "  be{i}: served={:<6} hit={:>5.1}% lateral={}/{} migrations={} reads={} delayed={}",
            s.served,
            if s.served > 0 {
                100.0 * s.hits as f64 / s.served as f64
            } else {
                0.0
            },
            s.lateral_out,
            s.lateral_in,
            s.migrations_in,
            s.disk_reads,
            s.coalesced_waits
        );
    }
    cluster.shutdown();
    Ok(())
}
