//! Minimal argument parsing (std-only): `--key value`, `--flag`, and
//! positional arguments, with typed accessors and unknown-option errors.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parse failure description.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. `flag_names` lists options that take no value;
    /// everything else starting with `--` consumes the next token.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        flag_names: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if flag_names.contains(&name) {
                    out.flags.push(name.to_owned());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                    out.options.insert(name.to_owned(), value);
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The n-th positional argument.
    pub fn pos(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }

    /// Number of positional arguments.
    #[cfg(test)]
    pub fn num_pos(&self) -> usize {
        self.positional.len()
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Whether a no-value flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str, flags: &[&str]) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from), flags)
    }

    #[test]
    fn positional_and_options_mix() {
        let a = parse("sim run --nodes 6 --flash --cache-mb 16", &["flash"]).unwrap();
        assert_eq!(a.pos(0), Some("sim"));
        assert_eq!(a.pos(1), Some("run"));
        assert_eq!(a.num_pos(), 2);
        assert_eq!(a.get_or("nodes", 1usize).unwrap(), 6);
        assert_eq!(a.get_or("cache-mb", 0u64).unwrap(), 16);
        assert!(a.flag("flash"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("x", &[]).unwrap();
        assert_eq!(a.get_or("nodes", 4usize).unwrap(), 4);
        assert!(parse("--nodes", &[]).is_err());
        let a = parse("--nodes six", &[]).unwrap();
        assert!(a.get_or::<usize>("nodes", 1).is_err());
    }
}
